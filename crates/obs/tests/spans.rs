//! Span-tracing integration properties: parent/child interval nesting
//! under concurrent recording, and wraparound drop accounting.

use neo_obs::{SpanId, SpanRing, Tracer};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Spin briefly so child spans have nonzero extent (no sleeping — the
/// property is about ordering on the monotonic clock, not durations).
fn busy(iters: u64) {
    let mut x = 0u64;
    for i in 0..iters {
        x = x.wrapping_add(i).rotate_left(7);
    }
    std::hint::black_box(x);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..Default::default() })]

    /// Under concurrent recording from several threads, every retained
    /// child span's [start, end] interval nests inside its parent's —
    /// children are RAII guards dropped before their parents, and all
    /// timestamps come from the one shared monotonic clock.
    #[test]
    fn child_intervals_nest_inside_parents(
        depths in proptest::collection::vec(1usize..4, 4),
        spin in 1u64..200,
    ) {
        let ring = Arc::new(SpanRing::new(1024));
        // Always-sample, so every trace commits.
        let tracer = Tracer::new(Arc::clone(&ring), 1, u64::MAX);
        let handles: Vec<_> = depths
            .iter()
            .enumerate()
            .map(|(t, &depth)| {
                let tracer = tracer.clone();
                std::thread::spawn(move || {
                    for i in 0..3 {
                        let mut root = tracer.start("root", &format!("t{t}"));
                        root.attr("iter", format!("{i}"));
                        busy(spin);
                        let mut stack = vec![root.child("level")];
                        for _ in 1..depth {
                            busy(spin);
                            let next = stack.last().unwrap().child("level");
                            stack.push(next);
                        }
                        while let Some(guard) = stack.pop() {
                            busy(spin);
                            guard.end();
                        }
                        busy(spin);
                        root.end();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("recorder thread");
        }
        let spans = ring.snapshot();
        prop_assert!(!spans.is_empty());
        let by_id: HashMap<SpanId, &neo_obs::Span> =
            spans.iter().map(|s| (s.span, s)).collect();
        for s in &spans {
            prop_assert!(s.end_us >= s.start_us);
            if let Some(parent_id) = s.parent {
                let parent = by_id
                    .get(&parent_id)
                    .expect("parent retained (capacity exceeds recorded spans)");
                prop_assert!(s.trace == parent.trace, "child shares the parent's trace");
                prop_assert!(
                    s.start_us >= parent.start_us && s.end_us <= parent.end_us,
                    "child [{}, {}] outside parent [{}, {}]",
                    s.start_us,
                    s.end_us,
                    parent.start_us,
                    parent.end_us,
                );
            }
        }
        prop_assert_eq!(ring.dropped(), 0, "capacity was never exceeded");
    }
}

#[test]
fn wraparound_counts_drops_and_keeps_the_latest_spans() {
    let ring = Arc::new(SpanRing::new(4));
    for i in 0..10 {
        let mut root = ring.root("op", "n");
        root.attr("i", format!("{i}"));
        root.end();
    }
    assert_eq!(ring.recorded(), 10);
    assert_eq!(ring.dropped(), 6, "10 spans into 4 slots loses 6");
    let spans = ring.snapshot();
    assert_eq!(spans.len(), 4, "ring retains exactly its capacity");
    let seqs: Vec<u64> = spans.iter().map(|s| s.seq).collect();
    assert_eq!(seqs, vec![6, 7, 8, 9], "latest spans, ascending seq");
    assert_eq!(spans.last().unwrap().attrs, vec![("i", "9".to_string())]);
}
