//! Concurrency tests for the observability primitives: exact totals under
//! N-thread hammering and monotone quantiles, plus a property test
//! pinning the histogram merge law (merge-of-splits == combined).

use neo_obs::{Counter, HistogramSnapshot, LatencyHistogram, MetricsRegistry};
use proptest::prelude::*;
use std::sync::Arc;
use std::thread;

const THREADS: usize = 8;
const PER_THREAD: u64 = 2_000;

#[test]
fn histogram_totals_are_exact_under_concurrent_recording() {
    let hist = Arc::new(LatencyHistogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Deterministic per-thread spread across many buckets.
                    hist.record_us((t as u64 * PER_THREAD + i) % 100_000);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("recorder thread");
    }
    let snap = hist.snapshot();
    let expected = THREADS as u64 * PER_THREAD;
    assert_eq!(snap.count, expected, "count is exact");
    assert_eq!(
        snap.buckets.iter().sum::<u64>(),
        expected,
        "bucket sum is exact"
    );
    let expected_sum: u64 = (0..THREADS as u64)
        .flat_map(|t| (0..PER_THREAD).map(move |i| (t * PER_THREAD + i) % 100_000))
        .sum();
    assert_eq!(snap.sum_us, expected_sum, "sum is exact");
    assert_eq!(snap.max_us, 15_999, "max is exact");

    // Quantile estimates are monotone in q.
    let mut prev = 0.0;
    for step in 0..=100 {
        let q = step as f64 / 100.0;
        let v = snap.quantile_ms(q);
        assert!(v >= prev, "quantile not monotone at q={q}: {v} < {prev}");
        prev = v;
    }
}

#[test]
fn registry_counters_are_exact_under_concurrent_updates() {
    let reg = Arc::new(MetricsRegistry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                // Re-resolving by name each iteration exercises the
                // registration lock concurrently with handle updates.
                let counter = reg.counter("hammered_total");
                for i in 0..PER_THREAD {
                    if i % 16 == 0 {
                        reg.counter("hammered_total").inc();
                    } else {
                        counter.inc();
                    }
                    reg.gauge("last_i").set(i);
                    reg.histogram("hammer_ms").record_us(i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("updater thread");
    }
    let snap = reg.snapshot();
    let expected = THREADS as u64 * PER_THREAD;
    assert_eq!(snap.counter("hammered_total"), Some(expected));
    assert_eq!(
        snap.histogram("hammer_ms").expect("registered").count,
        expected
    );
    assert!(snap.gauge("last_i").expect("registered") < PER_THREAD);
}

#[test]
fn shared_counter_handles_see_one_total() {
    let counter = Counter::new();
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let counter = counter.clone();
            thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    counter.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("counter thread");
    }
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..Default::default() })]

    /// The merge law: splitting one stream of recordings across any
    /// number of histograms and merging their snapshots yields exactly
    /// the snapshot of recording the whole stream into one histogram.
    #[test]
    fn merge_of_splits_equals_combined_recording(
        values in proptest::collection::vec(0u64..5_000_000, 1..300),
        splits in proptest::collection::vec(0usize..4, 1..300),
    ) {
        let parts: Vec<LatencyHistogram> =
            (0..4).map(|_| LatencyHistogram::new()).collect();
        let combined = LatencyHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            let which = splits[i % splits.len()];
            parts[which].record_us(v);
            combined.record_us(v);
        }
        let mut merged = HistogramSnapshot::default();
        for p in &parts {
            merged.merge(&p.snapshot());
        }
        prop_assert_eq!(merged, combined.snapshot());
    }

    /// Merging is order-independent (commutative + associative on these
    /// integer buckets), so cross-node aggregation order cannot matter.
    #[test]
    fn merge_order_does_not_matter(
        a in proptest::collection::vec(0u64..1_000_000, 0..100),
        b in proptest::collection::vec(0u64..1_000_000, 0..100),
        c in proptest::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let mk = |vals: &[u64]| {
            let h = LatencyHistogram::new();
            for &v in vals {
                h.record_us(v);
            }
            h.snapshot()
        };
        let (sa, sb, sc) = (mk(&a), mk(&b), mk(&c));
        let mut abc = sa.clone();
        abc.merge(&sb);
        abc.merge(&sc);
        let mut cba = sc.clone();
        cba.merge(&sb);
        cba.merge(&sa);
        prop_assert_eq!(abc, cba);
    }

    /// The windowed-delta law the telemetry sampler rests on:
    /// `merge(delta(prev, curr), prev) == curr` for any pair of
    /// snapshots taken from one live histogram — so per-tick windows
    /// reconstruct the cumulative stream with no drift.
    #[test]
    fn delta_since_inverts_merge_for_live_snapshot_pairs(
        before in proptest::collection::vec(0u64..5_000_000, 0..200),
        after in proptest::collection::vec(0u64..5_000_000, 1..200),
    ) {
        let hist = LatencyHistogram::new();
        for &v in &before {
            hist.record_us(v);
        }
        let prev = hist.snapshot();
        for &v in &after {
            hist.record_us(v);
        }
        let curr = hist.snapshot();
        let delta = curr.delta_since(&prev);
        prop_assert_eq!(delta.count, after.len() as u64);
        let mut rebuilt = delta.clone();
        rebuilt.merge(&prev);
        prop_assert_eq!(rebuilt, curr);
    }
}
