//! The lock-free metrics registry: named counters, gauges, and latency
//! histograms.
//!
//! The registry follows a register-once / update-hot split: registration
//! (name → instrument handle) takes a mutex, but it happens at service
//! construction; the handles themselves are `Arc`'d relaxed atomics, so
//! every hot-path update is a single uncontended `fetch_add` — the same
//! discipline the plan cache's counters have always used, now shared
//! fleet-wide instead of re-invented per struct.

use crate::hist::{HistogramSnapshot, LatencyHistogram};
use crate::json::JsonNode;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic — the registry and the updating code hold the *same* count.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    v: Arc<AtomicU64>,
}

impl Counter {
    /// A zeroed, unregistered counter (attach it to a registry with
    /// [`MetricsRegistry::bind_counter`] when a fleet view should see it).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge (occupancies, generations, terms).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    v: Arc<AtomicU64>,
}

impl Gauge {
    /// A zeroed, unregistered gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `n`.
    #[inline]
    pub fn set(&self, n: u64) {
        self.v.store(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// One registered instrument. Histograms hold a *set* of stripes (e.g.
/// one per serving worker) merged at snapshot time.
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Vec<Arc<LatencyHistogram>>),
}

/// The registry: a name-ordered map of instruments. Lookup/registration
/// locks; updates through the returned handles never do.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Instrument>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Idempotent: repeated calls share one atomic.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Counter::new()))
        {
            Instrument::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Gauge::new()))
        {
            Instrument::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Returns the (single-stripe) histogram registered under `name`,
    /// creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(vec![Arc::new(LatencyHistogram::new())]))
        {
            Instrument::Histogram(stripes) => Arc::clone(&stripes[0]),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Registers an *existing* counter handle under `name` — how legacy
    /// stats blocks (cache, retry, store) expose their counters without
    /// changing a call site: the struct keeps its handle, the registry
    /// shares the atomic.
    pub fn bind_counter(&self, name: &str, counter: &Counter) {
        self.lock()
            .insert(name.to_string(), Instrument::Counter(counter.clone()));
    }

    /// Registers an existing gauge handle under `name`.
    pub fn bind_gauge(&self, name: &str, gauge: &Gauge) {
        self.lock()
            .insert(name.to_string(), Instrument::Gauge(gauge.clone()));
    }

    /// Registers a striped histogram (e.g. one stripe per serving worker)
    /// under `name`; snapshots and renderings merge the stripes.
    pub fn bind_histogram_stripes(&self, name: &str, stripes: &[Arc<LatencyHistogram>]) {
        self.lock().insert(
            name.to_string(),
            Instrument::Histogram(stripes.iter().map(Arc::clone).collect()),
        );
    }

    /// A point-in-time copy of every instrument, name order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.lock();
        let entries = map
            .iter()
            .map(|(name, inst)| {
                let value = match inst {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(stripes) => {
                        let mut merged = HistogramSnapshot::default();
                        for s in stripes {
                            merged.merge(&s.snapshot());
                        }
                        MetricValue::Histogram(merged)
                    }
                };
                (name.clone(), value)
            })
            .collect();
        MetricsSnapshot { entries }
    }

    /// Prometheus-style text exposition: `# TYPE` lines, counter/gauge
    /// samples, and summary quantiles for histograms.
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Instrument>> {
        // The map holds only handles; a panicking registrant cannot tear
        // it, so recover rather than cascade.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// One instrument's point-in-time value.
///
/// The histogram variant carries its full bucket array inline: snapshots
/// are built per sampler tick, not per request, and keeping the buckets
/// inline lets the sampler's delta math run without a heap hop.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A counter's count.
    Counter(u64),
    /// A gauge's value.
    Gauge(u64),
    /// A histogram's merged snapshot.
    Histogram(HistogramSnapshot),
}

/// A point-in-time copy of a whole registry, name-ordered.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, ascending by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// The counter registered under `name`, if any.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Counter(c) if n == name => Some(*c),
            _ => None,
        })
    }

    /// The gauge registered under `name`, if any.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Gauge(g) if n == name => Some(*g),
            _ => None,
        })
    }

    /// The histogram registered under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Histogram(h) if n == name => Some(h),
            _ => None,
        })
    }

    /// The snapshot as a JSON object: counters and gauges as integers,
    /// histograms as `{count, mean_ms, p50_ms, p95_ms, p99_ms, max_ms}`.
    pub fn to_node(&self) -> JsonNode {
        let mut obj = JsonNode::obj();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(c) => obj.push(name, JsonNode::U64(*c)),
                MetricValue::Gauge(g) => obj.push(name, JsonNode::U64(*g)),
                MetricValue::Histogram(h) => obj.push(name, h.to_node()),
            }
        }
        obj
    }

    /// Prometheus-style text exposition of this snapshot.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(c) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {c}\n"));
                }
                MetricValue::Gauge(g) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {g}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} summary\n"));
                    for (q, v) in [
                        (0.5, h.quantile_ms(0.5)),
                        (0.95, h.quantile_ms(0.95)),
                        (0.99, h.quantile_ms(0.99)),
                    ] {
                        out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
                    }
                    out.push_str(&format!("{name}_mean {}\n", h.mean_ms()));
                    out.push_str(&format!("{name}_sum {}\n", h.sum_ms()));
                    out.push_str(&format!("{name}_count {}\n", h.count));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once_and_share_state() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("requests_total");
        let b = reg.counter("requests_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.snapshot().counter("requests_total"), Some(3));
        let g = reg.gauge("generation");
        g.set(7);
        assert_eq!(reg.snapshot().gauge("generation"), Some(7));
    }

    #[test]
    fn bound_counters_are_shared_not_copied() {
        let reg = MetricsRegistry::new();
        let external = Counter::new();
        external.add(5);
        reg.bind_counter("cache_hits_total", &external);
        external.inc();
        assert_eq!(reg.snapshot().counter("cache_hits_total"), Some(6));
    }

    #[test]
    fn striped_histograms_merge_on_snapshot() {
        let reg = MetricsRegistry::new();
        let stripes: Vec<_> = (0..4).map(|_| Arc::new(LatencyHistogram::new())).collect();
        reg.bind_histogram_stripes("search_ms", &stripes);
        for (i, s) in stripes.iter().enumerate() {
            s.record_ms((i + 1) as f64);
        }
        let snap = reg.snapshot();
        let h = snap.histogram("search_ms").expect("registered");
        assert_eq!(h.count, 4);
        assert!(h.max_ms() >= 4.0);
    }

    #[test]
    fn render_text_is_prometheus_shaped() {
        let reg = MetricsRegistry::new();
        reg.counter("hits_total").add(3);
        reg.histogram("lat_ms").record_ms(1.0);
        let text = reg.render_text();
        assert!(text.contains("# TYPE hits_total counter"));
        assert!(text.contains("hits_total 3"));
        assert!(text.contains("# TYPE lat_ms summary"));
        assert!(text.contains("lat_ms{quantile=\"0.5\"}"));
        assert!(text.contains("lat_ms_mean 1"));
        assert!(text.contains("lat_ms_count 1"));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }
}
