//! The background telemetry sampler: windowed time series over live
//! metric registries.
//!
//! PR 7's registries are point-in-time: a counter tells you *how many*,
//! never *how fast*. The [`TelemetrySampler`] closes that gap with one
//! background thread (condvar tick, drain-then-stop, same discipline as
//! the serving layer's `BackgroundTrainer`): each tick it snapshots
//! every watched [`MetricsRegistry`], subtracts the previous snapshot —
//! counters become rates, mergeable histogram snapshots make windowed
//! p50/p99 a [`HistogramSnapshot::delta_since`] call — and appends the
//! points to fixed-capacity per-metric rings. The same per-tick deltas
//! feed the [`SloTracker`]s, so SLO burn alerts and the series a
//! postmortem plots are by construction the same numbers.

use crate::hist::HistogramSnapshot;
use crate::json::JsonNode;
use crate::metrics::{MetricValue, MetricsRegistry, MetricsSnapshot};
use crate::ring::{EventKind, EventRing};
use crate::slo::{SloNotify, SloSpec, SloStatus, SloTracker};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sampler tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct SamplerConfig {
    /// Milliseconds between samples.
    pub tick_interval_ms: u64,
    /// Points retained per series (older points fall off the front).
    pub series_capacity: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            tick_interval_ms: 100,
            series_capacity: 240,
        }
    }
}

/// A fixed-capacity ring of time-series points, one per sampler tick.
/// Overflow drops the oldest point and advances `start_tick`, so a
/// snapshot always knows which tick its first retained point belongs to.
#[derive(Debug)]
struct SeriesRing {
    points: std::collections::VecDeque<f64>,
    capacity: usize,
    start_tick: u64,
}

impl SeriesRing {
    fn new(capacity: usize, start_tick: u64) -> Self {
        SeriesRing {
            points: std::collections::VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            start_tick,
        }
    }

    fn push(&mut self, v: f64) {
        if self.points.len() == self.capacity {
            self.points.pop_front();
            self.start_tick += 1;
        }
        self.points.push_back(v);
    }
}

/// A copy of one series' retained points.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesSnapshot {
    /// `source/metric`-style series name (e.g. `serve/search_ms_p99_ms`).
    pub name: String,
    /// Sampler tick number of the first retained point.
    pub start_tick: u64,
    /// The retained points, oldest first.
    pub points: Vec<f64>,
}

impl SeriesSnapshot {
    /// The series as a JSON object.
    pub fn to_node(&self) -> JsonNode {
        let mut obj = JsonNode::obj();
        obj.push("name", JsonNode::Str(self.name.clone()));
        obj.push("start_tick", JsonNode::U64(self.start_tick));
        obj.push(
            "points",
            JsonNode::Arr(
                self.points
                    .iter()
                    .map(|p| JsonNode::f64_rounded(*p, 4))
                    .collect(),
            ),
        );
        obj
    }
}

/// One watched registry: the label prefixes every series it produces.
struct Source {
    name: String,
    registry: Arc<MetricsRegistry>,
    prev: MetricsSnapshot,
}

struct SamplerState {
    stopping: bool,
    sources: Vec<Source>,
    series: BTreeMap<String, SeriesRing>,
    slos: Vec<(SloTracker, Option<Arc<dyn SloNotify>>)>,
    events: Option<(Arc<EventRing>, String)>,
    ticks: u64,
    last_tick_at: Option<Instant>,
}

struct SamplerShared {
    cfg: SamplerConfig,
    state: Mutex<SamplerState>,
    cv: Condvar,
}

impl SamplerShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, SamplerState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Takes one sample under the lock: per-source deltas → series
    /// points → SLO verdicts → burn events.
    fn sample_locked(&self, state: &mut SamplerState) {
        state.ticks += 1;
        let tick = state.ticks;
        let now = Instant::now();
        let elapsed_s = state
            .last_tick_at
            .map(|t| now.duration_since(t).as_secs_f64())
            .unwrap_or(0.0)
            .max(1e-6);
        state.last_tick_at = Some(now);

        // Deltas are collected before SLO evaluation because an
        // objective may aggregate one metric across all sources.
        let mut counter_deltas: Vec<(usize, String, u64)> = Vec::new();
        let mut hist_deltas: Vec<(usize, String, HistogramSnapshot)> = Vec::new();
        let SamplerState {
            sources,
            series,
            slos,
            events,
            ..
        } = state;
        let capacity = self.cfg.series_capacity;
        let mut point = |name: String, v: f64| {
            series
                .entry(name)
                .or_insert_with_key(|_| SeriesRing::new(capacity, tick))
                .push(v);
        };
        for (idx, source) in sources.iter_mut().enumerate() {
            let snap = source.registry.snapshot();
            for (name, value) in &snap.entries {
                let prev = source.prev.entries.iter().find(|(n, _)| n == name);
                match (value, prev.map(|(_, v)| v)) {
                    (MetricValue::Gauge(g), _) => {
                        point(format!("{}/{}", source.name, name), *g as f64);
                    }
                    (MetricValue::Counter(c), prev_c) => {
                        let base = match prev_c {
                            Some(MetricValue::Counter(p)) => *p,
                            _ => 0,
                        };
                        let delta = c.saturating_sub(base);
                        point(
                            format!("{}/{}_rate", source.name, name),
                            delta as f64 / elapsed_s,
                        );
                        counter_deltas.push((idx, name.clone(), delta));
                    }
                    (MetricValue::Histogram(h), prev_h) => {
                        let delta = match prev_h {
                            Some(MetricValue::Histogram(p)) => h.delta_since(p),
                            _ => h.clone(),
                        };
                        point(
                            format!("{}/{}_p50_ms", source.name, name),
                            delta.quantile_ms(0.5),
                        );
                        point(
                            format!("{}/{}_p99_ms", source.name, name),
                            delta.quantile_ms(0.99),
                        );
                        point(
                            format!("{}/{}_rate", source.name, name),
                            delta.count as f64 / elapsed_s,
                        );
                        hist_deltas.push((idx, name.clone(), delta));
                    }
                }
            }
            source.prev = snap;
        }

        for (tracker, notify) in slos.iter_mut() {
            let good = verdict(tracker.spec(), sources, &counter_deltas, &hist_deltas);
            let outcome = tracker.observe(good);
            let name = tracker.spec().name.clone();
            point(format!("slo/{name}_budget"), tracker.budget_remaining());
            if outcome.fast_burn_started {
                if let Some((ring, label)) = events {
                    ring.record(
                        label,
                        EventKind::BudgetBurn,
                        format!(
                            "slo {name} fast window burning at {burn:.1}x budget rate",
                            burn = outcome.fast_burn
                        ),
                    );
                }
                if let Some(n) = notify {
                    n.on_budget_burn(&name, outcome.fast_burn);
                }
            }
            if outcome.slow_burn_started {
                if let Some((ring, label)) = events {
                    ring.record(
                        label,
                        EventKind::BudgetBurn,
                        format!(
                            "slo {name} slow window burning at {burn:.1}x budget rate",
                            burn = outcome.slow_burn
                        ),
                    );
                }
            }
            if outcome.breach_started {
                if let Some((ring, label)) = events {
                    ring.record(
                        label,
                        EventKind::SloBreach,
                        format!("slo {name} error budget exhausted"),
                    );
                }
                if let Some(n) = notify {
                    n.on_breach(&name);
                }
            }
        }
    }
}

/// This tick's good/bad verdict for one objective.
fn verdict(
    spec: &SloSpec,
    sources: &[Source],
    counter_deltas: &[(usize, String, u64)],
    hist_deltas: &[(usize, String, HistogramSnapshot)],
) -> bool {
    let source_matches = |want: &Option<String>, idx: usize| match want {
        Some(s) => sources[idx].name == *s,
        None => true,
    };
    match &spec.kind {
        crate::slo::SloObjectiveKind::Availability {
            source,
            failure_counter,
        } => counter_deltas
            .iter()
            .filter(|(idx, name, _)| name == failure_counter && source_matches(source, *idx))
            .map(|(_, _, d)| *d)
            .sum::<u64>()
            .eq(&0),
        crate::slo::SloObjectiveKind::LatencyP99 {
            source,
            metric,
            threshold_ms,
        } => {
            let mut merged = HistogramSnapshot::default();
            for (_, _, delta) in hist_deltas
                .iter()
                .filter(|(idx, name, _)| name == metric && source_matches(source, *idx))
            {
                merged.merge(delta);
            }
            merged.count == 0 || merged.quantile_ms(0.99) <= *threshold_ms
        }
    }
}

/// The background sampler. Construction spawns the thread; [`stop`]
/// (or drop) takes one final drain sample before joining, so the last
/// window of activity always lands in the series.
///
/// [`stop`]: TelemetrySampler::stop
pub struct TelemetrySampler {
    shared: Arc<SamplerShared>,
    handle: Mutex<Option<JoinHandle<()>>>,
    stopped: AtomicBool,
}

impl TelemetrySampler {
    /// Spawns the sampler thread (named `neo-obs-sampler`).
    pub fn spawn(cfg: SamplerConfig) -> Self {
        let shared = Arc::new(SamplerShared {
            cfg,
            state: Mutex::new(SamplerState {
                stopping: false,
                sources: Vec::new(),
                series: BTreeMap::new(),
                slos: Vec::new(),
                events: None,
                ticks: 0,
                last_tick_at: None,
            }),
            cv: Condvar::new(),
        });
        let worker = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("neo-obs-sampler".to_string())
            .spawn(move || {
                let interval = Duration::from_millis(worker.cfg.tick_interval_ms.max(1));
                let mut state = worker.lock();
                loop {
                    if state.stopping {
                        // Drain: one final sample so the tail of the
                        // story is in the series, then exit.
                        worker.sample_locked(&mut state);
                        return;
                    }
                    worker.sample_locked(&mut state);
                    let deadline = Instant::now() + interval;
                    while !state.stopping {
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        let (next, _) = worker
                            .cv
                            .wait_timeout(state, deadline - now)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        state = next;
                    }
                }
            })
            .expect("spawn telemetry sampler thread");
        TelemetrySampler {
            shared,
            handle: Mutex::new(Some(handle)),
            stopped: AtomicBool::new(false),
        }
    }

    /// Watches `registry`; its metrics appear as `name/...` series from
    /// the next tick on. The baseline snapshot is taken here,
    /// synchronously, so the first subsequent tick already yields
    /// deltas.
    pub fn watch(&self, name: &str, registry: Arc<MetricsRegistry>) {
        let prev = registry.snapshot();
        self.shared.lock().sources.push(Source {
            name: name.to_string(),
            registry,
            prev,
        });
    }

    /// Declares an objective evaluated each tick.
    pub fn add_slo(&self, spec: SloSpec) {
        self.shared.lock().slos.push((SloTracker::new(spec), None));
    }

    /// Declares an objective whose burn alerts also call `notify`
    /// (e.g. a serving health tracker that should go Degraded).
    pub fn add_slo_with_notify(&self, spec: SloSpec, notify: Arc<dyn SloNotify>) {
        self.shared
            .lock()
            .slos
            .push((SloTracker::new(spec), Some(notify)));
    }

    /// Routes `BudgetBurn`/`SloBreach` events into `ring`, recorded
    /// under `label`.
    pub fn attach_events(&self, ring: Arc<EventRing>, label: &str) {
        self.shared.lock().events = Some((ring, label.to_string()));
    }

    /// Takes one sample synchronously (benches and tests use this to
    /// pin tick boundaries instead of sleeping).
    pub fn tick_now(&self) {
        let mut state = self.shared.lock();
        self.shared.sample_locked(&mut state);
    }

    /// Samples taken so far.
    pub fn ticks(&self) -> u64 {
        self.shared.lock().ticks
    }

    /// All retained series, name-ordered.
    pub fn series(&self) -> Vec<SeriesSnapshot> {
        self.shared
            .lock()
            .series
            .iter()
            .map(|(name, ring)| SeriesSnapshot {
                name: name.clone(),
                start_tick: ring.start_tick,
                points: ring.points.iter().copied().collect(),
            })
            .collect()
    }

    /// Every declared SLO's current status.
    pub fn slo_status(&self) -> Vec<SloStatus> {
        self.shared
            .lock()
            .slos
            .iter()
            .map(|(t, _)| t.status())
            .collect()
    }

    /// The series as a JSON array (see [`SeriesSnapshot::to_node`]).
    pub fn series_node(&self) -> JsonNode {
        JsonNode::Arr(self.series().iter().map(SeriesSnapshot::to_node).collect())
    }

    /// The SLO statuses as a JSON array.
    pub fn slo_node(&self) -> JsonNode {
        JsonNode::Arr(self.slo_status().iter().map(SloStatus::to_node).collect())
    }

    /// Stops the thread: sets the flag, wakes it for the final drain
    /// sample, joins. Idempotent.
    pub fn stop(&self) {
        if self.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.lock().stopping = true;
        self.shared.cv.notify_all();
        if let Some(handle) = self
            .handle
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
        {
            // neo-obs sits below the serving layer, so it carries its
            // own join-during-unwind guard rather than borrowing serve's.
            if handle.join().is_err() && !std::thread::panicking() {
                panic!("telemetry sampler thread panicked");
            }
        }
    }
}

impl Drop for TelemetrySampler {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::SloSpec;

    #[test]
    fn series_ring_wraps_and_advances_its_start_tick() {
        let mut ring = SeriesRing::new(4, 1);
        for i in 0..10 {
            ring.push(i as f64);
        }
        assert_eq!(ring.points.len(), 4, "ring retains exactly its capacity");
        assert_eq!(ring.start_tick, 7, "six points fell off the front");
        let points: Vec<f64> = ring.points.iter().copied().collect();
        assert_eq!(points, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn stop_drains_one_final_sample() {
        let registry = Arc::new(MetricsRegistry::new());
        let hits = registry.counter("hits_total");
        // An hour-long interval: every observed sample is either the
        // startup tick or the drain tick, never a timer tick.
        let sampler = TelemetrySampler::spawn(SamplerConfig {
            tick_interval_ms: 3_600_000,
            series_capacity: 16,
        });
        sampler.watch("svc", Arc::clone(&registry));
        hits.add(5);
        sampler.stop();
        assert!(sampler.ticks() >= 1, "the drain sample always runs");
        let series = sampler.series();
        let rate = series
            .iter()
            .find(|s| s.name == "svc/hits_total_rate")
            .expect("counter series present after drain");
        assert!(
            rate.points.iter().any(|p| *p > 0.0),
            "the increments landed in the drained window: {points:?}",
            points = rate.points
        );
    }

    #[test]
    fn ticks_turn_counters_into_rates_and_histograms_into_windowed_quantiles() {
        let registry = Arc::new(MetricsRegistry::new());
        let hits = registry.counter("hits_total");
        let lat = registry.histogram("lat_ms");
        let gauge = registry.gauge("generation");
        let sampler = TelemetrySampler::spawn(SamplerConfig {
            tick_interval_ms: 3_600_000,
            series_capacity: 16,
        });
        sampler.watch("svc", Arc::clone(&registry));
        hits.add(10);
        lat.record_ms(4.0);
        gauge.set(3);
        sampler.tick_now();
        lat.record_ms(400.0);
        sampler.tick_now();
        let series = sampler.series();
        let by_name = |n: &str| {
            series
                .iter()
                .find(|s| s.name == n)
                .unwrap_or_else(|| panic!("missing series {n}"))
                .clone()
        };
        assert!(
            by_name("svc/hits_total_rate")
                .points
                .iter()
                .any(|p| *p > 0.0),
            "the 10 hits land in exactly one window"
        );
        assert_eq!(*by_name("svc/generation").points.last().unwrap(), 3.0);
        let p99 = by_name("svc/lat_ms_p99_ms");
        assert!(
            p99.points[0] < 100.0,
            "first window saw at most the 4ms sample"
        );
        assert!(
            p99.points.iter().any(|p| *p >= 100.0),
            "one window's delta isolates the 400ms sample: {points:?}",
            points = p99.points
        );
        sampler.stop();
    }

    #[test]
    fn availability_slo_burns_and_emits_events_through_the_sampler() {
        let registry = Arc::new(MetricsRegistry::new());
        let failures = registry.counter("sync_failures_total");
        let ring = Arc::new(EventRing::new(64));
        let sampler = TelemetrySampler::spawn(SamplerConfig {
            tick_interval_ms: 3_600_000,
            series_capacity: 64,
        });
        sampler.watch("node", Arc::clone(&registry));
        sampler.attach_events(Arc::clone(&ring), "telemetry");
        sampler.add_slo(
            SloSpec::availability("sync", "sync_failures_total", 0.9)
                .with_windows(32, 4)
                .with_burn_thresholds(5.0, 3.0),
        );
        for _ in 0..8 {
            sampler.tick_now();
        }
        // Two consecutive failing ticks: fast burn (2/4)/0.1 = 5× trips.
        failures.inc();
        sampler.tick_now();
        failures.inc();
        sampler.tick_now();
        let burns: Vec<_> = ring
            .snapshot()
            .into_iter()
            .filter(|e| e.kind == EventKind::BudgetBurn)
            .collect();
        assert_eq!(burns.len(), 1, "one rising edge, one event");
        assert!(burns[0].detail.contains("slo sync"));
        assert_eq!(burns[0].node, "telemetry");
        let status = &sampler.slo_status()[0];
        assert!(status.fast_alerting);
        assert!(status.budget_remaining < 1.0);
        // Recovery: clean ticks refill the budget series.
        for _ in 0..40 {
            sampler.tick_now();
        }
        let status = &sampler.slo_status()[0];
        assert_eq!(
            status.budget_remaining, 1.0,
            "budget refills after recovery"
        );
        assert!(!status.fast_alerting);
        let budget_series = sampler
            .series()
            .into_iter()
            .find(|s| s.name == "slo/sync_budget")
            .expect("budget series recorded");
        assert!(budget_series.points.iter().any(|p| *p < 1.0));
        assert_eq!(*budget_series.points.last().unwrap(), 1.0);
        sampler.stop();
    }
}
