//! Per-fingerprint hot-set tracking.
//!
//! The serving path sees the same query shapes over and over; the hot set
//! keeps one small stat block per fingerprint — probe counts, a latency
//! EWMA, and accumulated regret from execution feedback — so a snapshot
//! can answer "which query shapes dominate this node, and are the hot
//! ones the ones we are slow or wrong on?". Sharded like the experience
//! sink so concurrent serving workers rarely collide on a lock.

use crate::json::JsonNode;
use crate::span::TraceId;
use std::collections::HashMap;
use std::sync::Mutex;

/// Smoothing factor for the latency EWMA: each new observation
/// contributes 20%, so the average tracks roughly the last ~10 queries.
const EWMA_ALPHA: f64 = 0.2;

const SHARDS: usize = 16;

#[derive(Clone, Debug, Default)]
struct HotEntry {
    hits: u64,
    misses: u64,
    latency_ewma_ms: f64,
    executions: u64,
    regret_ms: f64,
    worst_ms: f64,
    worst_trace: u64,
}

/// One fingerprint's aggregated serving stats, as returned by
/// [`HotSet::top`].
#[derive(Clone, Debug)]
pub struct FingerprintStat {
    /// The query fingerprint.
    pub fingerprint: u128,
    /// Cache hits observed for this fingerprint.
    pub hits: u64,
    /// Cache misses (searches) observed for this fingerprint.
    pub misses: u64,
    /// Exponentially weighted moving average of serve latency, ms.
    pub latency_ewma_ms: f64,
    /// Execution reports received for this fingerprint.
    pub executions: u64,
    /// Accumulated regret (executed-minus-best latency), ms, from
    /// execution feedback.
    pub regret_ms: f64,
    /// The worst (slowest) observed optimize latency for this
    /// fingerprint, ms.
    pub worst_ms: f64,
    /// The exemplar trace id behind the worst observed optimize (0 when
    /// the worst probe was not traced) — the future superoptimizer's
    /// "why is this fingerprint hot" pointer.
    pub worst_trace: u64,
}

impl FingerprintStat {
    /// Total probes (hits + misses).
    pub fn probes(&self) -> u64 {
        self.hits + self.misses
    }

    /// The stat as a JSON object.
    pub fn to_node(&self) -> JsonNode {
        let mut obj = JsonNode::obj();
        obj.push(
            "fingerprint",
            JsonNode::Str(format!("{:032x}", self.fingerprint)),
        );
        obj.push("hits", JsonNode::U64(self.hits));
        obj.push("misses", JsonNode::U64(self.misses));
        obj.push(
            "latency_ewma_ms",
            JsonNode::f64_rounded(self.latency_ewma_ms, 4),
        );
        obj.push("executions", JsonNode::U64(self.executions));
        obj.push("regret_ms", JsonNode::f64_rounded(self.regret_ms, 4));
        obj.push("worst_ms", JsonNode::f64_rounded(self.worst_ms, 4));
        obj.push(
            "worst_trace",
            if self.worst_trace == 0 {
                JsonNode::Null
            } else {
                JsonNode::Str(TraceId(self.worst_trace).to_string())
            },
        );
        obj
    }
}

/// A sharded map of per-fingerprint serving stats.
#[derive(Debug)]
pub struct HotSet {
    shards: Vec<Mutex<HashMap<u128, HotEntry>>>,
}

impl Default for HotSet {
    fn default() -> Self {
        Self::new()
    }
}

impl HotSet {
    /// An empty hot set.
    pub fn new() -> Self {
        HotSet {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, fp: u128) -> std::sync::MutexGuard<'_, HashMap<u128, HotEntry>> {
        self.shards[(fp % SHARDS as u128) as usize]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Records one cache probe for `fp`: whether it hit, and the
    /// end-to-end serve latency.
    pub fn record_probe(&self, fp: u128, cache_hit: bool, latency_ms: f64) {
        self.record_probe_traced(fp, cache_hit, latency_ms, None);
    }

    /// [`Self::record_probe`] with the probe's trace id (when its trace
    /// committed): a probe that sets a new worst latency for the
    /// fingerprint also installs the trace as the entry's exemplar.
    pub fn record_probe_traced(
        &self,
        fp: u128,
        cache_hit: bool,
        latency_ms: f64,
        trace: Option<TraceId>,
    ) {
        let mut shard = self.shard(fp);
        let entry = shard.entry(fp).or_default();
        if cache_hit {
            entry.hits += 1;
        } else {
            entry.misses += 1;
        }
        if latency_ms.is_finite() && latency_ms >= 0.0 {
            if entry.hits + entry.misses == 1 {
                entry.latency_ewma_ms = latency_ms;
            } else {
                entry.latency_ewma_ms =
                    EWMA_ALPHA * latency_ms + (1.0 - EWMA_ALPHA) * entry.latency_ewma_ms;
            }
            if latency_ms >= entry.worst_ms {
                entry.worst_ms = latency_ms;
                // Only overwrite the exemplar when this worst probe was
                // actually traced — a slower untraced probe keeps the
                // previous pointer rather than erasing it.
                if let Some(t) = trace {
                    entry.worst_trace = t.0;
                }
            }
        }
    }

    /// Records one execution report for `fp` with its regret (executed
    /// latency minus the best known latency for the shape; clamped at 0).
    pub fn record_execution(&self, fp: u128, regret_ms: f64) {
        let mut shard = self.shard(fp);
        let entry = shard.entry(fp).or_default();
        entry.executions += 1;
        if regret_ms.is_finite() {
            entry.regret_ms += regret_ms.max(0.0);
        }
    }

    /// Distinct fingerprints tracked.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len()
            })
            .sum()
    }

    /// Whether no fingerprint has been tracked yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `n` hottest fingerprints, by total probes descending (ties
    /// broken by fingerprint ascending, so the order is deterministic).
    pub fn top(&self, n: usize) -> Vec<FingerprintStat> {
        let mut all: Vec<FingerprintStat> = Vec::new();
        for shard in &self.shards {
            let shard = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            all.extend(shard.iter().map(|(&fp, e)| FingerprintStat {
                fingerprint: fp,
                hits: e.hits,
                misses: e.misses,
                latency_ewma_ms: e.latency_ewma_ms,
                executions: e.executions,
                regret_ms: e.regret_ms,
                worst_ms: e.worst_ms,
                worst_trace: e.worst_trace,
            }));
        }
        all.sort_by(|a, b| {
            b.probes()
                .cmp(&a.probes())
                .then(a.fingerprint.cmp(&b.fingerprint))
        });
        all.truncate(n);
        all
    }

    /// The top-`n` hot set as a JSON array.
    pub fn to_node(&self, n: usize) -> JsonNode {
        JsonNode::Arr(self.top(n).iter().map(FingerprintStat::to_node).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_orders_by_probes_then_fingerprint() {
        let hs = HotSet::new();
        for _ in 0..5 {
            hs.record_probe(10, true, 1.0);
        }
        for _ in 0..3 {
            hs.record_probe(20, false, 4.0);
        }
        hs.record_probe(30, true, 2.0);
        let top = hs.top(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].fingerprint, 10);
        assert_eq!(top[0].hits, 5);
        assert_eq!(top[1].fingerprint, 20);
        assert_eq!(top[1].misses, 3);
        assert_eq!(hs.len(), 3);
    }

    #[test]
    fn ewma_starts_at_first_observation_and_smooths() {
        let hs = HotSet::new();
        hs.record_probe(1, true, 10.0);
        assert!((hs.top(1)[0].latency_ewma_ms - 10.0).abs() < 1e-9);
        hs.record_probe(1, true, 20.0);
        let ewma = hs.top(1)[0].latency_ewma_ms;
        assert!(
            (ewma - 12.0).abs() < 1e-9,
            "0.2*20 + 0.8*10 = 12, got {ewma}"
        );
    }

    #[test]
    fn worst_probe_installs_its_trace_as_exemplar() {
        let hs = HotSet::new();
        hs.record_probe_traced(5, false, 12.0, Some(TraceId(0xaa)));
        hs.record_probe_traced(5, false, 30.0, Some(TraceId(0xbb)));
        // Faster probe: neither worst_ms nor the exemplar move.
        hs.record_probe_traced(5, true, 1.0, Some(TraceId(0xcc)));
        let top = hs.top(1);
        assert!((top[0].worst_ms - 30.0).abs() < 1e-9);
        assert_eq!(top[0].worst_trace, 0xbb);
        // A slower *untraced* probe raises worst_ms but keeps the pointer.
        hs.record_probe(5, false, 40.0);
        let top = hs.top(1);
        assert!((top[0].worst_ms - 40.0).abs() < 1e-9);
        assert_eq!(top[0].worst_trace, 0xbb);
        assert!(top[0]
            .to_node()
            .render()
            .contains("\"worst_trace\": \"00000000000000bb\""));
    }

    #[test]
    fn regret_accumulates_and_clamps_negative() {
        let hs = HotSet::new();
        hs.record_execution(7, 3.0);
        hs.record_execution(7, -1.0);
        hs.record_execution(7, 2.0);
        let top = hs.top(1);
        assert_eq!(top[0].executions, 3);
        assert!((top[0].regret_ms - 5.0).abs() < 1e-9);
    }
}
