//! The fleet snapshot: one uniform tree for everything observable.
//!
//! Before neo-obs, each subsystem grew its own stats struct (cache,
//! health, retry, chaos, checkpoint store) and each bench hand-rolled its
//! own JSON for them. A [`FleetSnapshot`] is the single assembly point:
//! named sections of [`JsonNode`]s, rendered as one document. Benches
//! embed it, the cluster builds one per fleet, and a postmortem reads one
//! file instead of five formats.

use crate::json::{validate, JsonNode};

/// A named-section observability snapshot, rendered as a single JSON
/// object in insertion order.
#[derive(Clone, Debug, Default)]
pub struct FleetSnapshot {
    sections: Vec<(String, JsonNode)>,
}

impl FleetSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a named section.
    pub fn push(&mut self, name: &str, node: JsonNode) {
        if let Some(existing) = self.sections.iter_mut().find(|(n, _)| n == name) {
            existing.1 = node;
        } else {
            self.sections.push((name.to_string(), node));
        }
    }

    /// The section registered under `name`, if any.
    pub fn section(&self, name: &str) -> Option<&JsonNode> {
        self.sections
            .iter()
            .find_map(|(n, v)| (n == name).then_some(v))
    }

    /// Section names in insertion order.
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The snapshot as one JSON object.
    pub fn to_node(&self) -> JsonNode {
        let mut obj = JsonNode::obj();
        for (name, node) in &self.sections {
            obj.push(name, node.clone());
        }
        obj
    }

    /// The snapshot rendered as a JSON document. Debug builds re-validate
    /// the output (the writer and checker keep each other honest).
    pub fn to_json(&self) -> String {
        let json = self.to_node().render();
        debug_assert!(
            validate(&json).is_ok(),
            "FleetSnapshot rendered invalid JSON"
        );
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_keep_order_and_replace_by_name() {
        let mut snap = FleetSnapshot::new();
        snap.push("cache", JsonNode::U64(1));
        snap.push("health", JsonNode::U64(2));
        snap.push("cache", JsonNode::U64(3));
        assert_eq!(snap.section_names(), vec!["cache", "health"]);
        assert_eq!(snap.section("cache"), Some(&JsonNode::U64(3)));
        validate(&snap.to_json()).expect("snapshot JSON well-formed");
    }
}
