//! A small vendored JSON writer (and well-formedness checker).
//!
//! The offline build has no serde; every bench report so far hand-rolled
//! its JSON with `format!`. This module replaces that with one tiny tree
//! type: build a [`JsonNode`], call [`JsonNode::render`], get
//! deterministic pretty-printed JSON with correct escaping. The
//! [`validate`] parser is the other half of the bargain — benches assert
//! their emitted files are well-formed in-binary instead of hoping.

/// A JSON value tree. Object keys keep insertion order (reports are
/// documents, not maps).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonNode {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (non-finite values render as `null`).
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<JsonNode>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, JsonNode)>),
}

impl JsonNode {
    /// An empty object.
    pub fn obj() -> Self {
        JsonNode::Obj(Vec::new())
    }

    /// Appends `key: value` to an object.
    ///
    /// # Panics
    /// Panics when `self` is not an object.
    pub fn push(&mut self, key: &str, value: JsonNode) {
        match self {
            JsonNode::Obj(fields) => fields.push((key.to_string(), value)),
            _ => panic!("push on a non-object JsonNode"),
        }
    }

    /// A float rounded to `digits` decimal places (keeps report files
    /// readable and diffs small; full precision is rarely signal).
    pub fn f64_rounded(v: f64, digits: u32) -> Self {
        if !v.is_finite() {
            return JsonNode::F64(v);
        }
        let scale = 10f64.powi(digits as i32);
        JsonNode::F64((v * scale).round() / scale)
    }

    /// The value under `key`, when `self` is an object holding it.
    pub fn get(&self, key: &str) -> Option<&JsonNode> {
        match self {
            JsonNode::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value at a `.`-separated path of object keys.
    pub fn get_path(&self, path: &str) -> Option<&JsonNode> {
        path.split('.').try_fold(self, |node, key| node.get(key))
    }

    /// This node as a float, when numeric (counters widen losslessly
    /// enough for report arithmetic).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonNode::U64(v) => Some(*v as f64),
            JsonNode::I64(v) => Some(*v as f64),
            JsonNode::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// This node as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonNode::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This node's items, when it is an array.
    pub fn as_arr(&self) -> Option<&[JsonNode]> {
        match self {
            JsonNode::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// This node's fields, when it is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonNode)]> {
        match self {
            JsonNode::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Pretty-printed JSON (2-space indent, trailing newline-free).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            JsonNode::Null => out.push_str("null"),
            JsonNode::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonNode::U64(v) => out.push_str(&v.to_string()),
            JsonNode::I64(v) => out.push_str(&v.to_string()),
            JsonNode::F64(v) => {
                if v.is_finite() {
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            JsonNode::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonNode::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.render_into(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            JsonNode::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    JsonNode::Str(key.clone()).render_into(out, indent + 1);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Checks `s` is one well-formed JSON value (recursive-descent, no tree
/// built). Returns a byte offset + message on the first syntax error.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

/// Parses `s` into a [`JsonNode`] tree — the reader half of the vendored
/// writer, so benches can load a prior run's envelope and compare.
/// Numbers without a fraction or exponent come back as `U64`/`I64`
/// (whichever fits), everything else as `F64`; object key order is
/// preserved. Returns a byte offset + message on the first syntax error.
pub fn parse(s: &str) -> Result<JsonNode, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let node = parse_value_node(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(node)
}

fn parse_value_node(b: &[u8], pos: &mut usize) -> Result<JsonNode, String> {
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1; // '{'
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonNode::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b'"') {
                    return Err(format!("expected object key at byte {pos}", pos = *pos));
                }
                let key = parse_string_node(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                skip_ws(b, pos);
                fields.push((key, parse_value_node(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonNode::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1; // '['
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonNode::Arr(items));
            }
            loop {
                skip_ws(b, pos);
                items.push(parse_value_node(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonNode::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => parse_string_node(b, pos).map(JsonNode::Str),
        Some(b't') => parse_literal(b, pos, "true").map(|_| JsonNode::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false").map(|_| JsonNode::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null").map(|_| JsonNode::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            parse_number(b, pos)?;
            let text = std::str::from_utf8(&b[start..*pos])
                .map_err(|_| format!("bad number at byte {start}"))?;
            let integral = !text.contains(['.', 'e', 'E']);
            if integral {
                if let Ok(v) = text.parse::<u64>() {
                    return Ok(JsonNode::U64(v));
                }
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(JsonNode::I64(v));
                }
            }
            text.parse::<f64>()
                .map(JsonNode::F64)
                .map_err(|_| format!("bad number at byte {start}"))
        }
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
    }
}

/// Like [`parse_string`], but decodes the content (escapes and
/// `\uXXXX`, including surrogate pairs).
fn parse_string_node(b: &[u8], pos: &mut usize) -> Result<String, String> {
    let start = *pos;
    parse_string(b, pos)?;
    let raw = std::str::from_utf8(&b[start + 1..*pos - 1])
        .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?;
    if !raw.contains('\\') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('/') => out.push('/'),
            Some('b') => out.push('\u{8}'),
            Some('f') => out.push('\u{c}'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hi = take_hex4(&mut chars)
                    .ok_or_else(|| format!("bad \\u escape in string at byte {start}"))?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: the validator guaranteed syntax, not
                    // pairing, so check the low half here.
                    match (chars.next(), chars.next()) {
                        (Some('\\'), Some('u')) => {
                            let lo = take_hex4(&mut chars).filter(|l| (0xDC00..0xE000).contains(l));
                            match lo {
                                Some(lo) => 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00),
                                None => {
                                    return Err(format!(
                                        "unpaired surrogate in string at byte {start}"
                                    ))
                                }
                            }
                        }
                        _ => return Err(format!("unpaired surrogate in string at byte {start}")),
                    }
                } else {
                    hi
                };
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| format!("invalid codepoint in string at byte {start}"))?,
                );
            }
            _ => return Err(format!("bad escape in string at byte {start}")),
        }
    }
    Ok(out)
}

fn take_hex4(chars: &mut std::str::Chars<'_>) -> Option<u32> {
    let mut v = 0u32;
    for _ in 0..4 {
        v = v * 16 + chars.next()?.to_digit(16)?;
    }
    Some(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, "true"),
        Some(b'f') => parse_literal(b, pos, "false"),
        Some(b'n') => parse_literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_from = *pos;
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    if *pos == digits_from {
        return Err(format!("empty number at byte {start}"));
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|t| t.parse::<f64>().ok())
        .map(|_| ())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {pos}", pos = *pos));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            c if c < 0x20 => {
                return Err(format!("raw control byte in string at {pos}", pos = *pos))
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_validates_roundtrip() {
        let mut obj = JsonNode::obj();
        obj.push("name", JsonNode::Str("with \"quotes\"\nand newline".into()));
        obj.push("count", JsonNode::U64(42));
        obj.push("ratio", JsonNode::F64(0.5));
        obj.push("neg", JsonNode::I64(-3));
        obj.push("nan", JsonNode::F64(f64::NAN));
        obj.push("flag", JsonNode::Bool(true));
        obj.push(
            "items",
            JsonNode::Arr(vec![JsonNode::U64(1), JsonNode::Null]),
        );
        obj.push("empty", JsonNode::obj());
        let json = obj.render();
        validate(&json).expect("rendered JSON must validate");
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"nan\": null"));
    }

    #[test]
    fn validate_accepts_the_existing_handrolled_style() {
        validate("{\"a\": 1, \"b\": [1.5, -2e3, true], \"c\": {\"d\": null}}").expect("valid");
        validate("  [1, 2, 3]  ").expect("valid");
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        for bad in [
            "{",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1, 2",
            "{\"a\" 1}",
            "\"unterminated",
            "{\"a\": 1} trailing",
            "01a",
            "",
        ] {
            assert!(validate(bad).is_err(), "accepted malformed: {bad:?}");
        }
    }

    #[test]
    fn parse_roundtrips_the_writer() {
        let mut obj = JsonNode::obj();
        obj.push("name", JsonNode::Str("with \"quotes\"\nand newline".into()));
        obj.push("count", JsonNode::U64(42));
        obj.push("ratio", JsonNode::F64(0.5));
        obj.push("neg", JsonNode::I64(-3));
        obj.push("flag", JsonNode::Bool(true));
        obj.push(
            "items",
            JsonNode::Arr(vec![JsonNode::U64(1), JsonNode::Null]),
        );
        obj.push("empty", JsonNode::obj());
        let parsed = parse(&obj.render()).expect("own output parses");
        assert_eq!(parsed, obj, "parse inverts render");
    }

    #[test]
    fn parse_decodes_escapes_and_number_types() {
        let doc = parse("{\"u\": \"\\u00e9\\ud83d\\ude00\", \"big\": 18446744073709551615, \"neg\": -2, \"f\": 2e3}")
            .expect("valid");
        assert_eq!(doc.get("u").and_then(JsonNode::as_str), Some("é😀"));
        assert_eq!(doc.get("big"), Some(&JsonNode::U64(u64::MAX)));
        assert_eq!(doc.get("neg"), Some(&JsonNode::I64(-2)));
        assert_eq!(doc.get("f"), Some(&JsonNode::F64(2000.0)));
        assert!(
            parse("{\"bad\": \"\\ud800 alone\"}").is_err(),
            "unpaired surrogate"
        );
        assert!(parse("[1, 2").is_err());
    }

    #[test]
    fn path_lookup_walks_nested_objects() {
        let doc = parse("{\"a\": {\"b\": {\"c\": 7}}, \"arr\": [1]}").expect("valid");
        assert_eq!(doc.get_path("a.b.c").and_then(JsonNode::as_f64), Some(7.0));
        assert!(doc.get_path("a.b.missing").is_none());
        assert_eq!(
            doc.get("arr").and_then(JsonNode::as_arr).map(<[_]>::len),
            Some(1)
        );
    }

    #[test]
    fn f64_rounded_truncates_noise() {
        assert_eq!(JsonNode::f64_rounded(1.23456789, 3), JsonNode::F64(1.235));
        assert_eq!(JsonNode::f64_rounded(2.0, 2), JsonNode::F64(2.0));
    }
}
