//! A small vendored JSON writer (and well-formedness checker).
//!
//! The offline build has no serde; every bench report so far hand-rolled
//! its JSON with `format!`. This module replaces that with one tiny tree
//! type: build a [`JsonNode`], call [`JsonNode::render`], get
//! deterministic pretty-printed JSON with correct escaping. The
//! [`validate`] parser is the other half of the bargain — benches assert
//! their emitted files are well-formed in-binary instead of hoping.

/// A JSON value tree. Object keys keep insertion order (reports are
/// documents, not maps).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonNode {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (non-finite values render as `null`).
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<JsonNode>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, JsonNode)>),
}

impl JsonNode {
    /// An empty object.
    pub fn obj() -> Self {
        JsonNode::Obj(Vec::new())
    }

    /// Appends `key: value` to an object.
    ///
    /// # Panics
    /// Panics when `self` is not an object.
    pub fn push(&mut self, key: &str, value: JsonNode) {
        match self {
            JsonNode::Obj(fields) => fields.push((key.to_string(), value)),
            _ => panic!("push on a non-object JsonNode"),
        }
    }

    /// A float rounded to `digits` decimal places (keeps report files
    /// readable and diffs small; full precision is rarely signal).
    pub fn f64_rounded(v: f64, digits: u32) -> Self {
        if !v.is_finite() {
            return JsonNode::F64(v);
        }
        let scale = 10f64.powi(digits as i32);
        JsonNode::F64((v * scale).round() / scale)
    }

    /// Pretty-printed JSON (2-space indent, trailing newline-free).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            JsonNode::Null => out.push_str("null"),
            JsonNode::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonNode::U64(v) => out.push_str(&v.to_string()),
            JsonNode::I64(v) => out.push_str(&v.to_string()),
            JsonNode::F64(v) => {
                if v.is_finite() {
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            JsonNode::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonNode::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.render_into(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            JsonNode::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    JsonNode::Str(key.clone()).render_into(out, indent + 1);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Checks `s` is one well-formed JSON value (recursive-descent, no tree
/// built). Returns a byte offset + message on the first syntax error.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, "true"),
        Some(b'f') => parse_literal(b, pos, "false"),
        Some(b'n') => parse_literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_from = *pos;
    while *pos < b.len() && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-')) {
        *pos += 1;
    }
    if *pos == digits_from {
        return Err(format!("empty number at byte {start}"));
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|t| t.parse::<f64>().ok())
        .map(|_| ())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {pos}", pos = *pos));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            c if c < 0x20 => {
                return Err(format!("raw control byte in string at {pos}", pos = *pos))
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_validates_roundtrip() {
        let mut obj = JsonNode::obj();
        obj.push("name", JsonNode::Str("with \"quotes\"\nand newline".into()));
        obj.push("count", JsonNode::U64(42));
        obj.push("ratio", JsonNode::F64(0.5));
        obj.push("neg", JsonNode::I64(-3));
        obj.push("nan", JsonNode::F64(f64::NAN));
        obj.push("flag", JsonNode::Bool(true));
        obj.push("items", JsonNode::Arr(vec![JsonNode::U64(1), JsonNode::Null]));
        obj.push("empty", JsonNode::obj());
        let json = obj.render();
        validate(&json).expect("rendered JSON must validate");
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"nan\": null"));
    }

    #[test]
    fn validate_accepts_the_existing_handrolled_style() {
        validate("{\"a\": 1, \"b\": [1.5, -2e3, true], \"c\": {\"d\": null}}").expect("valid");
        validate("  [1, 2, 3]  ").expect("valid");
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        for bad in [
            "{",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1, 2",
            "{\"a\" 1}",
            "\"unterminated",
            "{\"a\": 1} trailing",
            "01a",
            "",
        ] {
            assert!(validate(bad).is_err(), "accepted malformed: {bad:?}");
        }
    }

    #[test]
    fn f64_rounded_truncates_noise() {
        assert_eq!(JsonNode::f64_rounded(1.23456789, 3), JsonNode::F64(1.235));
        assert_eq!(JsonNode::f64_rounded(2.0, 2), JsonNode::F64(2.0));
    }
}
