//! neo-obs: zero-dependency observability for the Neo reproduction.
//!
//! One small crate, std only, threaded through every layer:
//!
//! - [`MetricsRegistry`] — named counters/gauges/histograms; registration
//!   locks once, updates are relaxed atomics ([`metrics`]).
//! - [`LatencyHistogram`] — fixed-bucket log-scale histograms with exact
//!   bucket-wise merging and monotone quantile estimates ([`hist`]).
//! - [`EventRing`] — a bounded lock-free ring of structured trace events
//!   that survives (and explains) a chaos soak ([`ring`]).
//! - [`span`] — causal span tracing: RAII guards, a bounded [`SpanRing`]
//!   with the event ring's discipline, head+tail sampling, and explicit
//!   cross-thread/cross-node context propagation.
//! - [`SearchTrace`] — opt-in per-query serving traces ([`trace`]).
//! - [`HotSet`] — per-fingerprint hit/latency/regret tracking ([`hotset`]).
//! - [`FleetSnapshot`] — the uniform JSON tree absorbing every
//!   subsystem's stats struct ([`snapshot`]), built on a tiny vendored
//!   JSON writer + validator/parser ([`json`]).
//! - [`TelemetrySampler`] — a background thread turning registry
//!   snapshots into windowed per-metric time series ([`timeseries`]).
//! - [`SloTracker`] — declarative SLOs with error-budget accounting and
//!   two-window burn-rate alerting ([`slo`]).
//! - [`regress`] — cross-run regression gates over `BENCH_*.json`
//!   envelopes (flatten, suffix rules, tolerance verdicts).

#![warn(missing_docs)]

pub mod hist;
pub mod hotset;
pub mod json;
pub mod metrics;
pub mod regress;
pub mod ring;
pub mod slo;
pub mod snapshot;
pub mod span;
pub mod timeseries;
pub mod trace;

pub use hist::{HistogramSnapshot, LatencyHistogram, HISTOGRAM_BUCKETS};
pub use hotset::{FingerprintStat, HotSet};
pub use json::{parse, validate, JsonNode};
pub use metrics::{Counter, Gauge, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use regress::{default_rules, RegressRule, RegressionFinding, RegressionReport};
pub use ring::{Event, EventKind, EventRing};
pub use slo::{SloNotify, SloSpec, SloStatus, SloTracker};
pub use snapshot::FleetSnapshot;
pub use span::{
    clock_origin, now_ms, now_us, Span, SpanContext, SpanGuard, SpanId, SpanRing, TraceId, Tracer,
};
pub use timeseries::{SamplerConfig, SeriesSnapshot, TelemetrySampler};
pub use trace::{SearchTrace, SeedOutcome};
