//! neo-obs: zero-dependency observability for the Neo reproduction.
//!
//! One small crate, std only, threaded through every layer:
//!
//! - [`MetricsRegistry`] — named counters/gauges/histograms; registration
//!   locks once, updates are relaxed atomics ([`metrics`]).
//! - [`LatencyHistogram`] — fixed-bucket log-scale histograms with exact
//!   bucket-wise merging and monotone quantile estimates ([`hist`]).
//! - [`EventRing`] — a bounded lock-free ring of structured trace events
//!   that survives (and explains) a chaos soak ([`ring`]).
//! - [`SearchTrace`] — opt-in per-query serving traces ([`trace`]).
//! - [`HotSet`] — per-fingerprint hit/latency/regret tracking ([`hotset`]).
//! - [`FleetSnapshot`] — the uniform JSON tree absorbing every
//!   subsystem's stats struct ([`snapshot`]), built on a tiny vendored
//!   JSON writer + validator ([`json`]).

#![warn(missing_docs)]

pub mod hist;
pub mod hotset;
pub mod json;
pub mod metrics;
pub mod ring;
pub mod snapshot;
pub mod trace;

pub use hist::{HistogramSnapshot, LatencyHistogram, HISTOGRAM_BUCKETS};
pub use hotset::{FingerprintStat, HotSet};
pub use json::{validate, JsonNode};
pub use metrics::{Counter, Gauge, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use ring::{Event, EventKind, EventRing};
pub use snapshot::FleetSnapshot;
pub use trace::{SearchTrace, SeedOutcome};
