//! Per-query search traces.
//!
//! A [`SearchTrace`] is an opt-in, per-request record of what the serving
//! path actually did for one query: whether the plan cache answered and
//! under which epoch, which model generation/term served, how far the
//! wavefront search ran, whether a cached seed plan survived the
//! challenge or was beaten, and whether a warm scratch session was
//! reused. It is the "explain this one slow query" tool the aggregate
//! histograms cannot be.

use crate::json::JsonNode;

/// Outcome of the seed-plan challenge on a cache-miss search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeedOutcome {
    /// No cached seed plan existed for the fingerprint.
    NoSeed,
    /// The search was seeded and the seed (or an equal-cost refinement of
    /// it) remained the best plan.
    Retained,
    /// The search was seeded and found a strictly better plan.
    Beaten,
}

impl SeedOutcome {
    /// Stable lower-case label (the JSON `seed_outcome` field).
    pub fn label(&self) -> &'static str {
        match self {
            SeedOutcome::NoSeed => "no_seed",
            SeedOutcome::Retained => "retained",
            SeedOutcome::Beaten => "beaten",
        }
    }
}

/// One query's end-to-end serving trace. All fields are filled by the
/// optimizer service when the request opts in; a cache hit leaves the
/// search-shaped fields at their zero values.
#[derive(Clone, Debug)]
pub struct SearchTrace {
    /// The request's query id.
    pub query_id: String,
    /// The query fingerprint used for cache and hot-set keying.
    pub fingerprint: u128,
    /// Whether the plan cache answered without a search.
    pub cache_hit: bool,
    /// The cache epoch the request observed.
    pub cache_epoch: u64,
    /// The model generation that produced (or originally produced) the plan.
    pub model_generation: u64,
    /// The leadership term of the serving model slot.
    pub model_term: u64,
    /// Wavefront iterations (batched expansion rounds) the search ran.
    pub batches: usize,
    /// Plans expanded during the search.
    pub expansions: usize,
    /// Plans scored by the value network.
    pub scored: usize,
    /// Wall-clock time of the search itself, milliseconds (0 on a hit).
    pub search_wall_ms: f64,
    /// Wall-clock time of the whole optimize call, milliseconds.
    pub total_wall_ms: f64,
    /// Whether the search hit its budget and returned hurried.
    pub hurried: bool,
    /// Outcome of the cached-seed challenge.
    pub seed_outcome: SeedOutcome,
    /// Whether a warm scratch session was reused (vs freshly built).
    pub session_reused: bool,
    /// The value net's predicted cost for the chosen plan, if scored.
    pub predicted_ms: Option<f64>,
    /// The causal span trace this request committed to the span ring
    /// (raw [`crate::span::TraceId`] bits), when its trace was sampled
    /// or tail-latched — the link from this flat record to the full
    /// per-stage waterfall.
    pub trace_id: Option<u64>,
}

impl SearchTrace {
    /// The trace as a JSON object.
    pub fn to_node(&self) -> JsonNode {
        let mut obj = JsonNode::obj();
        obj.push("query_id", JsonNode::Str(self.query_id.clone()));
        obj.push(
            "fingerprint",
            JsonNode::Str(format!("{:032x}", self.fingerprint)),
        );
        obj.push("cache_hit", JsonNode::Bool(self.cache_hit));
        obj.push("cache_epoch", JsonNode::U64(self.cache_epoch));
        obj.push("model_generation", JsonNode::U64(self.model_generation));
        obj.push("model_term", JsonNode::U64(self.model_term));
        obj.push("batches", JsonNode::U64(self.batches as u64));
        obj.push("expansions", JsonNode::U64(self.expansions as u64));
        obj.push("scored", JsonNode::U64(self.scored as u64));
        obj.push(
            "search_wall_ms",
            JsonNode::f64_rounded(self.search_wall_ms, 4),
        );
        obj.push(
            "total_wall_ms",
            JsonNode::f64_rounded(self.total_wall_ms, 4),
        );
        obj.push("hurried", JsonNode::Bool(self.hurried));
        obj.push(
            "seed_outcome",
            JsonNode::Str(self.seed_outcome.label().to_string()),
        );
        obj.push("session_reused", JsonNode::Bool(self.session_reused));
        obj.push(
            "predicted_ms",
            match self.predicted_ms {
                Some(v) => JsonNode::f64_rounded(v, 4),
                None => JsonNode::Null,
            },
        );
        obj.push(
            "trace_id",
            match self.trace_id {
                Some(t) => JsonNode::Str(crate::span::TraceId(t).to_string()),
                None => JsonNode::Null,
            },
        );
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    #[test]
    fn trace_renders_to_valid_json() {
        let trace = SearchTrace {
            query_id: "q9".to_string(),
            fingerprint: 0xdead_beef,
            cache_hit: false,
            cache_epoch: 2,
            model_generation: 5,
            model_term: 1,
            batches: 4,
            expansions: 120,
            scored: 240,
            search_wall_ms: 1.75,
            total_wall_ms: 1.9,
            hurried: false,
            seed_outcome: SeedOutcome::Beaten,
            session_reused: true,
            predicted_ms: Some(3.25),
            trace_id: Some(0xfeed),
        };
        let json = trace.to_node().render();
        validate(&json).expect("trace JSON well-formed");
        assert!(json.contains("\"seed_outcome\": \"beaten\""));
        assert!(json.contains("000000000000000000000000deadbeef"));
        assert!(json.contains("\"trace_id\": \"000000000000feed\""));
    }
}
