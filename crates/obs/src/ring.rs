//! The bounded event ring: structured trace events for postmortems.
//!
//! A fixed-capacity ring of [`Event`]s — model swaps, lease transitions,
//! health state changes, chaos faults, retry exhaustion. Writers reserve
//! a slot with one lock-free `fetch_add` (total order across threads) and
//! fill it under a per-slot micro-lock held for a single `Option` store;
//! with capacity ≫ writer count the slot locks are effectively private,
//! so a chaos soak can log from every node's tick thread without the ring
//! ever becoming a synchronization point. The ring keeps the **latest**
//! `capacity` events: old entries are overwritten, which is exactly the
//! postmortem contract — after a soak, the tail of the story (the outage,
//! the resign, the fenced takeover) is still there, reconstructable
//! without reading logs.

use crate::json::JsonNode;
use crate::span::now_ms;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What kind of thing happened. Variants map one-to-one onto the fleet's
/// state transitions so a dump can be machine-filtered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A model generation went live in a serving slot.
    ModelSwap,
    /// A node claimed or renewed leadership (lease acquired under a term).
    LeaseAcquired,
    /// A leader stepped down (resignation or demotion).
    LeaderResigned,
    /// A health tracker changed state (healthy/degraded/isolated).
    HealthChanged,
    /// The chaos layer injected a fault.
    ChaosFault,
    /// A full store outage started or ended.
    Outage,
    /// A retry policy exhausted its attempt budget.
    RetryExhausted,
    /// An SLO's error budget is burning at alert rate (fast or slow
    /// window — the detail says which).
    BudgetBurn,
    /// An SLO's error budget is fully spent.
    SloBreach,
    /// Anything else worth a line in the postmortem.
    Note,
}

impl EventKind {
    /// Stable lower-case label (the JSON `kind` field).
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::ModelSwap => "model_swap",
            EventKind::LeaseAcquired => "lease_acquired",
            EventKind::LeaderResigned => "leader_resigned",
            EventKind::HealthChanged => "health_changed",
            EventKind::ChaosFault => "chaos_fault",
            EventKind::Outage => "outage",
            EventKind::RetryExhausted => "retry_exhausted",
            EventKind::BudgetBurn => "budget_burn",
            EventKind::SloBreach => "slo_breach",
            EventKind::Note => "note",
        }
    }
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Global sequence number (total order across all writers).
    pub seq: u64,
    /// Milliseconds since the process-wide clock origin
    /// ([`crate::span::clock_origin`]) — the same base spans and health
    /// transitions stamp against, so postmortems interleave by timestamp.
    pub at_ms: u64,
    /// The node (or component) that recorded the event.
    pub node: String,
    /// What happened.
    pub kind: EventKind,
    /// Free-form detail (terms, generations, error text).
    pub detail: String,
}

impl Event {
    /// The event as a JSON object.
    pub fn to_node(&self) -> JsonNode {
        let mut obj = JsonNode::obj();
        obj.push("seq", JsonNode::U64(self.seq));
        obj.push("at_ms", JsonNode::U64(self.at_ms));
        obj.push("node", JsonNode::Str(self.node.clone()));
        obj.push("kind", JsonNode::Str(self.kind.label().to_string()));
        obj.push("detail", JsonNode::Str(self.detail.clone()));
        obj
    }
}

/// The bounded ring. See module docs for the concurrency contract.
pub struct EventRing {
    slots: Vec<Mutex<Option<Event>>>,
    next: AtomicU64,
    /// Events lost to wraparound: every write that found the slot still
    /// occupied displaced one event (either the slot's previous tenant or
    /// — for a delayed writer losing to a newer lap — the write itself).
    dropped: AtomicU64,
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl EventRing {
    /// A ring keeping the latest `capacity` events (≥ 1).
    pub fn new(capacity: usize) -> Self {
        EventRing {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Capacity (the retention bound).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Events silently lost to wraparound so far — a dump accompanied by
    /// a non-zero drop count is honest about being the *tail* of the
    /// story, not the whole story.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records one event.
    pub fn record(&self, node: &str, kind: EventKind, detail: impl Into<String>) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        let event = Event {
            seq,
            at_ms: now_ms(),
            node: node.to_string(),
            kind,
            detail: detail.into(),
        };
        let slot = (seq % self.slots.len() as u64) as usize;
        let mut guard = self.slots[slot]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // A delayed writer must not clobber a newer lap's entry: the slot
        // only ever moves forward in sequence. Either way an occupied
        // slot means one event is lost — the previous tenant on
        // overwrite, this event when it loses to a newer lap — and the
        // loss is counted instead of silent.
        if guard.is_some() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        if guard.as_ref().is_none_or(|e| e.seq < seq) {
            *guard = Some(event);
        }
    }

    /// The retained events in sequence order (ascending `seq`, oldest
    /// retained first). At most `capacity` entries.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut events: Vec<Event> = self
            .slots
            .iter()
            .filter_map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .clone()
            })
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// The retained events as a JSON array (sequence order).
    pub fn to_node(&self) -> JsonNode {
        JsonNode::Arr(self.snapshot().iter().map(Event::to_node).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_below_capacity() {
        let ring = EventRing::new(8);
        ring.record("a", EventKind::ModelSwap, "gen=1");
        ring.record("b", EventKind::LeaseAcquired, "term=1");
        let events = ring.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].node, "a");
        assert_eq!(events[1].kind, EventKind::LeaseAcquired);
        assert_eq!(ring.recorded(), 2);
    }

    #[test]
    fn wraparound_keeps_the_latest_events_in_sequence_order() {
        let ring = EventRing::new(4);
        for i in 0..10u64 {
            ring.record("n", EventKind::Note, format!("e{i}"));
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 4, "ring retains exactly its capacity");
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "latest events, ascending seq");
        assert_eq!(events.last().unwrap().detail, "e9");
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 6, "10 recorded into 4 slots loses 6");
    }

    #[test]
    fn drops_are_zero_below_capacity() {
        let ring = EventRing::new(8);
        for i in 0..8u64 {
            ring.record("n", EventKind::Note, format!("e{i}"));
        }
        assert_eq!(ring.dropped(), 0);
        ring.record("n", EventKind::Note, "one over");
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn concurrent_writers_never_lose_the_tail() {
        let ring = std::sync::Arc::new(EventRing::new(64));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        ring.record(&format!("t{t}"), EventKind::Note, format!("{i}"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer");
        }
        assert_eq!(ring.recorded(), 400);
        let events = ring.snapshot();
        assert_eq!(events.len(), 64);
        // Sequence-ordered and gap-free across the retained window.
        for pair in events.windows(2) {
            assert_eq!(pair[1].seq, pair[0].seq + 1);
        }
        assert_eq!(events.last().unwrap().seq, 399);
        assert_eq!(ring.dropped(), 400 - 64, "every displaced event counted");
    }
}
