//! Cross-run regression detection over bench envelopes.
//!
//! Every bench writes a `BENCH_*.json` envelope; the committed copy is
//! the baseline. This module turns the pair into a verdict: flatten
//! both JSON trees to dotted numeric paths, match each path against a
//! suffix rule table (which says whether higher or lower is better and
//! how much noise to forgive), and report every headline metric that
//! moved past its tolerance. The tolerances are deliberately wide — the
//! CI container is a saturated single core, so the gate exists to catch
//! *collapses* (an accidental O(n²), a disabled cache), not 5% jitter.

use crate::json::JsonNode;

/// One suffix-matched comparison rule. The first rule whose suffix
/// matches a path (on a `.`/`_`/`/` boundary) decides the comparison.
#[derive(Clone, Debug)]
pub struct RegressRule {
    /// Path suffix this rule governs (e.g. `qps`, `p99_ms`).
    pub suffix: String,
    /// `true` when growth is the regression (latencies, wall clocks);
    /// `false` when shrinkage is (throughput, hit rates).
    pub lower_is_better: bool,
    /// Relative tolerance: the metric may move this fraction of the
    /// baseline in the bad direction before it counts.
    pub tolerance: f64,
    /// Absolute tolerance floor, in the metric's own unit — protects
    /// tiny baselines from relative-noise false positives.
    pub min_delta: f64,
}

impl RegressRule {
    /// A rule where smaller is better (latency-like).
    pub fn lower(suffix: &str, tolerance: f64, min_delta: f64) -> Self {
        RegressRule {
            suffix: suffix.to_string(),
            lower_is_better: true,
            tolerance,
            min_delta,
        }
    }

    /// A rule where bigger is better (throughput-like).
    pub fn higher(suffix: &str, tolerance: f64, min_delta: f64) -> Self {
        RegressRule {
            suffix: suffix.to_string(),
            lower_is_better: false,
            tolerance,
            min_delta,
        }
    }

    fn matches(&self, path: &str) -> bool {
        path.ends_with(&self.suffix)
            && (path.len() == self.suffix.len()
                || matches!(
                    path.as_bytes()[path.len() - self.suffix.len() - 1],
                    b'.' | b'_' | b'/'
                ))
    }

    /// The worst acceptable value given `baseline`.
    fn limit(&self, baseline: f64) -> f64 {
        let slack = (baseline.abs() * self.tolerance).max(self.min_delta);
        if self.lower_is_better {
            baseline + slack
        } else {
            baseline - slack
        }
    }

    fn violated(&self, baseline: f64, current: f64) -> bool {
        if self.lower_is_better {
            current > self.limit(baseline)
        } else {
            current < self.limit(baseline)
        }
    }
}

/// The default rule table for Neo's envelopes: collapse-sized
/// tolerances fit for a saturated single-core CI container.
pub fn default_rules() -> Vec<RegressRule> {
    vec![
        RegressRule::higher("qps", 0.65, 20.0),
        RegressRule::higher("hit_rate", 0.25, 0.05),
        RegressRule::higher("ratio", 0.10, 0.02),
        RegressRule::lower("wall_clock_s", 2.0, 1.0),
        RegressRule::lower("wall_ms", 3.0, 50.0),
        RegressRule::lower("p50_ms", 3.0, 5.0),
        RegressRule::lower("p95_ms", 3.0, 5.0),
        RegressRule::lower("p99_ms", 3.0, 5.0),
        RegressRule::lower("mean_ms", 3.0, 5.0),
    ]
}

/// One metric that moved past its tolerance.
#[derive(Clone, Debug, PartialEq)]
pub struct RegressionFinding {
    /// Dotted path of the offending metric.
    pub path: String,
    /// Baseline value.
    pub baseline: f64,
    /// This run's value.
    pub current: f64,
    /// Worst value the rule would have accepted.
    pub limit: f64,
}

impl RegressionFinding {
    /// The finding as a JSON object.
    pub fn to_node(&self) -> JsonNode {
        let mut obj = JsonNode::obj();
        obj.push("path", JsonNode::Str(self.path.clone()));
        obj.push("baseline", JsonNode::f64_rounded(self.baseline, 4));
        obj.push("current", JsonNode::f64_rounded(self.current, 4));
        obj.push("limit", JsonNode::f64_rounded(self.limit, 4));
        obj
    }
}

/// The outcome of one baseline-vs-current comparison.
#[derive(Clone, Debug, Default)]
pub struct RegressionReport {
    /// Where the baseline came from (path or label).
    pub baseline_label: String,
    /// Rule-matched paths compared in both documents.
    pub compared: usize,
    /// Rule-matched paths skipped (zero baseline, or missing on one
    /// side — schema drift is noted, not gated).
    pub skipped: usize,
    /// Every tolerance violation.
    pub findings: Vec<RegressionFinding>,
}

impl RegressionReport {
    /// `true` when `--gate` mode should exit non-zero.
    pub fn gate_failed(&self) -> bool {
        !self.findings.is_empty()
    }

    /// The report as a JSON object (the envelope's `regressions`
    /// section).
    pub fn to_node(&self) -> JsonNode {
        let mut obj = JsonNode::obj();
        obj.push("baseline", JsonNode::Str(self.baseline_label.clone()));
        obj.push("compared", JsonNode::U64(self.compared as u64));
        obj.push("skipped", JsonNode::U64(self.skipped as u64));
        obj.push(
            "findings",
            JsonNode::Arr(
                self.findings
                    .iter()
                    .map(RegressionFinding::to_node)
                    .collect(),
            ),
        );
        obj
    }

    /// Human-readable verdict: one line per finding (what moved, from
    /// where, past which limit), or a clean-bill summary.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "regression check vs {label}: {n} compared, {s} skipped\n",
            label = self.baseline_label,
            n = self.compared,
            s = self.skipped
        );
        if self.findings.is_empty() {
            out.push_str("  no regressions past tolerance\n");
        }
        for f in &self.findings {
            out.push_str(&format!(
                "  REGRESSION {path}: baseline {b:.4} -> current {c:.4} (limit {l:.4})\n",
                path = f.path,
                b = f.baseline,
                c = f.current,
                l = f.limit
            ));
        }
        out
    }
}

/// Flattens a JSON tree to `(dotted.path, value)` numeric leaves;
/// array elements get their index as a path segment.
pub fn flatten(node: &JsonNode) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    flatten_into(node, String::new(), &mut out);
    out
}

fn flatten_into(node: &JsonNode, path: String, out: &mut Vec<(String, f64)>) {
    let extend = |key: &str| {
        if path.is_empty() {
            key.to_string()
        } else {
            format!("{path}.{key}")
        }
    };
    match node {
        JsonNode::Obj(fields) => {
            for (key, value) in fields {
                flatten_into(value, extend(key), out);
            }
        }
        JsonNode::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten_into(item, extend(&i.to_string()), out);
            }
        }
        _ => {
            if let Some(v) = node.as_f64() {
                out.push((path, v));
            }
        }
    }
}

/// Compares `current` against `baseline` under `rules`. Only paths a
/// rule claims are considered; a prior run's own `regressions` section
/// is excluded (a gate must not re-litigate old verdicts), as are
/// zero baselines (no meaningful relative direction).
pub fn compare(
    baseline: &JsonNode,
    current: &JsonNode,
    rules: &[RegressRule],
    baseline_label: &str,
) -> RegressionReport {
    let base_flat = flatten(baseline);
    let curr_flat = flatten(current);
    let mut report = RegressionReport {
        baseline_label: baseline_label.to_string(),
        ..RegressionReport::default()
    };
    for (path, base_value) in &base_flat {
        if path.starts_with("regressions.") {
            continue;
        }
        let Some(rule) = rules.iter().find(|r| r.matches(path)) else {
            continue;
        };
        let current_value = curr_flat.iter().find(|(p, _)| p == path).map(|(_, v)| *v);
        let Some(curr_value) = current_value else {
            report.skipped += 1;
            continue;
        };
        if *base_value == 0.0 {
            report.skipped += 1;
            continue;
        }
        report.compared += 1;
        if rule.violated(*base_value, curr_value) {
            report.findings.push(RegressionFinding {
                path: path.clone(),
                baseline: *base_value,
                current: curr_value,
                limit: rule.limit(*base_value),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn doc(s: &str) -> JsonNode {
        parse(s).expect("test document parses")
    }

    #[test]
    fn flatten_walks_objects_and_arrays() {
        let node = doc("{\"a\": {\"b\": 1}, \"c\": [2, {\"d\": 3.5}], \"s\": \"x\"}");
        let flat = flatten(&node);
        assert_eq!(
            flat,
            vec![
                ("a.b".to_string(), 1.0),
                ("c.0".to_string(), 2.0),
                ("c.1.d".to_string(), 3.5),
            ]
        );
    }

    #[test]
    fn a_collapse_is_flagged_and_jitter_is_not() {
        let rules = default_rules();
        let baseline = doc("{\"search\": {\"qps\": 1000, \"p99_ms\": 10}}");
        let jitter = doc("{\"search\": {\"qps\": 900, \"p99_ms\": 25}}");
        let report = compare(&baseline, &jitter, &rules, "b");
        assert_eq!(report.compared, 2);
        assert!(!report.gate_failed(), "{:?}", report.findings);
        let collapse = doc("{\"search\": {\"qps\": 100, \"p99_ms\": 200}}");
        let report = compare(&baseline, &collapse, &rules, "b");
        assert_eq!(report.findings.len(), 2, "both metrics collapsed");
        assert!(report.gate_failed());
        let text = report.render_text();
        assert!(text.contains("REGRESSION search.qps"));
        assert!(text.contains("limit"));
    }

    #[test]
    fn suffix_rules_respect_segment_boundaries() {
        let rule = RegressRule::higher("qps", 0.5, 1.0);
        assert!(rule.matches("search.qps"));
        assert!(rule.matches("qps"));
        assert!(rule.matches("serve/qps"));
        assert!(!rule.matches("search.xqps"));
    }

    #[test]
    fn missing_and_zero_baselines_skip_instead_of_gate() {
        let rules = default_rules();
        let baseline = doc("{\"qps\": 0, \"old_metric_p99_ms\": 5}");
        let current = doc("{\"qps\": 10}");
        let report = compare(&baseline, &current, &rules, "b");
        assert_eq!(report.compared, 0);
        assert_eq!(report.skipped, 2);
        assert!(!report.gate_failed());
    }

    #[test]
    fn prior_regressions_sections_are_not_relitigated() {
        let rules = default_rules();
        let baseline = doc(
            "{\"qps\": 100, \"regressions\": {\"findings\": [{\"path\": \"x.qps\", \"baseline\": 5000, \"current\": 10, \"limit\": 1750}]}}",
        );
        let current = doc("{\"qps\": 95, \"regressions\": {\"findings\": []}}");
        let report = compare(&baseline, &current, &rules, "b");
        assert_eq!(report.compared, 1, "only the live qps path is compared");
        assert!(!report.gate_failed());
    }

    #[test]
    fn report_serializes_to_the_envelope_section() {
        let report = RegressionReport {
            baseline_label: "BENCH_serve.json".to_string(),
            compared: 3,
            skipped: 1,
            findings: vec![RegressionFinding {
                path: "search.qps".to_string(),
                baseline: 1000.0,
                current: 100.0,
                limit: 350.0,
            }],
        };
        let json = report.to_node().render();
        crate::json::validate(&json).expect("well-formed");
        assert!(json.contains("\"search.qps\""));
    }
}
