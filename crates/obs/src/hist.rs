//! Fixed-bucket log-scale latency histograms.
//!
//! Values are recorded in microseconds into power-of-two buckets: bucket
//! 0 holds `< 1 µs`, bucket *i* (i ≥ 1) holds `[2^(i−1), 2^i)` µs. 40
//! buckets cover everything up to ~76 hours, so one cache line's worth of
//! relaxed atomics captures the whole latency range a query optimizer can
//! produce — no allocation, no locks, mergeable across workers and nodes
//! by plain bucket-wise addition (snapshots are exact sums, so merging
//! per-worker stripes equals one shared recording, which the merge
//! property test pins).
//!
//! Quantiles are estimated by rank-walking the buckets with linear
//! interpolation inside the landing bucket: within-bucket error is
//! bounded by the bucket's 2× width, and estimates are monotone in the
//! requested quantile by construction.

use crate::json::JsonNode;
use crate::span::TraceId;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: bucket 39 starts at 2^38 µs ≈ 76 hours.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// The bucket a microsecond value lands in.
#[inline]
fn bucket_index(us: u64) -> usize {
    (64 - us.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// The inclusive lower bound of bucket `i`, microseconds.
fn bucket_lower_us(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        (1u64 << (i - 1)) as f64
    }
}

/// The exclusive upper bound of bucket `i`, microseconds.
fn bucket_upper_us(i: usize) -> f64 {
    if i == 0 {
        1.0
    } else {
        (1u128 << i) as f64
    }
}

/// A concurrent fixed-bucket log-scale latency histogram. All updates
/// are relaxed atomic adds; recording costs three `fetch_add`s and one
/// `fetch_max` — cheap enough for the cold search path's <2% overhead
/// budget and trivially so for anything slower.
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
    /// Per-bucket tail-latency exemplars: the raw trace id of the most
    /// recent *traced* sample landing in each bucket (0 = none). A p99
    /// number in an envelope links through its landing bucket's exemplar
    /// to a reconstructable trace.
    exemplars: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
            exemplars: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one observation, microseconds.
    #[inline]
    pub fn record_us(&self, us: u64) {
        self.record_us_traced(us, None);
    }

    /// Records one observation, microseconds, optionally tagging the
    /// landing bucket with the trace that produced it (the bucket keeps
    /// its most recent exemplar — one relaxed store, no extra cost when
    /// `trace` is `None`).
    #[inline]
    pub fn record_us_traced(&self, us: u64, trace: Option<TraceId>) {
        let idx = bucket_index(us);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
        if let Some(t) = trace {
            self.exemplars[idx].store(t.0, Ordering::Relaxed);
        }
    }

    /// Records one observation, milliseconds. Non-finite values are
    /// dropped (they would poison the sum); negatives clamp to zero.
    #[inline]
    pub fn record_ms(&self, ms: f64) {
        self.record_ms_traced(ms, None);
    }

    /// [`Self::record_ms`] with an optional exemplar trace id.
    #[inline]
    pub fn record_ms_traced(&self, ms: f64, trace: Option<TraceId>) {
        if !ms.is_finite() {
            return;
        }
        self.record_us_traced((ms.max(0.0) * 1e3).round() as u64, trace);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the buckets. Concurrent recording may make
    /// `count` and the bucket sum differ transiently by in-flight
    /// records; quantile walks use the bucket sum, so estimates stay
    /// internally consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
            exemplars: std::array::from_fn(|i| self.exemplars[i].load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time histogram copy: plain integers, mergeable by
/// bucket-wise addition.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see module docs for bucket bounds).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observations, microseconds.
    pub sum_us: u64,
    /// Largest observation, microseconds.
    pub max_us: u64,
    /// Per-bucket exemplar trace ids (0 = none). Advisory: exemplars are
    /// "a recent traced sample from this bucket", so — unlike the
    /// counts — they obey no merge law and are excluded from equality.
    pub exemplars: [u64; HISTOGRAM_BUCKETS],
}

// Equality ignores exemplars: the merge-law property tests compare
// snapshots of split vs. combined recordings, and which exemplar a
// bucket retains is a last-writer race, not part of the histogram value.
impl PartialEq for HistogramSnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.buckets == other.buckets
            && self.count == other.count
            && self.sum_us == other.sum_us
            && self.max_us == other.max_us
    }
}

impl Eq for HistogramSnapshot {}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
            exemplars: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Adds `other` into `self` (worker-stripe / cross-node merging).
    /// Exact: merging snapshots of split recordings equals the snapshot
    /// of one combined recording.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
        // Exemplars have no exact merge; element-wise max keeps the
        // combination commutative, associative, and deterministic while
        // preserving "some traced sample from this bucket".
        for (e, o) in self.exemplars.iter_mut().zip(&other.exemplars) {
            *e = (*e).max(*o);
        }
    }

    /// The windowed difference `self − prev`: the histogram of exactly
    /// the observations recorded between the two snapshots, assuming
    /// `prev` was taken earlier from the same (monotone) live histogram.
    /// Because live histograms only ever grow, the bucket/count/sum
    /// subtractions are exact and `max_us` carries the later snapshot's
    /// maximum — which makes the delta a true merge-inverse:
    /// `delta.merge(prev) == self` (pinned by a property test).
    pub fn delta_since(&self, prev: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(prev.buckets[i])),
            count: self.count.saturating_sub(prev.count),
            sum_us: self.sum_us.saturating_sub(prev.sum_us),
            max_us: self.max_us,
            // Most-recent wins: the later snapshot's exemplars stand for
            // the window (advisory, see the field docs).
            exemplars: self.exemplars,
        }
    }

    /// The `q`-quantile estimate, milliseconds (`q` clamped to `[0, 1]`).
    /// 0.0 for an empty histogram. Monotone in `q`.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lower = bucket_lower_us(i);
                // The top bucket is open-ended; the recorded max bounds it.
                let upper = if i == HISTOGRAM_BUCKETS - 1 {
                    (self.max_us as f64).max(lower + 1.0)
                } else {
                    bucket_upper_us(i)
                };
                let frac = (rank - seen) as f64 / c as f64;
                return (lower + frac * (upper - lower)) / 1e3;
            }
            seen += c;
        }
        self.max_us as f64 / 1e3
    }

    /// The exemplar trace id retained by the bucket the `q`-quantile
    /// rank-walk lands in — the trace behind (a recent sample near) that
    /// quantile. Walks outward to the nearest non-empty exemplar below
    /// when the landing bucket never saw a traced sample; `None` when no
    /// bucket at or below the landing one holds one.
    pub fn exemplar_for_quantile(&self, q: f64) -> Option<TraceId> {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        let mut landing = HISTOGRAM_BUCKETS - 1;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                landing = i;
                break;
            }
            seen += c;
        }
        (0..=landing)
            .rev()
            .map(|i| self.exemplars[i])
            .find(|&e| e != 0)
            .map(TraceId)
    }

    /// Median estimate, milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.quantile_ms(0.50)
    }

    /// 95th-percentile estimate, milliseconds.
    pub fn p95_ms(&self) -> f64 {
        self.quantile_ms(0.95)
    }

    /// 99th-percentile estimate, milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.quantile_ms(0.99)
    }

    /// Largest observation, milliseconds (exact, not an estimate).
    pub fn max_ms(&self) -> f64 {
        self.max_us as f64 / 1e3
    }

    /// Mean, milliseconds (exact).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64 / 1e3
        }
    }

    /// Sum of observations, milliseconds.
    pub fn sum_ms(&self) -> f64 {
        self.sum_us as f64 / 1e3
    }

    /// The histogram as a compact JSON object (quantile estimates, not
    /// raw buckets).
    pub fn to_node(&self) -> JsonNode {
        let mut obj = JsonNode::obj();
        obj.push("count", JsonNode::U64(self.count));
        obj.push("mean_ms", JsonNode::F64(self.mean_ms()));
        obj.push("p50_ms", JsonNode::F64(self.p50_ms()));
        obj.push("p95_ms", JsonNode::F64(self.p95_ms()));
        obj.push("p99_ms", JsonNode::F64(self.p99_ms()));
        obj.push("max_ms", JsonNode::F64(self.max_ms()));
        obj.push(
            "p99_exemplar",
            match self.exemplar_for_quantile(0.99) {
                Some(t) => JsonNode::Str(t.to_string()),
                None => JsonNode::Null,
            },
        );
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_the_domain() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let lo = bucket_lower_us(i) as u64;
            let hi = bucket_upper_us(i) as u64;
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi - 1), i);
        }
    }

    #[test]
    fn quantiles_bracket_recorded_values_and_stay_monotone() {
        let h = LatencyHistogram::new();
        for us in [100u64, 200, 400, 800, 1600, 3200, 6400, 12800, 25600, 51200] {
            h.record_us(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.max_us, 51200);
        let mut prev = 0.0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = s.quantile_ms(q);
            assert!(v >= prev, "quantile not monotone at q={q}: {v} < {prev}");
            prev = v;
        }
        // The p50 estimate lands within the 2× bucket holding the true
        // median value (1600 µs lives in [1024, 2048)).
        let p50_us = s.p50_ms() * 1e3;
        assert!(
            (1024.0..=2048.0).contains(&p50_us),
            "p50 {p50_us} µs outside the true median's bucket"
        );
        assert!((s.quantile_ms(1.0) - 51.2).abs() < 52.0);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_ms(), 0.0);
        assert_eq!(s.mean_ms(), 0.0);
        assert_eq!(s.max_ms(), 0.0);
    }

    #[test]
    fn non_finite_recordings_are_dropped() {
        let h = LatencyHistogram::new();
        h.record_ms(f64::NAN);
        h.record_ms(f64::INFINITY);
        h.record_ms(-3.0); // clamps to 0, still counted
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn delta_since_inverts_merge_on_monotone_snapshots() {
        let h = LatencyHistogram::new();
        for us in [10u64, 20, 5000, 120] {
            h.record_us(us);
        }
        let prev = h.snapshot();
        for us in [7u64, 90_000, 3] {
            h.record_us(us);
        }
        let curr = h.snapshot();
        let delta = curr.delta_since(&prev);
        assert_eq!(delta.count, 3);
        assert_eq!(delta.sum_us, 7 + 90_000 + 3);
        let mut rebuilt = delta.clone();
        rebuilt.merge(&prev);
        assert_eq!(rebuilt, curr);
        // The window's quantiles come from the window's observations only.
        assert!(delta.max_ms() >= 90.0);
        assert_eq!(delta.buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn merge_is_exact_bucketwise_addition() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let combined = LatencyHistogram::new();
        for us in 0..1000u64 {
            if us % 3 == 0 {
                a.record_us(us * 7);
            } else {
                b.record_us(us * 7);
            }
            combined.record_us(us * 7);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, combined.snapshot());
    }

    #[test]
    fn exemplars_link_quantiles_to_traces() {
        let h = LatencyHistogram::new();
        // Fast untraced samples plus one slow traced one: the p99 rank
        // (ceil(0.99 * 10) = 10) lands in the slow sample's bucket.
        for _ in 0..9 {
            h.record_us(100);
        }
        h.record_us_traced(1_000_000, Some(TraceId(0xabcd)));
        let s = h.snapshot();
        assert_eq!(
            s.exemplar_for_quantile(0.99),
            Some(TraceId(0xabcd)),
            "p99 lands in the slow bucket, whose exemplar is the trace"
        );
        assert_eq!(
            s.exemplar_for_quantile(0.10),
            None,
            "fast buckets never saw a traced sample"
        );
        assert!(s
            .to_node()
            .render()
            .contains("\"p99_exemplar\": \"000000000000abcd\""));
        // Untraced-only histograms render a null exemplar.
        let plain = LatencyHistogram::new();
        plain.record_us(5);
        assert!(plain
            .snapshot()
            .to_node()
            .render()
            .contains("\"p99_exemplar\": null"));
    }

    #[test]
    fn exemplars_ride_merges_and_deltas_without_breaking_equality() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record_us_traced(1000, Some(TraceId(7)));
        b.record_us_traced(1000, Some(TraceId(9)));
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let idx = super::bucket_index(1000);
        assert_eq!(merged.exemplars[idx], 9, "merge keeps the max exemplar");
        // Equality ignores exemplars (merge-law tests rely on this).
        let mut other = merged.clone();
        other.exemplars[idx] = 7;
        assert_eq!(merged, other);
        let prev = a.snapshot();
        a.record_us_traced(1000, Some(TraceId(11)));
        let delta = a.snapshot().delta_since(&prev);
        assert_eq!(delta.exemplars[idx], 11, "delta carries the later exemplar");
    }
}
