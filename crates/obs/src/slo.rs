//! Declarative SLOs with error-budget accounting and two-window
//! burn-rate alerting.
//!
//! An [`SloSpec`] names an objective over the telemetry tick stream —
//! "p99 search latency ≤ 5ms" or "no sync failures" — with a target
//! good-tick fraction. The [`SloTracker`] is a pure windowed machine:
//! each sampler tick it observes one good/bad verdict and reports the
//! burn rate (error rate ÷ allowed error rate) over a slow window (the
//! budget horizon) and a fast window (the alerting horizon). The classic
//! two-window rule falls out: a *fast* burn many multiples over budget
//! means an acute incident (page now — in our world, emit a
//! [`crate::EventKind::BudgetBurn`] event and optionally nudge the
//! health tracker toward Degraded); a *slow* sustained burn means the
//! budget will not last the horizon. The tracker itself touches no
//! clocks, threads, or registries — the sampler owns the ticking — so
//! the alert arithmetic is exhaustively unit-testable.

use crate::json::JsonNode;
use std::collections::VecDeque;

/// What an SLO measures, evaluated once per sampler tick.
#[derive(Clone, Debug)]
pub enum SloObjectiveKind {
    /// Good when the windowed p99 of `metric`'s per-tick delta stays at
    /// or under `threshold_ms` (ticks with no observations are good —
    /// an idle service is not missing its latency objective).
    LatencyP99 {
        /// Restrict to one registered source (registry label), or
        /// aggregate the metric across all sources when `None`.
        source: Option<String>,
        /// Histogram metric name (e.g. `search_ms`).
        metric: String,
        /// The latency objective in milliseconds.
        threshold_ms: f64,
    },
    /// Good when `failure_counter`'s per-tick delta is zero — i.e. the
    /// tick saw no failures.
    Availability {
        /// Restrict to one registered source, or aggregate across all.
        source: Option<String>,
        /// Counter metric name (e.g. `cluster_sync_failures_total`).
        failure_counter: String,
    },
}

/// One declared objective.
#[derive(Clone, Debug)]
pub struct SloSpec {
    /// Display name (also the event `node` label suffix).
    pub name: String,
    /// What to measure each tick.
    pub kind: SloObjectiveKind,
    /// Target good-tick fraction, e.g. `0.999`. The error budget is
    /// `1 − objective` of the slow window.
    pub objective: f64,
    /// Slow (budget) window length in sampler ticks.
    pub window_ticks: usize,
    /// Fast (alerting) window length in ticks; must be ≤ `window_ticks`.
    pub fast_window_ticks: usize,
    /// Fast-window burn multiple that raises an acute `BudgetBurn`.
    pub fast_burn_threshold: f64,
    /// Slow-window burn multiple that raises a sustained `BudgetBurn`.
    pub slow_burn_threshold: f64,
}

impl SloSpec {
    /// A latency objective: p99 of `metric` ≤ `threshold_ms`, with the
    /// conventional 14.4×/3× fast/slow burn thresholds.
    pub fn latency_p99(name: &str, metric: &str, threshold_ms: f64, objective: f64) -> Self {
        SloSpec {
            name: name.to_string(),
            kind: SloObjectiveKind::LatencyP99 {
                source: None,
                metric: metric.to_string(),
                threshold_ms,
            },
            objective,
            window_ticks: 256,
            fast_window_ticks: 16,
            fast_burn_threshold: 14.4,
            slow_burn_threshold: 3.0,
        }
    }

    /// An availability objective: ticks where `failure_counter` did not
    /// advance.
    pub fn availability(name: &str, failure_counter: &str, objective: f64) -> Self {
        SloSpec {
            name: name.to_string(),
            kind: SloObjectiveKind::Availability {
                source: None,
                failure_counter: failure_counter.to_string(),
            },
            objective,
            window_ticks: 256,
            fast_window_ticks: 16,
            fast_burn_threshold: 14.4,
            slow_burn_threshold: 3.0,
        }
    }

    /// Restricts the objective to one registered source label.
    pub fn for_source(mut self, source: &str) -> Self {
        match &mut self.kind {
            SloObjectiveKind::LatencyP99 { source: s, .. }
            | SloObjectiveKind::Availability { source: s, .. } => *s = Some(source.to_string()),
        }
        self
    }

    /// Overrides the slow/fast window lengths (ticks).
    pub fn with_windows(mut self, window_ticks: usize, fast_window_ticks: usize) -> Self {
        self.window_ticks = window_ticks.max(1);
        self.fast_window_ticks = fast_window_ticks.clamp(1, self.window_ticks);
        self
    }

    /// Overrides the fast/slow burn alert thresholds.
    pub fn with_burn_thresholds(mut self, fast: f64, slow: f64) -> Self {
        self.fast_burn_threshold = fast;
        self.slow_burn_threshold = slow;
        self
    }
}

/// What one tick's observation changed — rising edges drive event
/// emission (alert once per episode, not once per tick).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SloTick {
    /// The fast-window burn multiple after this tick.
    pub fast_burn: f64,
    /// The slow-window burn multiple after this tick.
    pub slow_burn: f64,
    /// This tick *started* a fast-burn episode.
    pub fast_burn_started: bool,
    /// This tick started a slow-burn episode.
    pub slow_burn_started: bool,
    /// This tick exhausted the error budget.
    pub breach_started: bool,
}

/// The windowed error-budget machine for one [`SloSpec`].
#[derive(Debug)]
pub struct SloTracker {
    spec: SloSpec,
    /// Good/bad verdicts, newest at the back; bounded by `window_ticks`.
    window: VecDeque<bool>,
    bad_in_window: usize,
    bad_in_fast: usize,
    fast_alerting: bool,
    slow_alerting: bool,
    breached: bool,
    fast_burns_total: u64,
    breaches_total: u64,
    ticks: u64,
    bad_total: u64,
}

impl SloTracker {
    /// A tracker with an empty window.
    pub fn new(spec: SloSpec) -> Self {
        SloTracker {
            spec,
            window: VecDeque::new(),
            bad_in_window: 0,
            bad_in_fast: 0,
            fast_alerting: false,
            slow_alerting: false,
            breached: false,
            fast_burns_total: 0,
            breaches_total: 0,
            ticks: 0,
            bad_total: 0,
        }
    }

    /// The declared objective.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    fn burn(bad: usize, len: usize, objective: f64) -> f64 {
        if len == 0 {
            return 0.0;
        }
        let allowed = (1.0 - objective).max(f64::EPSILON);
        (bad as f64 / len as f64) / allowed
    }

    /// Feeds one tick's verdict; returns the burn rates and any rising
    /// edges the caller should turn into events.
    pub fn observe(&mut self, good: bool) -> SloTick {
        self.ticks += 1;
        if !good {
            self.bad_total += 1;
        }
        self.window.push_back(good);
        if !good {
            self.bad_in_window += 1;
        }
        if self.window.len() > self.spec.window_ticks && self.window.pop_front() == Some(false) {
            self.bad_in_window -= 1;
        }
        // The fast window is the tail of the slow one.
        let fast_len = self.window.len().min(self.spec.fast_window_ticks);
        self.bad_in_fast = self
            .window
            .iter()
            .rev()
            .take(fast_len)
            .filter(|g| !**g)
            .count();

        let fast_burn = Self::burn(self.bad_in_fast, fast_len, self.spec.objective);
        let slow_burn = Self::burn(self.bad_in_window, self.window.len(), self.spec.objective);

        // Alert only once the fast window is fully primed: a single bad
        // tick in a two-tick-old tracker is startup noise, not a burn.
        let fast_hot =
            fast_len >= self.spec.fast_window_ticks && fast_burn >= self.spec.fast_burn_threshold;
        let slow_hot = self.window.len() >= self.spec.window_ticks
            && slow_burn >= self.spec.slow_burn_threshold;
        let budget_gone = self.budget_remaining() <= 0.0 && self.bad_in_window > 0;

        let tick = SloTick {
            fast_burn,
            slow_burn,
            fast_burn_started: fast_hot && !self.fast_alerting,
            slow_burn_started: slow_hot && !self.slow_alerting,
            breach_started: budget_gone && !self.breached,
        };
        if tick.fast_burn_started {
            self.fast_burns_total += 1;
        }
        if tick.breach_started {
            self.breaches_total += 1;
        }
        self.fast_alerting = fast_hot;
        self.slow_alerting = slow_hot;
        self.breached = budget_gone;
        tick
    }

    /// Fraction of the slow-window error budget still unspent, in
    /// `[0, 1]`. A short window spends against its eventual capacity,
    /// so early bad ticks show as real spend.
    pub fn budget_remaining(&self) -> f64 {
        let allowed = (1.0 - self.spec.objective) * self.spec.window_ticks as f64;
        if allowed <= 0.0 {
            return if self.bad_in_window == 0 { 1.0 } else { 0.0 };
        }
        (1.0 - self.bad_in_window as f64 / allowed).clamp(0.0, 1.0)
    }

    /// Point-in-time status for dashboards and snapshots.
    pub fn status(&self) -> SloStatus {
        SloStatus {
            name: self.spec.name.clone(),
            objective: self.spec.objective,
            budget_remaining: self.budget_remaining(),
            fast_burn: Self::burn(
                self.bad_in_fast,
                self.window.len().min(self.spec.fast_window_ticks),
                self.spec.objective,
            ),
            slow_burn: Self::burn(self.bad_in_window, self.window.len(), self.spec.objective),
            fast_alerting: self.fast_alerting,
            breached: self.breached,
            fast_burns_total: self.fast_burns_total,
            breaches_total: self.breaches_total,
            ticks: self.ticks,
            bad_ticks: self.bad_total,
        }
    }
}

/// A point-in-time view of one SLO's budget.
#[derive(Clone, Debug, PartialEq)]
pub struct SloStatus {
    /// The spec's display name.
    pub name: String,
    /// Target good-tick fraction.
    pub objective: f64,
    /// Unspent fraction of the slow-window error budget, `[0, 1]`.
    pub budget_remaining: f64,
    /// Current fast-window burn multiple.
    pub fast_burn: f64,
    /// Current slow-window burn multiple.
    pub slow_burn: f64,
    /// A fast-burn episode is in progress.
    pub fast_alerting: bool,
    /// The budget is currently exhausted.
    pub breached: bool,
    /// Fast-burn episodes started so far.
    pub fast_burns_total: u64,
    /// Budget exhaustions so far.
    pub breaches_total: u64,
    /// Verdicts observed.
    pub ticks: u64,
    /// Bad verdicts observed (lifetime, not windowed).
    pub bad_ticks: u64,
}

impl SloStatus {
    /// The status as a JSON object.
    pub fn to_node(&self) -> JsonNode {
        let mut obj = JsonNode::obj();
        obj.push("name", JsonNode::Str(self.name.clone()));
        obj.push("objective", JsonNode::F64(self.objective));
        obj.push(
            "budget_remaining",
            JsonNode::f64_rounded(self.budget_remaining, 4),
        );
        obj.push("fast_burn", JsonNode::f64_rounded(self.fast_burn, 3));
        obj.push("slow_burn", JsonNode::f64_rounded(self.slow_burn, 3));
        obj.push("fast_alerting", JsonNode::Bool(self.fast_alerting));
        obj.push("breached", JsonNode::Bool(self.breached));
        obj.push("fast_burns_total", JsonNode::U64(self.fast_burns_total));
        obj.push("breaches_total", JsonNode::U64(self.breaches_total));
        obj.push("ticks", JsonNode::U64(self.ticks));
        obj.push("bad_ticks", JsonNode::U64(self.bad_ticks));
        obj
    }
}

/// A burn-alert sink — how the sampler nudges a health state machine
/// without `neo-obs` depending on the crate that owns it. The serving
/// layer's `HealthTracker` implements this: a node burning its error
/// budget goes Degraded *before* consecutive hard failures would trip
/// the failure-streak rule.
pub trait SloNotify: Send + Sync {
    /// A fast-window burn episode started for `slo` at `burn`× budget
    /// rate.
    fn on_budget_burn(&self, slo: &str, burn: f64);
    /// The error budget for `slo` is exhausted.
    fn on_breach(&self, slo: &str) {
        let _ = slo;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(window: usize, fast: usize, objective: f64) -> SloSpec {
        SloSpec::availability("sync", "failures_total", objective)
            .with_windows(window, fast)
            .with_burn_thresholds(5.0, 2.0)
    }

    #[test]
    fn all_good_ticks_keep_the_budget_full() {
        let mut t = SloTracker::new(spec(16, 4, 0.9));
        for _ in 0..64 {
            let tick = t.observe(true);
            assert_eq!(tick.fast_burn, 0.0);
            assert!(!tick.fast_burn_started && !tick.breach_started);
        }
        assert_eq!(t.budget_remaining(), 1.0);
        assert!(!t.status().fast_alerting);
    }

    #[test]
    fn an_acute_outage_trips_the_fast_window_once() {
        let mut t = SloTracker::new(spec(32, 4, 0.9));
        for _ in 0..10 {
            t.observe(true);
        }
        // Burn = (bad/4)/0.1: two bad ticks in the fast window → 5×.
        let first = t.observe(false);
        assert!(!first.fast_burn_started, "one bad tick is 2.5×, below 5×");
        let second = t.observe(false);
        assert!(second.fast_burn_started, "two bad of four = 5.0× trips");
        assert!(second.fast_burn >= 5.0);
        let third = t.observe(false);
        assert!(
            !third.fast_burn_started,
            "episodes alert on rising edge only"
        );
        assert_eq!(t.status().fast_burns_total, 1);
        // Recovery: good ticks flush the fast window and re-arm.
        for _ in 0..6 {
            t.observe(true);
        }
        assert!(!t.status().fast_alerting);
        for _ in 0..2 {
            t.observe(false);
        }
        assert_eq!(t.status().fast_burns_total, 2, "a new episode re-alerts");
    }

    #[test]
    fn budget_spends_and_refills_as_the_window_slides() {
        let mut t = SloTracker::new(spec(10, 2, 0.8));
        // Budget = 20% of 10 ticks = 2 bad ticks.
        for _ in 0..10 {
            t.observe(true);
        }
        t.observe(false);
        assert!((t.budget_remaining() - 0.5).abs() < 1e-9);
        let breach = t.observe(false);
        assert!(breach.breach_started, "second bad tick spends the budget");
        assert_eq!(t.budget_remaining(), 0.0);
        // 10 good ticks push both bad verdicts out of the window.
        for _ in 0..10 {
            t.observe(true);
        }
        assert_eq!(t.budget_remaining(), 1.0, "budget refills after recovery");
        assert!(!t.status().breached);
        assert_eq!(t.status().breaches_total, 1);
    }

    #[test]
    fn startup_noise_cannot_alert_before_the_fast_window_is_primed() {
        let mut t = SloTracker::new(spec(32, 8, 0.9));
        let tick = t.observe(false);
        assert!(
            !tick.fast_burn_started,
            "burn {b} on a 1-tick window must not page",
            b = tick.fast_burn
        );
    }

    #[test]
    fn status_serializes() {
        let mut t = SloTracker::new(spec(8, 2, 0.9));
        t.observe(true);
        t.observe(false);
        let json = t.status().to_node().render();
        crate::json::validate(&json).expect("status JSON is well-formed");
        assert!(json.contains("budget_remaining"));
    }
}
