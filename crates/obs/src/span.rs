//! Causal span tracing: the "why was this one slow" layer on top of the
//! aggregate spine (histograms, event ring, time series).
//!
//! A **trace** is a tree of **spans** — named intervals on the shared
//! monotonic clock ([`clock_origin`], also the base for `EventRing`
//! events and health transitions, so a postmortem can interleave spans
//! and events by timestamp. Each span carries its trace id, its own id,
//! its parent's id, and free-form attributes; spans land in a bounded
//! lock-free [`SpanRing`] with exactly the `EventRing` discipline: one
//! `fetch_add` reserves a slot in total order, a per-slot micro-lock
//! holds for a single `Option` store, and wraparound losses are counted
//! rather than silent.
//!
//! Two recording styles cover the two trace families:
//!
//! - **Sampled, buffered** ([`Tracer`]): the serving hot path starts a
//!   root [`SpanGuard`] per query; children buffer in the root's trace
//!   core and the whole trace commits to the ring only if it was
//!   head-sampled (1-in-N) *or* turned out slow (tail latch) — so tail
//!   latency is always explained, while the common fast path pays one
//!   atomic increment and, when unsampled-and-fast, discards without
//!   ever touching the ring.
//! - **Direct, always-kept** ([`SpanRing::root`] / [`SpanRing::
//!   child_of`]): generation-lineage spans (drain → train → publish →
//!   each follower's adopt) are rare and precious, so they record
//!   unconditionally; `child_of` takes an explicit [`SpanContext`],
//!   which is how a trace crosses threads, processes, and — via the
//!   checkpoint manifest — nodes.
//!
//! Ids are process-global: a splitmix64 stream over an atomic counter
//! seeded from wall-clock nanos, so ids from different processes in one
//! postmortem almost surely differ while staying dependency-free.

use crate::json::JsonNode;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// The one monotonic clock base shared by spans, ring events, and health
/// transitions: everything timestamps as an offset from this instant, so
/// timelines from different subsystems interleave correctly.
pub fn clock_origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

/// Microseconds since [`clock_origin`].
pub fn now_us() -> u64 {
    clock_origin().elapsed().as_micros() as u64
}

/// Milliseconds since [`clock_origin`].
pub fn now_ms() -> u64 {
    clock_origin().elapsed().as_millis() as u64
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The next process-global id (never zero — zero is the "no exemplar"
/// sentinel in histogram buckets).
fn next_id() -> u64 {
    static STATE: OnceLock<AtomicU64> = OnceLock::new();
    let state = STATE.get_or_init(|| {
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        AtomicU64::new(seed | 1)
    });
    loop {
        let id = splitmix64(state.fetch_add(1, Ordering::Relaxed));
        if id != 0 {
            return id;
        }
    }
}

/// Identifies one trace (a tree of spans). Rendered as 16 hex digits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// A fresh process-globally-unique id.
    pub fn fresh() -> Self {
        TraceId(next_id())
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Identifies one span within a trace. Rendered as 16 hex digits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// A fresh process-globally-unique id.
    pub fn fresh() -> Self {
        SpanId(next_id())
    }
}

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The propagatable part of a live span: enough to parent a child span
/// on another thread, in another process, or on another node. `Copy` so
/// it rides inside `Copy` carriers (the checkpoint manifest).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanContext {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// The span itself (children cite it as their parent).
    pub span: SpanId,
}

/// One finished span as retained by the ring.
#[derive(Clone, Debug)]
pub struct Span {
    /// Global sequence number (total order across all writers).
    pub seq: u64,
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// The parent span within the trace (`None` for the root).
    pub parent: Option<SpanId>,
    /// Stage name (`"optimize"`, `"search"`, `"adopt"`, ...).
    pub name: &'static str,
    /// The node (or component) that recorded the span.
    pub node: String,
    /// Start, microseconds since [`clock_origin`].
    pub start_us: u64,
    /// End, microseconds since [`clock_origin`].
    pub end_us: u64,
    /// Structured attributes (`("seed_outcome", "beaten")`, ...).
    pub attrs: Vec<(&'static str, String)>,
}

impl Span {
    /// Duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// The span as a JSON object.
    pub fn to_node(&self) -> JsonNode {
        let mut obj = JsonNode::obj();
        obj.push("seq", JsonNode::U64(self.seq));
        obj.push("trace", JsonNode::Str(self.trace.to_string()));
        obj.push("span", JsonNode::Str(self.span.to_string()));
        obj.push(
            "parent",
            match self.parent {
                Some(p) => JsonNode::Str(p.to_string()),
                None => JsonNode::Null,
            },
        );
        obj.push("name", JsonNode::Str(self.name.to_string()));
        obj.push("node", JsonNode::Str(self.node.clone()));
        obj.push("start_us", JsonNode::U64(self.start_us));
        obj.push("end_us", JsonNode::U64(self.end_us));
        let mut attrs = JsonNode::obj();
        for (k, v) in &self.attrs {
            attrs.push(k, JsonNode::Str(v.clone()));
        }
        obj.push("attrs", attrs);
        obj
    }
}

/// The bounded span ring. Same concurrency contract as `EventRing`: one
/// `fetch_add` per record for total order, per-slot micro-locks, latest
/// `capacity` spans retained, losses counted in [`Self::dropped`].
pub struct SpanRing {
    slots: Vec<Mutex<Option<Span>>>,
    next: AtomicU64,
    dropped: AtomicU64,
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl SpanRing {
    /// A ring keeping the latest `capacity` spans (≥ 1).
    pub fn new(capacity: usize) -> Self {
        SpanRing {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Capacity (the retention bound).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Spans ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Spans lost to wraparound so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records one finished span (assigns its sequence number).
    pub fn record(&self, mut span: Span) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        span.seq = seq;
        let slot = (seq % self.slots.len() as u64) as usize;
        let mut guard = self.slots[slot]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Same forward-only slot rule as the event ring: a delayed writer
        // never clobbers a newer lap, and either way an occupied slot
        // means one span lost — counted, not silent.
        if guard.is_some() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        if guard.as_ref().is_none_or(|s| s.seq < seq) {
            *guard = Some(span);
        }
    }

    /// The retained spans in sequence order (oldest retained first).
    pub fn snapshot(&self) -> Vec<Span> {
        let mut spans: Vec<Span> = self
            .slots
            .iter()
            .filter_map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .clone()
            })
            .collect();
        spans.sort_by_key(|s| s.seq);
        spans
    }

    /// The ring as a JSON object: `{spans: [...], recorded, dropped}` —
    /// the `traces` section carried by snapshots and bench envelopes.
    pub fn to_node(&self) -> JsonNode {
        let mut obj = JsonNode::obj();
        obj.push(
            "spans",
            JsonNode::Arr(self.snapshot().iter().map(Span::to_node).collect()),
        );
        obj.push("recorded", JsonNode::U64(self.recorded()));
        obj.push("dropped", JsonNode::U64(self.dropped()));
        obj
    }

    /// The retained spans of one trace, ordered by start time — the
    /// waterfall a remote caller reads back after propagating its trace
    /// context across a socket (ISSUE 10). Empty when the ring has
    /// already recycled the trace (bounded retention is the contract).
    pub fn trace_spans(&self, trace: TraceId) -> Vec<Span> {
        let mut spans: Vec<Span> = self
            .snapshot()
            .into_iter()
            .filter(|s| s.trace == trace)
            .collect();
        spans.sort_by_key(|s| s.start_us);
        spans
    }

    /// One trace's waterfall as a JSON object:
    /// `{trace: "<hex>", spans: [...]}` — what the gateway's admin
    /// `trace` verb answers with.
    pub fn trace_to_node(&self, trace: TraceId) -> JsonNode {
        let mut obj = JsonNode::obj();
        obj.push("trace", JsonNode::Str(format!("{trace}")));
        obj.push(
            "spans",
            JsonNode::Arr(self.trace_spans(trace).iter().map(Span::to_node).collect()),
        );
        obj
    }

    /// Starts a direct (always-recorded) root span — the lineage style.
    pub fn root(self: &Arc<Self>, name: &'static str, node: &str) -> SpanGuard {
        SpanGuard {
            inner: Some(SpanInner {
                sink: Sink::Direct(Arc::clone(self)),
                trace: TraceId::fresh(),
                span: SpanId::fresh(),
                parent: None,
                name,
                node: node.to_string(),
                start_us: now_us(),
                attrs: Vec::new(),
            }),
        }
    }

    /// Starts a direct (always-recorded) child of an explicit context —
    /// how a trace continues across a thread, process, or node boundary.
    pub fn child_of(
        self: &Arc<Self>,
        ctx: SpanContext,
        name: &'static str,
        node: &str,
    ) -> SpanGuard {
        SpanGuard {
            inner: Some(SpanInner {
                sink: Sink::Direct(Arc::clone(self)),
                trace: ctx.trace,
                span: SpanId::fresh(),
                parent: Some(ctx.span),
                name,
                node: node.to_string(),
                start_us: now_us(),
                attrs: Vec::new(),
            }),
        }
    }
}

/// Commit state of a buffered trace.
const BUFFERING: u8 = 0;
const COMMITTED: u8 = 1;
const DISCARDED: u8 = 2;

/// The shared core of one buffered (sampled) trace: children park their
/// finished spans here until the root decides the trace's fate.
struct TraceCore {
    ring: Arc<SpanRing>,
    head_sampled: bool,
    slow_us: u64,
    buf: Mutex<Vec<Span>>,
    state: AtomicU8,
}

impl TraceCore {
    fn park(&self, span: Span) {
        match self.state.load(Ordering::Acquire) {
            // Root already committed (a straggler child ending after the
            // root, e.g. feedback spans): record directly.
            COMMITTED => self.ring.record(span),
            DISCARDED => {}
            _ => self
                .buf
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(span),
        }
    }
}

/// The sampled, buffered tracer for a hot path: hands out root guards,
/// head-samples 1-in-N, and tail-latches anything slower than the
/// threshold so p99s always have an exemplar behind them.
#[derive(Clone)]
pub struct Tracer {
    ring: Arc<SpanRing>,
    sample_every: u64,
    slow_us: u64,
    started: Arc<AtomicU64>,
    enabled: bool,
}

impl Tracer {
    /// A tracer over `ring`. `sample_every` = keep 1 in N traces by head
    /// sampling (0 and 1 both mean "every trace"); `slow_us` = commit any
    /// trace whose root ran at least this long, sampled or not.
    pub fn new(ring: Arc<SpanRing>, sample_every: u64, slow_us: u64) -> Self {
        Tracer {
            ring,
            sample_every: sample_every.max(1),
            slow_us,
            started: Arc::new(AtomicU64::new(0)),
            enabled: true,
        }
    }

    /// A tracer whose guards are all no-ops (the disabled side of the
    /// overhead A/B): `start` never allocates, never touches the ring.
    pub fn disabled(ring: Arc<SpanRing>) -> Self {
        Tracer {
            ring,
            sample_every: 1,
            slow_us: 0,
            started: Arc::new(AtomicU64::new(0)),
            enabled: false,
        }
    }

    /// The ring committed traces land in.
    pub fn ring(&self) -> &Arc<SpanRing> {
        &self.ring
    }

    /// Starts a buffered root span. The returned guard's children buffer
    /// with it; on root end the whole trace commits iff head-sampled or
    /// slow.
    pub fn start(&self, name: &'static str, node: &str) -> SpanGuard {
        if !self.enabled {
            return SpanGuard { inner: None };
        }
        let n = self.started.fetch_add(1, Ordering::Relaxed);
        let head_sampled = n.is_multiple_of(self.sample_every);
        let core = Arc::new(TraceCore {
            ring: Arc::clone(&self.ring),
            head_sampled,
            slow_us: self.slow_us,
            buf: Mutex::new(Vec::new()),
            state: AtomicU8::new(BUFFERING),
        });
        SpanGuard {
            inner: Some(SpanInner {
                sink: Sink::Buffered {
                    core,
                    is_root: true,
                },
                trace: TraceId::fresh(),
                span: SpanId::fresh(),
                parent: None,
                name,
                node: node.to_string(),
                start_us: now_us(),
                attrs: Vec::new(),
            }),
        }
    }
}

enum Sink {
    /// Record straight into the ring at end (lineage spans).
    Direct(Arc<SpanRing>),
    /// Park in the trace core; the root's end decides commit/discard.
    Buffered { core: Arc<TraceCore>, is_root: bool },
}

struct SpanInner {
    sink: Sink,
    trace: TraceId,
    span: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    node: String,
    start_us: u64,
    attrs: Vec<(&'static str, String)>,
}

impl SpanInner {
    fn finish(self) -> Option<TraceId> {
        let end_us = now_us();
        let span = Span {
            seq: 0,
            trace: self.trace,
            span: self.span,
            parent: self.parent,
            name: self.name,
            node: self.node,
            start_us: self.start_us,
            end_us,
            attrs: self.attrs,
        };
        match self.sink {
            Sink::Direct(ring) => {
                let trace = span.trace;
                ring.record(span);
                Some(trace)
            }
            Sink::Buffered {
                core,
                is_root: false,
            } => {
                let trace = span.trace;
                core.park(span);
                match core.state.load(Ordering::Acquire) {
                    COMMITTED => Some(trace),
                    _ => None,
                }
            }
            Sink::Buffered {
                core,
                is_root: true,
            } => {
                let trace = span.trace;
                let keep = core.head_sampled || span.duration_us() >= core.slow_us;
                let mut buf = core
                    .buf
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                buf.push(span);
                if keep {
                    // Commit-before-drain: a straggler child observing
                    // COMMITTED records directly, never into a buffer
                    // nobody will drain again.
                    core.state.store(COMMITTED, Ordering::Release);
                    for s in buf.drain(..) {
                        core.ring.record(s);
                    }
                    Some(trace)
                } else {
                    core.state.store(DISCARDED, Ordering::Release);
                    buf.clear();
                    None
                }
            }
        }
    }
}

/// RAII guard for one live span: drop (or [`Self::end`]) stamps the end
/// time and routes the span to its sink. A disabled guard (from
/// [`Tracer::disabled`] or a child of one) makes every method a no-op.
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

impl SpanGuard {
    /// A guard that records nothing (the "tracing off" placeholder).
    pub fn noop() -> Self {
        SpanGuard { inner: None }
    }

    /// True when this guard will actually record (not disabled).
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// The propagatable context (trace id + this span's id), for
    /// parenting children across boundaries. `None` when disabled.
    pub fn context(&self) -> Option<SpanContext> {
        self.inner.as_ref().map(|i| SpanContext {
            trace: i.trace,
            span: i.span,
        })
    }

    /// Attaches one structured attribute.
    pub fn attr(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(inner) = self.inner.as_mut() {
            inner.attrs.push((key, value.into()));
        }
    }

    /// Starts a child span on the same sink (buffered children buffer
    /// with the root; direct children record directly).
    pub fn child(&self, name: &'static str) -> SpanGuard {
        let Some(inner) = self.inner.as_ref() else {
            return SpanGuard { inner: None };
        };
        let sink = match &inner.sink {
            Sink::Direct(ring) => Sink::Direct(Arc::clone(ring)),
            Sink::Buffered { core, .. } => Sink::Buffered {
                core: Arc::clone(core),
                is_root: false,
            },
        };
        SpanGuard {
            inner: Some(SpanInner {
                sink,
                trace: inner.trace,
                span: SpanId::fresh(),
                parent: Some(inner.span),
                name,
                node: inner.node.clone(),
                start_us: now_us(),
                attrs: Vec::new(),
            }),
        }
    }

    /// Ends the span now. Returns the trace id iff the span was actually
    /// recorded (for a buffered root: iff the trace committed) — the
    /// handle callers thread into histogram exemplars.
    pub fn end(mut self) -> Option<TraceId> {
        self.inner.take().and_then(SpanInner::finish)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            inner.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_nonzero_and_distinct() {
        let a = TraceId::fresh();
        let b = TraceId::fresh();
        assert_ne!(a.0, 0);
        assert_ne!(a, b);
        assert_eq!(format!("{a}").len(), 16);
    }

    #[test]
    fn direct_root_and_children_record_with_parent_links() {
        let ring = Arc::new(SpanRing::new(16));
        let mut root = ring.root("generation", "trainer");
        root.attr("generation", "7");
        let root_ctx = root.context().expect("recording");
        {
            let child = root.child("train");
            let grandchild = child.child("epoch");
            drop(grandchild);
            drop(child);
        }
        let trace = root.end().expect("direct roots always record");
        assert_eq!(trace, root_ctx.trace);
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 3);
        // Children ended (and thus recorded) before the root.
        assert_eq!(spans[0].name, "epoch");
        assert_eq!(spans[1].name, "train");
        assert_eq!(spans[2].name, "generation");
        assert!(spans.iter().all(|s| s.trace == root_ctx.trace));
        assert_eq!(spans[2].parent, None);
        assert_eq!(spans[1].parent, Some(root_ctx.span));
        assert_eq!(spans[0].parent, Some(spans[1].span));
        assert_eq!(spans[2].attrs, vec![("generation", "7".to_string())]);
    }

    #[test]
    fn child_of_continues_a_trace_across_an_explicit_context() {
        let ring = Arc::new(SpanRing::new(16));
        let root = ring.root("publish", "leader");
        let ctx = root.context().unwrap();
        root.end();
        let other_ring = Arc::new(SpanRing::new(16));
        let adopt = other_ring.child_of(ctx, "adopt", "follower-1");
        adopt.end();
        let spans = other_ring.snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].trace, ctx.trace);
        assert_eq!(spans[0].parent, Some(ctx.span));
        assert_eq!(spans[0].node, "follower-1");
    }

    #[test]
    fn unsampled_fast_traces_discard_without_touching_the_ring() {
        let ring = Arc::new(SpanRing::new(16));
        // Sample 1-in-1000, slow threshold unreachable: only trace 0 kept.
        let tracer = Tracer::new(Arc::clone(&ring), 1000, u64::MAX);
        let kept = tracer.start("optimize", "serve");
        let kept_child = kept.child("search");
        kept_child.end();
        let kept_trace = kept.end().expect("head-sampled trace commits");
        for _ in 0..5 {
            let root = tracer.start("optimize", "serve");
            let child = root.child("search");
            child.end();
            assert_eq!(root.end(), None, "unsampled fast trace discards");
        }
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 2, "only the head-sampled trace landed");
        assert!(spans.iter().all(|s| s.trace == kept_trace));
        assert_eq!(ring.recorded(), 2);
    }

    #[test]
    fn slow_traces_commit_even_when_not_head_sampled() {
        let ring = Arc::new(SpanRing::new(16));
        // Head-sample 1-in-1000 but tail-latch everything (slow_us = 0).
        let tracer = Tracer::new(Arc::clone(&ring), 1000, 0);
        tracer.start("warmup", "serve").end(); // n=0: head-sampled anyway
        let root = tracer.start("optimize", "serve");
        assert!(root.end().is_some(), "slow trace tail-latched");
        assert_eq!(ring.snapshot().len(), 2);
    }

    #[test]
    fn disabled_tracer_guards_are_noops() {
        let ring = Arc::new(SpanRing::new(4));
        let tracer = Tracer::disabled(Arc::clone(&ring));
        let mut root = tracer.start("optimize", "serve");
        assert!(!root.is_recording());
        assert_eq!(root.context(), None);
        root.attr("k", "v");
        let child = root.child("search");
        child.end();
        assert_eq!(root.end(), None);
        assert_eq!(ring.recorded(), 0);
    }

    #[test]
    fn straggler_child_after_commit_records_directly() {
        let ring = Arc::new(SpanRing::new(16));
        let tracer = Tracer::new(Arc::clone(&ring), 1, u64::MAX);
        let root = tracer.start("optimize", "serve");
        let straggler = root.child("feedback");
        let trace = root.end().expect("sampled");
        // Child ends after the root committed: lands directly.
        assert_eq!(straggler.end(), Some(trace));
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].name, "feedback");
    }

    #[test]
    fn straggler_child_after_discard_vanishes() {
        let ring = Arc::new(SpanRing::new(16));
        let tracer = Tracer::new(Arc::clone(&ring), 1000, u64::MAX);
        tracer.start("warmup", "serve").end(); // consume the sampled slot
        let root = tracer.start("optimize", "serve");
        let straggler = root.child("feedback");
        assert_eq!(root.end(), None);
        assert_eq!(straggler.end(), None);
        assert_eq!(ring.recorded(), 1, "only the warmup trace's root");
    }

    #[test]
    fn span_json_shape() {
        let ring = Arc::new(SpanRing::new(4));
        let mut root = ring.root("publish", "leader");
        root.attr("generation", "3");
        root.end();
        let rendered = ring.to_node().render();
        assert!(rendered.contains("\"spans\""));
        assert!(rendered.contains("\"recorded\": 1"));
        assert!(rendered.contains("\"dropped\": 0"));
        assert!(rendered.contains("\"name\": \"publish\""));
        assert!(rendered.contains("\"parent\": null"));
        assert!(rendered.contains("\"generation\": \"3\""));
    }
}
