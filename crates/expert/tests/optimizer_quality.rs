//! Cross-cutting quality tests for the expert optimizers: DP dominance
//! over greedy under a shared estimator, operator/access-path sanity, and
//! behaviour across all three schemas.

use neo_engine::{plan_latency, CardinalityOracle, Engine};
use neo_expert::{
    greedy_optimize, EstimateProvider, HistogramEstimator, SamplingEstimator, SelingerOptimizer,
};
use neo_query::workload::{corp, job, tpch};
use neo_storage::datagen;

/// Left-deep DP explores a superset of greedy's left-deep space, so under
/// the *same* estimator its estimated cost can never be worse.
#[test]
fn dp_never_worse_than_greedy_on_estimated_cost() {
    let db = datagen::imdb::generate(0.05, 21);
    let wl = job::generate(&db, 21);
    let profile = Engine::PostgresLike.profile();
    for q in wl
        .queries
        .iter()
        .filter(|q| q.num_relations() <= 9)
        .take(20)
    {
        let mut est1 = HistogramEstimator::new();
        let dp = SelingerOptimizer::default().optimize(&db, q, &profile, &mut est1);
        let mut est2 = HistogramEstimator::new();
        let greedy = greedy_optimize(&db, q, &profile, &mut est2);

        let mut est = HistogramEstimator::new();
        let mut prov = EstimateProvider {
            db: &db,
            query: q,
            est: &mut est,
        };
        let c_dp = plan_latency(&db, q, &profile, &mut prov, &dp);
        let c_greedy = plan_latency(&db, q, &profile, &mut prov, &greedy);
        assert!(
            c_dp <= c_greedy * 1.0001,
            "query {}: DP {c_dp} > greedy {c_greedy}",
            q.id
        );
    }
}

/// Every optimizer configuration completes every query of every workload.
#[test]
fn optimizers_complete_all_workloads() {
    let imdb = datagen::imdb::generate(0.02, 5);
    let tpchdb = datagen::tpch::generate(0.05, 5);
    let corpdb = datagen::corp::generate(0.01, 5);
    let workloads: Vec<(&neo_storage::Database, Vec<neo_query::Query>)> = vec![
        (&imdb, job::generate(&imdb, 5).queries),
        (&tpchdb, tpch::generate(&tpchdb, 5).queries),
        (&corpdb, corp::generate(&corpdb, 5, 30).queries),
    ];
    let mut oracle = CardinalityOracle::new();
    for (db, queries) in &workloads {
        for q in queries.iter().take(12) {
            for engine in Engine::ALL {
                let plan = neo_expert::native_optimize(db, q, engine, &mut oracle);
                assert!(plan.fully_specified(), "{} on {}", q.id, engine.name());
                assert_eq!(
                    plan.rel_mask(),
                    (1u64 << q.num_relations()) - 1,
                    "{} on {}",
                    q.id,
                    engine.name()
                );
            }
        }
    }
}

/// A better estimator (lower error) should never make the DP optimizer
/// dramatically worse in true latency, aggregated over a workload.
#[test]
fn estimator_quality_translates_to_plan_quality() {
    let db = datagen::imdb::generate(0.1, 9);
    let wl = job::generate(&db, 9);
    let profile = Engine::PostgresLike.profile();
    let mut oracle = CardinalityOracle::new();
    let opt = SelingerOptimizer::default();
    let (mut hist_total, mut exact_total) = (0.0f64, 0.0f64);
    for q in wl
        .queries
        .iter()
        .filter(|q| q.num_relations() <= 8)
        .take(20)
    {
        let mut hist = HistogramEstimator::new();
        let p1 = opt.optimize(&db, q, &profile, &mut hist);
        hist_total += neo_engine::true_latency(&db, q, &profile, &mut oracle, &p1);
        // max_rel_error ~ 1.0 means "perfect estimates".
        let mut exact = SamplingEstimator {
            oracle: &mut oracle,
            max_rel_error: 1.0001,
        };
        let p2 = opt.optimize(&db, q, &profile, &mut exact);
        exact_total += neo_engine::true_latency(&db, q, &profile, &mut oracle, &p2);
    }
    assert!(
        exact_total <= hist_total * 1.05,
        "perfect estimates ({exact_total}) should not lose to histograms ({hist_total})"
    );
}
