//! Selinger-style dynamic-programming optimizer (Selinger et al. 1979) —
//! the "traditional query optimizer" of paper Table 1 and the *expert*
//! that bootstraps Neo's learning (§2).
//!
//! Joint join-order / operator / access-path optimization by dynamic
//! programming over relation subsets, keeping the best plan per
//! (subset, interesting order) pair. Left-deep enumeration by default
//! (PostgreSQL-like); optional bushy enumeration (commercial-like) for
//! small queries. Falls back to [`crate::greedy`] beyond `dp_limit`
//! relations, mirroring PostgreSQL's switch to GEQO.

use crate::cardest::CardEstimator;
use crate::greedy::greedy_optimize;
use neo_engine::{cost_join, cost_scan, primary_edge, CostedNode, EngineProfile};
use neo_query::{JoinOp, PlanNode, Query, QueryContext, RelMask, ScanType};
use neo_storage::Database;
use std::collections::HashMap;

/// Configuration of the DP optimizer.
#[derive(Clone, Copy, Debug)]
pub struct SelingerOptimizer {
    /// Enumerate bushy trees (only applied when `relations <= bushy_limit`).
    pub bushy: bool,
    /// Bushy DP is exponential (`3^n` splits); cap it here.
    pub bushy_limit: usize,
    /// Left-deep DP cap; larger queries use the greedy optimizer.
    pub dp_limit: usize,
}

impl Default for SelingerOptimizer {
    fn default() -> Self {
        SelingerOptimizer {
            bushy: false,
            bushy_limit: 10,
            dp_limit: 12,
        }
    }
}

/// One Pareto entry: a plan for a subset with its costing info.
#[derive(Clone, Debug)]
struct Entry {
    node: PlanNode,
    info: CostedNode,
}

impl SelingerOptimizer {
    /// Optimizes `query`, returning a complete plan tree.
    pub fn optimize(
        &self,
        db: &Database,
        query: &Query,
        profile: &EngineProfile,
        est: &mut dyn CardEstimator,
    ) -> PlanNode {
        let n = query.num_relations();
        if n > self.dp_limit {
            return greedy_optimize(db, query, profile, est);
        }
        let ctx = QueryContext::new(db, query);
        if self.bushy && n <= self.bushy_limit {
            self.dp(db, query, profile, est, &ctx, true)
        } else {
            self.dp(db, query, profile, est, &ctx, false)
        }
    }

    fn dp(
        &self,
        db: &Database,
        query: &Query,
        profile: &EngineProfile,
        est: &mut dyn CardEstimator,
        ctx: &QueryContext,
        bushy: bool,
    ) -> PlanNode {
        let n = query.num_relations();
        let full: RelMask = (1 << n) - 1;
        // best[mask] -> entries, Pareto over (cost, order).
        let mut best: HashMap<RelMask, Vec<Entry>> = HashMap::new();

        for rel in 0..n {
            let card = est.base(db, query, rel);
            let mut entries = vec![Entry {
                node: PlanNode::Scan {
                    rel,
                    scan: ScanType::Table,
                },
                info: cost_scan(db, query, profile, rel, ScanType::Table, card),
            }];
            if ctx.index_ok[rel] {
                entries.push(Entry {
                    node: PlanNode::Scan {
                        rel,
                        scan: ScanType::Index,
                    },
                    info: cost_scan(db, query, profile, rel, ScanType::Index, card),
                });
            }
            best.insert(1 << rel, prune(entries));
        }

        // Enumerate masks by population count.
        let mut masks: Vec<RelMask> = (1..=full).filter(|m| m & full == *m).collect();
        masks.sort_by_key(|m| m.count_ones());
        for mask in masks {
            if mask.count_ones() < 2 || best.contains_key(&mask) {
                continue;
            }
            let mut entries: Vec<Entry> = Vec::new();
            if bushy {
                // All connected splits (s, mask \ s).
                let mut s = (mask - 1) & mask;
                while s != 0 {
                    let t = mask & !s;
                    if t != 0 && ctx.connected(s, t) {
                        if let (Some(ls), Some(rs)) = (best.get(&s), best.get(&t)) {
                            join_candidates(
                                db,
                                query,
                                profile,
                                est,
                                ctx,
                                s,
                                t,
                                ls,
                                rs,
                                &mut entries,
                            );
                        }
                    }
                    s = (s - 1) & mask;
                }
            } else {
                // Left-deep: right side is always a single relation.
                let mut m = mask;
                while m != 0 {
                    let r = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let s = mask & !(1 << r);
                    let t = 1u64 << r;
                    if s == 0 || !ctx.connected(s, t) {
                        continue;
                    }
                    if let (Some(ls), Some(rs)) = (best.get(&s), best.get(&t)) {
                        join_candidates(db, query, profile, est, ctx, s, t, ls, rs, &mut entries);
                    }
                }
            }
            if !entries.is_empty() {
                best.insert(mask, prune(entries));
            }
        }

        best.get(&full)
            .and_then(|e| {
                e.iter()
                    .min_by(|a, b| a.info.cost.partial_cmp(&b.info.cost).unwrap())
            })
            .map(|e| e.node.clone())
            // Disconnected subsets never block us: queries are validated
            // connected, so the full mask is always reachable.
            .unwrap_or_else(|| greedy_optimize(db, query, profile, est))
    }
}

/// Generates join candidates between every entry pair of two subsets.
#[allow(clippy::too_many_arguments)]
fn join_candidates(
    db: &Database,
    query: &Query,
    profile: &EngineProfile,
    est: &mut dyn CardEstimator,
    _ctx: &QueryContext,
    lmask: RelMask,
    rmask: RelMask,
    lentries: &[Entry],
    rentries: &[Entry],
    out: &mut Vec<Entry>,
) {
    let (lkey, rkey) = primary_edge(query, lmask, rmask);
    let out_card = est.join(db, query, lmask | rmask);
    for le in lentries {
        for re in rentries {
            for op in JoinOp::ALL {
                let inl = if op == JoinOp::Loop {
                    neo_engine::inl_avg_match(db, query, &re.node, rkey)
                } else {
                    None
                };
                let rinfo = if inl.is_some() {
                    // INL replaces the inner scan cost with probes.
                    CostedNode {
                        card: re.info.card,
                        cost: 0.0,
                        order: None,
                    }
                } else {
                    re.info.clone()
                };
                let info = cost_join(profile, op, &le.info, &rinfo, lkey, rkey, out_card, inl);
                out.push(Entry {
                    node: PlanNode::Join {
                        op,
                        left: Box::new(le.node.clone()),
                        right: Box::new(re.node.clone()),
                    },
                    info,
                });
            }
        }
    }
}

/// Pareto pruning: keep the cheapest plan overall plus the cheapest plan
/// per interesting order.
fn prune(mut entries: Vec<Entry>) -> Vec<Entry> {
    entries.sort_by(|a, b| a.info.cost.partial_cmp(&b.info.cost).unwrap());
    let mut kept: Vec<Entry> = Vec::new();
    for e in entries {
        let dominated = kept.iter().any(|k| {
            k.info.cost <= e.info.cost && (k.info.order == e.info.order || e.info.order.is_none())
        });
        if !dominated {
            kept.push(e);
        }
        if kept.len() >= 6 {
            break; // bounded Pareto frontier
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cardest::HistogramEstimator;
    use neo_engine::{true_latency, CardinalityOracle, Engine};
    use neo_query::workload::job;
    use neo_storage::datagen::imdb;

    fn check_complete(plan: &PlanNode, query: &Query) {
        assert!(plan.fully_specified(), "{}", plan.describe());
        assert_eq!(plan.rel_mask(), (1u64 << query.num_relations()) - 1);
    }

    #[test]
    fn produces_complete_plans_for_all_job_queries() {
        let db = imdb::generate(0.02, 7);
        let wl = job::generate(&db, 7);
        let profile = Engine::PostgresLike.profile();
        let opt = SelingerOptimizer::default();
        let mut est = HistogramEstimator::new();
        for q in &wl.queries {
            let plan = opt.optimize(&db, q, &profile, &mut est);
            check_complete(&plan, q);
        }
    }

    #[test]
    fn dp_beats_worst_random_plan() {
        use rand::{Rng, SeedableRng};
        let db = imdb::generate(0.1, 7);
        let wl = job::generate(&db, 7);
        let q = wl.queries.iter().find(|q| q.num_relations() == 6).unwrap();
        let profile = Engine::PostgresLike.profile();
        let opt = SelingerOptimizer::default();
        let mut est = HistogramEstimator::new();
        let plan = opt.optimize(&db, q, &profile, &mut est);
        let mut oracle = CardinalityOracle::new();
        let dp_lat = true_latency(&db, q, &profile, &mut oracle, &plan);
        // Random plans: take median of 10.
        let ctx = QueryContext::new(&db, q);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut lats = Vec::new();
        for _ in 0..10 {
            let mut p = neo_query::PartialPlan::initial(q);
            while !p.is_complete() {
                let kids = neo_query::children(&p, &ctx);
                p = kids[rng.gen_range(0..kids.len())].clone();
            }
            lats.push(true_latency(
                &db,
                q,
                &profile,
                &mut oracle,
                p.as_complete().unwrap(),
            ));
        }
        lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = lats[lats.len() / 2];
        assert!(dp_lat < med, "dp {dp_lat} vs median random {med}");
    }

    #[test]
    fn bushy_never_worse_than_left_deep_on_estimates() {
        let db = imdb::generate(0.05, 7);
        let wl = job::generate(&db, 7);
        let profile = Engine::MsSqlLike.profile();
        for q in wl.queries.iter().filter(|q| q.num_relations() <= 7).take(5) {
            let mut est1 = HistogramEstimator::new();
            let mut est2 = HistogramEstimator::new();
            let ld = SelingerOptimizer {
                bushy: false,
                ..Default::default()
            }
            .optimize(&db, q, &profile, &mut est1);
            let bushy = SelingerOptimizer {
                bushy: true,
                ..Default::default()
            }
            .optimize(&db, q, &profile, &mut est2);
            // Compare estimated costs under the same estimator.
            let mut est = HistogramEstimator::new();
            let mut prov = crate::cardest::EstimateProvider {
                db: &db,
                query: q,
                est: &mut est,
            };
            let c_ld = neo_engine::plan_latency(&db, q, &profile, &mut prov, &ld);
            let c_b = neo_engine::plan_latency(&db, q, &profile, &mut prov, &bushy);
            assert!(
                c_b <= c_ld + 1e-6,
                "bushy {c_b} > left-deep {c_ld} for {}",
                q.id
            );
        }
    }

    #[test]
    fn large_queries_fall_back_to_greedy() {
        let db = imdb::generate(0.02, 7);
        let wl = job::generate(&db, 7);
        let q = wl.queries.iter().find(|q| q.num_relations() >= 14).unwrap();
        let profile = Engine::PostgresLike.profile();
        let opt = SelingerOptimizer {
            dp_limit: 12,
            ..Default::default()
        };
        let mut est = HistogramEstimator::new();
        let plan = opt.optimize(&db, q, &profile, &mut est);
        check_complete(&plan, q);
    }
}
