//! Cardinality estimators for the traditional optimizers.
//!
//! * [`HistogramEstimator`] — the PostgreSQL-style estimator: per-column
//!   histograms/MCVs with **uniformity, independence and inclusion**
//!   assumptions (paper §5). Accurate on uniform data (TPC-H-like), badly
//!   wrong on correlated data (IMDB-like, Corp-like) — the failure mode
//!   Neo exploits.
//! * [`SamplingEstimator`] — stands in for the far stronger commercial
//!   estimators: true cardinalities perturbed by a bounded, deterministic
//!   relative error.
//! * [`ErrorInjector`] — wraps any estimator and injects order-of-magnitude
//!   errors; drives the robustness experiment (paper §6.4.3, Fig. 14).

use neo_engine::{CardinalityOracle, CardinalityProvider};
use neo_query::{CmpOp, Predicate, Query, RelMask};
use neo_storage::{ColumnStats, Database};
use std::collections::HashMap;

/// A source of cardinality *estimates* (as opposed to the oracle's truths).
pub trait CardEstimator {
    /// Estimated post-predicate cardinality of a single relation.
    fn base(&mut self, db: &Database, query: &Query, rel: usize) -> f64;
    /// Estimated cardinality of joining the relations in `mask`.
    fn join(&mut self, db: &Database, query: &Query, mask: RelMask) -> f64;
}

/// PostgreSQL-style histogram estimator.
#[derive(Default)]
pub struct HistogramEstimator {
    memo: HashMap<(String, RelMask), f64>,
}

impl HistogramEstimator {
    /// Creates the estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selectivity of one predicate under uniformity assumptions.
    pub fn predicate_selectivity(db: &Database, p: &Predicate) -> f64 {
        let stats = &db.stats[p.table()].columns[p.col()];
        match (p, stats) {
            (Predicate::IntCmp { op, value, .. }, ColumnStats::Int(h)) => match op {
                CmpOp::Eq => h.est_eq(*value),
                CmpOp::Lt => h.est_lt(*value),
                CmpOp::Le => h.est_le(*value),
                CmpOp::Gt => h.est_gt(*value),
                CmpOp::Ge => (h.est_gt(*value) + h.est_eq(*value)).min(1.0),
            },
            (Predicate::IntBetween { lo, hi, .. }, ColumnStats::Int(h)) => h.est_between(*lo, *hi),
            (Predicate::StrEq { value, .. }, ColumnStats::Str(m)) => {
                match db.tables[p.table()].columns[p.col()]
                    .as_str()
                    .and_then(|s| s.code_of(value))
                {
                    Some(code) => m.est_eq_code(code),
                    None => 0.0,
                }
            }
            (Predicate::StrContains { needle, .. }, ColumnStats::Str(m)) => {
                let s = db.tables[p.table()].columns[p.col()]
                    .as_str()
                    .expect("str column");
                m.est_in_codes(&s.codes_containing(needle))
            }
            _ => panic!("predicate/stats type mismatch"),
        }
    }

    fn base_uncached(&self, db: &Database, query: &Query, rel: usize) -> f64 {
        let t = query.tables[rel];
        let mut card = db.stats[t].row_count as f64;
        // Independence across predicates: multiply selectivities.
        for p in query.predicates.iter().filter(|p| p.table() == t) {
            card *= Self::predicate_selectivity(db, p);
        }
        card.max(1.0) // PostgreSQL clamps estimates to at least one row
    }
}

impl CardEstimator for HistogramEstimator {
    fn base(&mut self, db: &Database, query: &Query, rel: usize) -> f64 {
        let key = (query.id.clone(), 1u64 << rel);
        if let Some(&c) = self.memo.get(&key) {
            return c;
        }
        let c = self.base_uncached(db, query, rel);
        self.memo.insert(key, c);
        c
    }

    fn join(&mut self, db: &Database, query: &Query, mask: RelMask) -> f64 {
        let key = (query.id.clone(), mask);
        if let Some(&c) = self.memo.get(&key) {
            return c;
        }
        // System-R formula: product of base estimates times, per join edge
        // inside the mask, 1 / max(distinct(left key), distinct(right key)).
        let mut card = 1.0f64;
        for rel in 0..query.num_relations() {
            if mask & (1 << rel) != 0 {
                card *= self.base(db, query, rel);
            }
        }
        for e in &query.joins {
            let (Some(a), Some(b)) = (query.rel_of(e.left_table), query.rel_of(e.right_table))
            else {
                continue;
            };
            if mask & (1 << a) != 0 && mask & (1 << b) != 0 {
                let dl = db.stats[e.left_table].columns[e.left_col].distinct().max(1) as f64;
                let dr = db.stats[e.right_table].columns[e.right_col]
                    .distinct()
                    .max(1) as f64;
                card /= dl.max(dr);
            }
        }
        let c = card.max(1.0);
        self.memo.insert(key, c);
        c
    }
}

/// Commercial-grade estimator: the true cardinality perturbed by a bounded
/// deterministic relative error (stands in for sampling + feedback-driven
/// estimation in MS SQL Server / Oracle; DESIGN.md §1).
pub struct SamplingEstimator<'a> {
    /// Oracle supplying ground truth.
    pub oracle: &'a mut CardinalityOracle,
    /// Maximum multiplicative error, e.g. `1.5` keeps estimates within
    /// [true/1.5, true*1.5].
    pub max_rel_error: f64,
}

impl SamplingEstimator<'_> {
    /// Deterministic pseudo-error for (query, mask): a value in
    /// `[1/max_rel_error, max_rel_error]`.
    fn wobble(&self, query: &Query, mask: RelMask) -> f64 {
        let mut h = 0xcbf29ce484222325u64;
        for b in query.id.as_bytes() {
            h = (h ^ *b as u64).wrapping_mul(0x100000001b3);
        }
        h ^= mask;
        h = h.wrapping_mul(0x9E3779B97F4A7C15);
        h ^= h >> 29;
        let u = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        self.max_rel_error.powf(2.0 * u - 1.0)
    }
}

impl CardEstimator for SamplingEstimator<'_> {
    fn base(&mut self, db: &Database, query: &Query, rel: usize) -> f64 {
        let truth = self.oracle.base_count(db, query, rel) as f64;
        (truth * self.wobble(query, 1 << rel)).max(1.0)
    }

    fn join(&mut self, db: &Database, query: &Query, mask: RelMask) -> f64 {
        let truth = self.oracle.cardinality(db, query, mask);
        (truth * self.wobble(query, mask)).max(1.0)
    }
}

/// Injects order-of-magnitude errors into an inner estimator's join
/// estimates (paper Fig. 14: errors of 0, 2, and 5 orders of magnitude).
pub struct ErrorInjector<E> {
    /// The wrapped estimator.
    pub inner: E,
    /// Error magnitude in orders of magnitude (0 = passthrough).
    pub orders: f64,
    /// Seed for the deterministic error direction.
    pub seed: u64,
}

/// Deterministic multiplicative error of up to `orders` orders of
/// magnitude, keyed by `(seed, query id, mask)`. Shared by
/// [`ErrorInjector`] and the Fig. 14 robustness harness.
pub fn deterministic_error_factor(seed: u64, query_id: &str, mask: RelMask, orders: f64) -> f64 {
    if orders == 0.0 {
        return 1.0;
    }
    let mut h = seed ^ mask;
    for b in query_id.as_bytes() {
        h = (h ^ *b as u64).wrapping_mul(0x100000001b3);
    }
    h = h.wrapping_mul(0x9E3779B97F4A7C15);
    h ^= h >> 31;
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    10f64.powf(orders * (2.0 * u - 1.0))
}

impl<E: CardEstimator> ErrorInjector<E> {
    fn factor(&self, query: &Query, mask: RelMask) -> f64 {
        deterministic_error_factor(self.seed, &query.id, mask, self.orders)
    }
}

impl<E: CardEstimator> CardEstimator for ErrorInjector<E> {
    fn base(&mut self, db: &Database, query: &Query, rel: usize) -> f64 {
        (self.inner.base(db, query, rel) * self.factor(query, 1 << rel)).max(1.0)
    }

    fn join(&mut self, db: &Database, query: &Query, mask: RelMask) -> f64 {
        (self.inner.join(db, query, mask) * self.factor(query, mask)).max(1.0)
    }
}

/// Adapter: exposes an estimator as an [`neo_engine::CardinalityProvider`]
/// so plans can be costed with estimated cardinalities.
pub struct EstimateProvider<'a, E> {
    /// Database.
    pub db: &'a Database,
    /// Query.
    pub query: &'a Query,
    /// The estimator.
    pub est: &'a mut E,
}

impl<E: CardEstimator> CardinalityProvider for EstimateProvider<'_, E> {
    fn join_card(&mut self, mask: RelMask) -> f64 {
        self.est.join(self.db, self.query, mask)
    }

    fn base_card(&mut self, rel: usize) -> f64 {
        self.est.base(self.db, self.query, rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_query::workload::{job, tpch};
    use neo_storage::datagen;

    /// On uniform TPC-H-like data the histogram estimator should be close
    /// to the truth; on correlated IMDB-like data it should misestimate
    /// correlated predicates badly. This asymmetry is the paper's engine.
    #[test]
    fn histogram_accurate_on_uniform_inaccurate_on_correlated() {
        let tdb = datagen::tpch::generate(0.1, 3);
        let twl = tpch::generate(&tdb, 3);
        let mut est = HistogramEstimator::new();
        let mut oracle = CardinalityOracle::new();
        let mut tpch_err = Vec::new();
        for q in twl.queries.iter().take(20) {
            let full = (1u64 << q.num_relations()) - 1;
            let truth = oracle.cardinality(&tdb, q, full).max(1.0);
            let guess = est.join(&tdb, q, full).max(1.0);
            tpch_err.push((guess / truth).max(truth / guess));
        }
        let tpch_mean = mean(&tpch_err);

        let idb = datagen::imdb::generate(0.1, 3);
        let iwl = job::generate(&idb, 3);
        let mut est2 = HistogramEstimator::new();
        let mut oracle2 = CardinalityOracle::new();
        let mut job_err = Vec::new();
        for q in iwl
            .queries
            .iter()
            .filter(|q| q.num_relations() <= 7)
            .take(40)
        {
            let full = (1u64 << q.num_relations()) - 1;
            let truth = oracle2.cardinality(&idb, q, full).max(1.0);
            let guess = est2.join(&idb, q, full).max(1.0);
            job_err.push((guess / truth).max(truth / guess));
        }
        // Mean q-error: the tail (correlation-hitting queries) is the point.
        let job_mean = mean(&job_err);
        assert!(
            job_mean > 2.0 * tpch_mean,
            "JOB mean q-error {job_mean} should dwarf TPC-H mean q-error {tpch_mean}"
        );
    }

    fn mean(v: &[f64]) -> f64 {
        v.iter().sum::<f64>() / v.len() as f64
    }

    #[test]
    fn sampling_estimator_is_bounded_and_deterministic() {
        let db = datagen::imdb::generate(0.05, 3);
        let wl = job::generate(&db, 3);
        let q = &wl.queries[0];
        let full = (1u64 << q.num_relations()) - 1;
        let mut oracle = CardinalityOracle::new();
        let truth = oracle.cardinality(&db, q, full).max(1.0);
        let mut est = SamplingEstimator {
            oracle: &mut oracle,
            max_rel_error: 1.5,
        };
        let a = est.join(&db, q, full);
        let b = est.join(&db, q, full);
        assert_eq!(a, b);
        let ratio = (a / truth).max(truth / a.max(1.0));
        assert!(ratio <= 1.5 + 1e-9, "ratio {ratio}");
    }

    #[test]
    fn error_injector_scales_with_orders() {
        let db = datagen::imdb::generate(0.05, 3);
        let wl = job::generate(&db, 3);
        let q = &wl.queries[0];
        let full = (1u64 << q.num_relations()) - 1;
        let base = HistogramEstimator::new();
        let mut inj0 = ErrorInjector {
            inner: base,
            orders: 0.0,
            seed: 1,
        };
        let clean = inj0.join(&db, q, full);
        let mut worst2 = 1.0f64;
        let mut worst5 = 1.0f64;
        for seed in 0..20 {
            let mut inj2 = ErrorInjector {
                inner: HistogramEstimator::new(),
                orders: 2.0,
                seed,
            };
            let mut inj5 = ErrorInjector {
                inner: HistogramEstimator::new(),
                orders: 5.0,
                seed,
            };
            let e2 = inj2.join(&db, q, full);
            let e5 = inj5.join(&db, q, full);
            worst2 = worst2.max((e2 / clean).max(clean / e2));
            worst5 = worst5.max((e5 / clean).max(clean / e5));
        }
        assert!(worst2 > 3.0, "2-order error too small: {worst2}");
        assert!(
            worst5 > worst2,
            "5-order ({worst5}) should exceed 2-order ({worst2})"
        );
    }

    #[test]
    fn base_estimate_clamped_to_one() {
        let db = datagen::imdb::generate(0.02, 3);
        let wl = job::generate(&db, 3);
        let mut est = HistogramEstimator::new();
        for q in wl.queries.iter().take(30) {
            for rel in 0..q.num_relations() {
                assert!(est.base(&db, q, rel) >= 1.0);
            }
        }
    }
}
