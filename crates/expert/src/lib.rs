#![warn(missing_docs)]
//! # neo-expert — traditional query optimizers for the Neo reproduction
//!
//! The "expert" side of the paper: Selinger-style optimizers that (a)
//! bootstrap Neo's learning from demonstration (§2) and (b) serve as the
//! four engines' native optimizers that Neo is compared against (§6.2).
//!
//! * [`cardest`] — cardinality estimators: PostgreSQL-style histograms
//!   (independence/uniformity assumptions), a commercial-grade
//!   bounded-error estimator, and an order-of-magnitude error injector
//!   (Fig. 14);
//! * [`selinger`] — dynamic-programming join ordering with operator and
//!   access-path selection (left-deep and bushy);
//! * [`greedy`] — nearest-neighbour fallback (SQLite-like, and the GEQO
//!   stand-in beyond the DP limit);
//! * [`native`] — the per-engine optimizer configurations and the
//!   [`native::postgres_expert`] bootstrap expert.

pub mod cardest;
pub mod greedy;
pub mod native;
pub mod selinger;

pub use cardest::{
    deterministic_error_factor, CardEstimator, ErrorInjector, EstimateProvider, HistogramEstimator,
    SamplingEstimator,
};
pub use greedy::greedy_optimize;
pub use native::{native_optimize, optimize_with, postgres_expert};
pub use selinger::SelingerOptimizer;
