//! Native optimizer per engine: the configuration each simulated engine
//! "ships with" (DESIGN.md §1).
//!
//! * PostgreSQL-like — left-deep Selinger DP + histogram estimator: the
//!   *weak expert* Neo bootstraps from (§2, §6.2);
//! * SQLite-like — greedy nearest-neighbour + histogram estimator;
//! * MS-SQL-like / Oracle-like — bushy DP + a sampling-grade estimator
//!   (bounded error), standing in for the "substantially more advanced"
//!   commercial optimizers the paper compares against.

use crate::cardest::{CardEstimator, HistogramEstimator, SamplingEstimator};
use crate::greedy::greedy_optimize;
use crate::selinger::SelingerOptimizer;
use neo_engine::{CardinalityOracle, Engine};
use neo_query::{PlanNode, Query};
use neo_storage::Database;

/// Runs the engine's native optimizer on a query.
///
/// The oracle is needed by the commercial engines' sampling estimator
/// (their estimates are modeled as bounded-error truths); PostgreSQL-like
/// and SQLite-like never touch it.
pub fn native_optimize(
    db: &Database,
    query: &Query,
    engine: Engine,
    oracle: &mut CardinalityOracle,
) -> PlanNode {
    let profile = engine.profile();
    match engine {
        Engine::PostgresLike => {
            let mut est = HistogramEstimator::new();
            SelingerOptimizer {
                bushy: false,
                bushy_limit: 10,
                dp_limit: 12,
            }
            .optimize(db, query, &profile, &mut est)
        }
        Engine::SqliteLike => {
            let mut est = HistogramEstimator::new();
            greedy_optimize(db, query, &profile, &mut est)
        }
        Engine::MsSqlLike => {
            let mut est = SamplingEstimator {
                oracle,
                max_rel_error: 1.6,
            };
            SelingerOptimizer {
                bushy: true,
                bushy_limit: 10,
                dp_limit: 13,
            }
            .optimize(db, query, &profile, &mut est)
        }
        Engine::OracleLike => {
            let mut est = SamplingEstimator {
                oracle,
                max_rel_error: 1.8,
            };
            SelingerOptimizer {
                bushy: true,
                bushy_limit: 10,
                dp_limit: 13,
            }
            .optimize(db, query, &profile, &mut est)
        }
    }
}

/// The bootstrap expert (paper §2): the PostgreSQL-like optimizer, usable
/// regardless of the target execution engine. "The Expert Optimizer can be
/// unrelated to the underlying Database Execution Engine."
pub fn postgres_expert(db: &Database, query: &Query) -> PlanNode {
    let mut est = HistogramEstimator::new();
    let profile = Engine::PostgresLike.profile();
    SelingerOptimizer {
        bushy: false,
        bushy_limit: 10,
        dp_limit: 12,
    }
    .optimize(db, query, &profile, &mut est)
}

/// Convenience: estimated-cost optimizer with an explicit estimator
/// (used by ablations).
pub fn optimize_with(
    db: &Database,
    query: &Query,
    engine: Engine,
    est: &mut dyn CardEstimator,
) -> PlanNode {
    let profile = engine.profile();
    SelingerOptimizer::default().optimize(db, query, &profile, est)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_engine::true_latency;
    use neo_query::workload::job;
    use neo_storage::datagen::imdb;

    #[test]
    fn all_engines_produce_complete_plans() {
        let db = imdb::generate(0.02, 7);
        let wl = job::generate(&db, 7);
        let mut oracle = CardinalityOracle::new();
        for q in wl.queries.iter().take(10) {
            for engine in Engine::ALL {
                let plan = native_optimize(&db, q, engine, &mut oracle);
                assert!(plan.fully_specified(), "{} on {}", q.id, engine.name());
                assert_eq!(plan.rel_mask(), (1u64 << q.num_relations()) - 1);
            }
        }
    }

    /// The commercial optimizers (accurate estimates) should beat the
    /// PostgreSQL-like optimizer (histogram estimates) on correlated data,
    /// in true latency on a common engine profile. This is the gap Neo
    /// closes in the paper.
    #[test]
    fn commercial_beats_postgres_on_correlated_data() {
        let db = imdb::generate(0.1, 7);
        let wl = job::generate(&db, 7);
        let mut oracle = CardinalityOracle::new();
        let profile = Engine::MsSqlLike.profile();
        let (mut pg_total, mut ms_total) = (0.0f64, 0.0f64);
        for q in wl
            .queries
            .iter()
            .filter(|q| q.num_relations() <= 8)
            .take(25)
        {
            let pg_plan = native_optimize(&db, q, Engine::PostgresLike, &mut oracle);
            let ms_plan = native_optimize(&db, q, Engine::MsSqlLike, &mut oracle);
            pg_total += true_latency(&db, q, &profile, &mut oracle, &pg_plan);
            ms_total += true_latency(&db, q, &profile, &mut oracle, &ms_plan);
        }
        assert!(
            ms_total < pg_total,
            "MSSQL-native total {ms_total} should beat PostgreSQL-plans total {pg_total}"
        );
    }

    #[test]
    fn postgres_expert_is_deterministic() {
        let db = imdb::generate(0.02, 7);
        let wl = job::generate(&db, 7);
        let q = &wl.queries[5];
        let a = postgres_expert(&db, q);
        let b = postgres_expert(&db, q);
        assert_eq!(a, b);
    }
}
