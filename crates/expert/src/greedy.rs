//! Greedy left-deep optimizer: nearest-neighbour join ordering with
//! operator/access-path selection at each step.
//!
//! Serves two roles: the SQLite-like native optimizer (simpler than DP,
//! mirroring SQLite's NN heuristic), and the fallback for queries beyond
//! the Selinger DP limit (PostgreSQL's GEQO stand-in).

use crate::cardest::CardEstimator;
use neo_engine::{cost_join, cost_scan, primary_edge, CostedNode, EngineProfile};
use neo_query::{JoinOp, PlanNode, Query, QueryContext, RelMask, ScanType};
use neo_storage::Database;

/// Greedily builds a complete left-deep plan: start at the relation with
/// the smallest estimated cardinality, then repeatedly attach the
/// join-connected relation whose cheapest (operator, access path) extension
/// minimizes estimated cost.
pub fn greedy_optimize(
    db: &Database,
    query: &Query,
    profile: &EngineProfile,
    est: &mut dyn CardEstimator,
) -> PlanNode {
    let n = query.num_relations();
    let ctx = QueryContext::new(db, query);

    let start = (0..n)
        .min_by(|&a, &b| {
            est.base(db, query, a)
                .partial_cmp(&est.base(db, query, b))
                .unwrap()
        })
        .expect("non-empty query");
    let card = est.base(db, query, start);
    let (mut node, mut info) = best_scan(db, query, profile, &ctx, start, card);
    let mut mask: RelMask = 1 << start;

    while mask.count_ones() as usize != n {
        let mut best: Option<(PlanNode, CostedNode)> = None;
        for rel in 0..n {
            let rbit = 1u64 << rel;
            if mask & rbit != 0 || !ctx.connected(mask, rbit) {
                continue;
            }
            let (lkey, rkey) = primary_edge(query, mask, rbit);
            let out_card = est.join(db, query, mask | rbit);
            let rcard = est.base(db, query, rel);
            for scan in [ScanType::Table, ScanType::Index] {
                if scan == ScanType::Index && !ctx.index_ok[rel] {
                    continue;
                }
                let rnode = PlanNode::Scan { rel, scan };
                let rinfo = cost_scan(db, query, profile, rel, scan, rcard);
                for op in JoinOp::ALL {
                    let inl = if op == JoinOp::Loop {
                        neo_engine::inl_avg_match(db, query, &rnode, rkey)
                    } else {
                        None
                    };
                    let rr = if inl.is_some() {
                        CostedNode {
                            card: rcard,
                            cost: 0.0,
                            order: None,
                        }
                    } else {
                        rinfo.clone()
                    };
                    let joined = cost_join(profile, op, &info, &rr, lkey, rkey, out_card, inl);
                    if best.as_ref().is_none_or(|(_, b)| joined.cost < b.cost) {
                        best = Some((
                            PlanNode::Join {
                                op,
                                left: Box::new(node.clone()),
                                right: Box::new(rnode.clone()),
                            },
                            joined,
                        ));
                    }
                }
            }
        }
        let (bnode, binfo) = best.expect("connected query always extendable");
        mask = bnode.rel_mask();
        node = bnode;
        info = binfo;
    }
    node
}

/// The cheapest legal scan for a relation.
fn best_scan(
    db: &Database,
    query: &Query,
    profile: &EngineProfile,
    ctx: &QueryContext,
    rel: usize,
    card: f64,
) -> (PlanNode, CostedNode) {
    let t = cost_scan(db, query, profile, rel, ScanType::Table, card);
    if ctx.index_ok[rel] {
        let i = cost_scan(db, query, profile, rel, ScanType::Index, card);
        if i.cost < t.cost {
            return (
                PlanNode::Scan {
                    rel,
                    scan: ScanType::Index,
                },
                i,
            );
        }
    }
    (
        PlanNode::Scan {
            rel,
            scan: ScanType::Table,
        },
        t,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cardest::HistogramEstimator;
    use neo_engine::Engine;
    use neo_query::workload::{corp, job};
    use neo_storage::datagen;

    #[test]
    fn greedy_completes_every_job_query() {
        let db = datagen::imdb::generate(0.02, 7);
        let wl = job::generate(&db, 7);
        let profile = Engine::SqliteLike.profile();
        let mut est = HistogramEstimator::new();
        for q in &wl.queries {
            let plan = greedy_optimize(&db, q, &profile, &mut est);
            assert!(plan.fully_specified());
            assert_eq!(
                plan.rel_mask(),
                (1u64 << q.num_relations()) - 1,
                "query {}",
                q.id
            );
        }
    }

    #[test]
    fn greedy_handles_cyclic_corp_queries() {
        let db = datagen::corp::generate(0.01, 7);
        let wl = corp::generate(&db, 7, 40);
        let profile = Engine::SqliteLike.profile();
        let mut est = HistogramEstimator::new();
        for q in &wl.queries {
            let plan = greedy_optimize(&db, q, &profile, &mut est);
            assert!(plan.fully_specified(), "query {}", q.id);
        }
    }

    #[test]
    fn greedy_plans_are_left_deep() {
        let db = datagen::imdb::generate(0.02, 7);
        let wl = job::generate(&db, 7);
        let profile = Engine::SqliteLike.profile();
        let mut est = HistogramEstimator::new();
        let q = wl.queries.iter().find(|q| q.num_relations() >= 5).unwrap();
        let plan = greedy_optimize(&db, q, &profile, &mut est);
        fn right_is_scan(n: &PlanNode) -> bool {
            match n {
                PlanNode::Scan { .. } => true,
                PlanNode::Join { left, right, .. } => {
                    matches!(**right, PlanNode::Scan { .. }) && right_is_scan(left)
                }
            }
        }
        assert!(right_is_scan(&plan), "{}", plan.describe());
    }
}
