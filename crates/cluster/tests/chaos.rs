//! Chaos coverage (ISSUE 6): under arbitrary seeded fault schedules the
//! checkpoint protocol never forks its history and never lets a torn
//! frame through checksum verification; the same schedule + seed
//! reproduces byte-identical results; bounded retries absorb every
//! transient fault without losing a generation; and a torn lease file is
//! claimable, not a crash loop.

use neo_cluster::{
    ChaosConfig, CheckpointStore, FaultInjectingStore, FsCheckpointStore, MemCheckpointStore,
};
use neo_learn::{RetryPolicy, RetryStats};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A unique scratch directory per test, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "neo-cluster-chaos-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn framed(tag: u8) -> Vec<u8> {
    neo::checkpoint::frame(&[tag; 32])
}

/// Retries without backoff sleeps: the properties below run thousands of
/// faulted ops, and what they exercise is the *bounded-attempts* contract,
/// not the pacing.
fn fast_retry(attempts: u32) -> RetryPolicy {
    RetryPolicy {
        attempts,
        base_delay_ms: 0,
        max_delay_ms: 0,
        jitter: 0.0,
        seed: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..Default::default() })]

    /// For any fault-schedule seed, any fault rate up to 60 %, and any
    /// interleaving of publish / sync / GC / lease traffic — all behind
    /// bounded retries — the published history stays strictly monotone
    /// (never forks) and a sync never adopts bytes that fail checksum
    /// verification or differ from what was published for that
    /// generation.
    #[test]
    fn arbitrary_fault_schedules_never_fork_history_or_adopt_corruption(
        seed in 0u64..u64::MAX,
        fault_pct in 0u8..61,
        ops in collection::vec(0u8..4, 1..60),
    ) {
        let inner = Arc::new(MemCheckpointStore::new());
        let chaos = FaultInjectingStore::new(
            Arc::clone(&inner) as Arc<dyn CheckpointStore>,
            ChaosConfig {
                seed,
                fault_rate: f64::from(fault_pct) / 100.0,
                corrupt_load_rate: 0.5,
                torn_lease_rate: 0.5,
                crash_publish_rate: 1.0,
                latency_rate: 0.0,
                latency_ms: 0,
            },
        );
        let retry = fast_retry(5);
        let stats = RetryStats::new();
        let mut next_gen = 1u64;
        let mut last_adopted = 0u64;
        let mut clean_view = 0u64;
        for &op in &ops {
            match op {
                0 => {
                    // Leader publish: retried; an exhausted publish loses
                    // nothing because the same generation is re-minted
                    // with identical bytes on the next attempt.
                    let g = next_gen;
                    let bytes = framed(g as u8);
                    if retry.run(&stats, || chaos.publish(g, &bytes)).is_ok() {
                        next_gen += 1;
                    }
                }
                1 => {
                    // Follower sync: manifest + load + verify is one
                    // attempt; a torn frame fails decode and the whole
                    // attempt retries.
                    let sync = retry.run(&stats, || {
                        match chaos.load_latest()? {
                            None => Ok(None),
                            Some((g, bytes)) => {
                                neo::checkpoint::decode(&bytes)?;
                                Ok(Some((g, bytes)))
                            }
                        }
                    });
                    if let Ok(Some((g, bytes))) = sync {
                        // No corrupt adoption: what survived verification
                        // is exactly what the leader published.
                        prop_assert_eq!(&bytes, &framed(g as u8), "adopted corrupt bytes");
                        // No fork: adoption never moves backwards.
                        prop_assert!(
                            g >= last_adopted,
                            "history forked: adopted {} after {}", g, last_adopted
                        );
                        last_adopted = g;
                    }
                }
                2 => {
                    // Retention GC is best-effort under faults.
                    let _ = chaos.retain(2);
                }
                _ => {
                    // Lease traffic (the Mem store has no on-disk lease
                    // file to tear; the fault path is still drawn).
                    let _ = retry.run(&stats, || chaos.try_acquire_lease("n", 1, 60_000));
                    let _ = chaos.read_lease();
                }
            }
            // The clean view of the inner store never regresses,
            // whatever the injector did this op.
            let latest = inner.latest_generation().unwrap().unwrap_or(0);
            prop_assert!(
                latest >= clean_view,
                "inner history regressed: {} after {}", latest, clean_view
            );
            prop_assert!(latest < next_gen, "a failed publish advanced the history");
            clean_view = latest;
            // And whatever the manifest references verifies + matches.
            if let Some((g, bytes)) = inner.load_latest().unwrap() {
                neo::checkpoint::decode(&bytes).expect("store holds a corrupt checkpoint");
                prop_assert_eq!(&bytes, &framed(g as u8));
            }
        }
    }
}

/// One scripted, single-threaded storm over a fresh fs-backed store:
/// returns a per-op outcome log (error *kinds* only — nothing
/// path-dependent), the final injector stats, and the surviving store
/// state. Two runs with the same seed must agree byte-for-byte.
fn scripted_storm(dir: &Path, seed: u64) -> (Vec<String>, neo_cluster::ChaosStats, Vec<u8>) {
    let inner = Arc::new(FsCheckpointStore::open(dir).unwrap());
    let chaos = FaultInjectingStore::over_fs(
        Arc::clone(&inner),
        ChaosConfig {
            seed,
            fault_rate: 0.4,
            corrupt_load_rate: 0.5,
            torn_lease_rate: 0.5,
            crash_publish_rate: 1.0,
            latency_rate: 0.0,
            latency_ms: 0,
        },
    );
    let mut log = Vec::new();
    let mut gen = 0u64;
    for round in 0u64..40 {
        gen += 1;
        let kind = |r: std::io::Result<()>| match r {
            Ok(()) => "ok".to_string(),
            Err(e) => format!("err:{:?}", e.kind()),
        };
        log.push(format!(
            "publish {gen}: {}",
            kind(chaos.publish(gen, &framed(gen as u8)))
        ));
        log.push(format!(
            "load {gen}: {}",
            match chaos.load(gen) {
                Ok(bytes) => format!(
                    "ok:{}:{:?}",
                    bytes.len(),
                    neo::checkpoint::decode(&bytes).is_ok()
                ),
                Err(e) => format!("err:{:?}", e.kind()),
            }
        ));
        log.push(format!(
            "manifest: {}",
            match chaos.latest_generation() {
                Ok(g) => format!("ok:{g:?}"),
                Err(e) => format!("err:{:?}", e.kind()),
            }
        ));
        log.push(format!(
            "lease: {}",
            match chaos.try_acquire_lease("n", round + 1, 60_000) {
                Ok(l) => format!("ok:{:?}", l.map(|l| l.term)),
                Err(e) => format!("err:{:?}", e.kind()),
            }
        ));
        if round % 7 == 0 {
            log.push(format!(
                "retain: {}",
                match chaos.retain(3) {
                    Ok(n) => format!("ok:{n}"),
                    Err(e) => format!("err:{:?}", e.kind()),
                }
            ));
        }
    }
    let surviving = inner
        .load_latest()
        .unwrap()
        .map(|(_, bytes)| bytes)
        .unwrap_or_default();
    (log, chaos.stats(), surviving)
}

/// The acceptance pin: the same fault schedule and seed produce
/// byte-identical chaos results — op-for-op outcome log, injector
/// counters, and surviving store bytes.
#[test]
fn same_schedule_and_seed_reproduce_byte_identical_results() {
    let (dir_a, dir_b) = (TempDir::new("det-a"), TempDir::new("det-b"));
    let (log_a, stats_a, bytes_a) = scripted_storm(dir_a.path(), 0x00C0_FFEE);
    let (log_b, stats_b, bytes_b) = scripted_storm(dir_b.path(), 0x00C0_FFEE);
    assert_eq!(log_a, log_b, "op outcomes diverged under the same seed");
    assert_eq!(stats_a, stats_b, "injector counters diverged");
    assert_eq!(bytes_a, bytes_b, "surviving store bytes diverged");
    assert!(stats_a.total_faults() > 0, "the storm never fired");
    assert!(
        stats_a.corrupt_loads > 0,
        "no torn read in 40 rounds at 50%"
    );
    // A different seed is a different storm (sanity: the pin is not
    // vacuous).
    let dir_c = TempDir::new("det-c");
    let (log_c, _, _) = scripted_storm(dir_c.path(), 0xBEEF);
    assert_ne!(log_a, log_c, "the schedule ignores its seed");
}

/// Bounded retries absorb a sustained 30 % transient-fault rate without
/// losing a single generation end to end.
#[test]
fn retries_recover_every_transient_fault_without_losing_generations() {
    let inner = Arc::new(MemCheckpointStore::new());
    let chaos = FaultInjectingStore::new(
        Arc::clone(&inner) as Arc<dyn CheckpointStore>,
        ChaosConfig {
            seed: 7,
            fault_rate: 0.3,
            corrupt_load_rate: 0.3,
            torn_lease_rate: 0.0,
            crash_publish_rate: 0.0,
            latency_rate: 0.0,
            latency_ms: 0,
        },
    );
    let retry = fast_retry(16);
    let stats = RetryStats::new();
    for g in 1..=20u64 {
        retry
            .run(&stats, || chaos.publish(g, &framed(g as u8)))
            .expect("publish exhausted 16 attempts at a 30% fault rate");
        let (adopted, bytes) = retry
            .run(&stats, || {
                let (adopted, bytes) = chaos.load_latest()?.expect("store non-empty");
                neo::checkpoint::decode(&bytes)?;
                Ok((adopted, bytes))
            })
            .expect("sync exhausted 16 attempts");
        assert_eq!((adopted, bytes), (g, framed(g as u8)));
    }
    assert_eq!(
        inner.latest_generation().unwrap(),
        Some(20),
        "a generation was lost"
    );
    let snap = stats.snapshot();
    assert!(snap.retries > 0, "a 30% storm never forced a retry");
    assert!(snap.recoveries > 0, "no faulted op recovered");
    assert_eq!(snap.exhausted, 0, "an op exhausted its attempts");
}

/// A lease fault that tears `LEADER` mid-write (the injector's
/// crash-during-renewal) leaves a file the store reads as *claimable* —
/// the fleet recovers by fencing past it, not by crash-looping on a
/// parse error.
#[test]
fn torn_lease_from_injected_crash_is_claimed_with_a_fencing_term() {
    let tmp = TempDir::new("torn-lease");
    let inner = Arc::new(FsCheckpointStore::open(tmp.path()).unwrap());
    // A healthy regime holds the lease at term 1.
    let lease = inner
        .try_acquire_lease("old", 1_000, 60_000)
        .unwrap()
        .unwrap();
    assert_eq!(lease.term, 1);
    // Every lease op faults and tears the file mid-write.
    let chaos = FaultInjectingStore::over_fs(
        Arc::clone(&inner),
        ChaosConfig {
            seed: 3,
            fault_rate: 1.0,
            corrupt_load_rate: 0.0,
            torn_lease_rate: 1.0,
            crash_publish_rate: 0.0,
            latency_rate: 0.0,
            latency_ms: 0,
        },
    );
    chaos
        .try_acquire_lease("old", 2_000, 60_000)
        .expect_err("a 100% fault rate must fail the renewal");
    assert!(
        chaos.stats().torn_leases > 0,
        "the renewal never tore the file"
    );
    // The torn file reads as a claimable lease (expiry gone => expired),
    // not an error, and the next claimant fences past the old term.
    let torn = inner.read_lease().unwrap();
    assert!(
        torn.is_none_or(|l| l.expires_at_ms == 0),
        "torn lease still reads as live"
    );
    let claimed = inner
        .try_acquire_lease("new", 3_000, 60_000)
        .unwrap()
        .expect("torn lease not claimable");
    assert_eq!(claimed.holder, "new");
    assert!(
        claimed.term > lease.term,
        "claim term {} does not fence the torn regime's {}",
        claimed.term,
        lease.term
    );
    assert!(
        inner.stats().torn_lease_reads > 0,
        "the store never saw the tear"
    );
}
