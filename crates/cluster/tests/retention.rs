//! Store retention + crash-window coverage (ISSUE 5): a publish that
//! crashes between the checkpoint rename and the manifest rewrite leaves
//! a clean, recoverable store whose litter is GC-eligible; `retain`
//! never deletes the manifest's generation under arbitrary
//! publish/GC interleavings; stale `*.tmp` files never accumulate.

use neo_cluster::{CheckpointStore, FsCheckpointStore, MemCheckpointStore};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory per test, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "neo-cluster-ret-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn framed(tag: u8) -> Vec<u8> {
    neo::checkpoint::frame(&[tag; 32])
}

/// (`gen-*.ckpt` files, `*.tmp` files) in a store directory.
fn census(dir: &Path) -> (usize, usize) {
    let mut ckpt = 0;
    let mut tmp = 0;
    for entry in std::fs::read_dir(dir).unwrap().flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.ends_with(".tmp") {
            tmp += 1;
        } else if name.starts_with("gen-") && name.ends_with(".ckpt") {
            ckpt += 1;
        }
    }
    (ckpt, tmp)
}

/// The crash window the publish ordering is designed around: the process
/// dies after `gen-N.ckpt` is renamed into place but before the manifest
/// is rewritten (simulated here with a half-written `MANIFEST.tmp` too).
/// A restarted store must serve the *previous* generation cleanly, and
/// the orphaned checkpoint must be GC-eligible — but never the manifest's
/// own generation.
#[test]
fn crash_between_checkpoint_rename_and_manifest_rewrite_is_recoverable() {
    let tmp = TempDir::new("crash-window");
    {
        let store = FsCheckpointStore::open(tmp.path()).unwrap();
        store.publish(1, &framed(1)).unwrap();
        store.publish(2, &framed(2)).unwrap();
        // Simulated crash mid-publish of generation 3: checkpoint renamed,
        // manifest rewrite torn. Open-time reclamation is age-gated (a
        // fresh tmp may be a LIVE peer's in-flight write), so backdate
        // the litter the way real crash litter would have aged.
        std::fs::write(store.checkpoint_path(3), framed(3)).unwrap();
        let manifest_tmp = tmp.path().join("MANIFEST.tmp");
        std::fs::write(&manifest_tmp, b"half a manifest").unwrap();
        let old = std::time::SystemTime::now() - std::time::Duration::from_secs(60);
        std::fs::File::options()
            .append(true)
            .open(&manifest_tmp)
            .unwrap()
            .set_times(std::fs::FileTimes::new().set_modified(old))
            .unwrap();
    }

    // Restart: the store serves the previous generation as if nothing
    // happened, and open() already swept the tmp litter.
    let store = FsCheckpointStore::open(tmp.path()).unwrap();
    assert_eq!(store.latest_generation().unwrap(), Some(2));
    let (g, bytes) = store.load_latest().unwrap().unwrap();
    assert_eq!((g, bytes), (2, framed(2)));
    assert_eq!(census(tmp.path()), (3, 0), "tmp litter survived open()");

    // The orphaned generation-3 checkpoint (newer than the manifest,
    // referenced by nothing) is GC litter; the manifest's generation and
    // its predecessor survive `retain(2)`.
    assert_eq!(store.retain(2).unwrap(), 1);
    assert!(store.load(3).is_err(), "orphan survived GC");
    assert_eq!(store.load(2).unwrap(), framed(2));
    assert_eq!(store.load(1).unwrap(), framed(1));
    assert_eq!(census(tmp.path()), (2, 0));

    // The next leader re-mints generation 3 cleanly over the swept store.
    store.publish(3, &framed(9)).unwrap();
    assert_eq!(store.load_latest().unwrap().unwrap(), (3, framed(9)));
}

/// Regression (ISSUE 5 satellite): a publisher that crashed between the
/// tmp write and the rename used to leave `gen-N.ckpt.tmp` behind
/// forever. Both `open()` and the next `publish` now sweep it.
#[test]
fn crashed_publish_tmp_litter_is_swept_before_the_next_publish() {
    let tmp = TempDir::new("tmp-litter");
    let store = FsCheckpointStore::open(tmp.path()).unwrap();
    store.publish(1, &framed(1)).unwrap();
    // Crash mid-publish of generation 2: tmp written, never renamed.
    std::fs::write(tmp.path().join("gen-000002.ckpt.tmp"), b"half a ckpt").unwrap();
    assert_eq!(census(tmp.path()), (1, 1));
    // The next publish (same store handle, no reopen) sweeps before
    // writing its own tmp — the directory ends clean.
    store.publish(2, &framed(2)).unwrap();
    assert_eq!(
        census(tmp.path()),
        (2, 0),
        "crashed-publish litter survived"
    );
    assert_eq!(store.load(2).unwrap(), framed(2));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..Default::default() })]

    /// Under arbitrary interleavings of publishes and GC runs — any
    /// `keep_last`, including the degenerate 0 — `retain` never deletes
    /// the generation the manifest references: `load_latest` always
    /// succeeds afterwards, on both store implementations, and they agree
    /// on what was collected.
    #[test]
    fn retain_never_deletes_the_manifest_generation(
        ops in collection::vec((0u8..3, 0usize..5), 1..40),
    ) {
        let tmp = TempDir::new("retain-prop");
        let fs = FsCheckpointStore::open(tmp.path()).unwrap();
        let mem = MemCheckpointStore::new();
        let mut next_gen = 1u64;
        for &(kind, keep) in &ops {
            if kind < 2 {
                // Publish (weighted 2:1 over GC so histories grow).
                fs.publish(next_gen, &framed(next_gen as u8)).unwrap();
                mem.publish(next_gen, &framed(next_gen as u8)).unwrap();
                next_gen += 1;
            } else {
                let removed_fs = fs.retain(keep).unwrap();
                let removed_mem = mem.retain(keep).unwrap();
                prop_assert_eq!(
                    removed_fs, removed_mem,
                    "store impls disagree on retention policy"
                );
            }
            // The invariant: whatever just happened, the manifest's
            // generation is loadable (or the store is still empty).
            if next_gen > 1 {
                let (g_fs, bytes_fs) = fs.load_latest().unwrap().expect("fs lost its manifest");
                let (g_mem, bytes_mem) =
                    mem.load_latest().unwrap().expect("mem lost its manifest");
                prop_assert_eq!(g_fs, next_gen - 1);
                prop_assert_eq!(g_mem, next_gen - 1);
                prop_assert_eq!(bytes_fs, framed((next_gen - 1) as u8));
                prop_assert_eq!(bytes_mem, framed((next_gen - 1) as u8));
            }
            prop_assert_eq!(census(tmp.path()).1, 0, "tmp litter accumulated");
        }
    }
}
