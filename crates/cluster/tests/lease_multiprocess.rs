//! Two-PROCESS lease mutual exclusion (ISSUE 10 satellite). The
//! in-process `op_lock` cannot serialize two OS processes; the
//! `O_EXCL` + `link(2)` mutation lock in [`FsCheckpointStore`] must.
//!
//! Protocol: the parent test re-spawns its own test binary twice,
//! `--exact`-filtered to the env-gated `lease_hammer_helper` below.
//! Both children hammer `try_acquire_lease` with `ttl_ms = 0` against
//! the same store directory — every successful claim is therefore a
//! *takeover* that mints a fresh fencing term. Under true mutual
//! exclusion each term is minted exactly once, so the two processes'
//! minted-term logs must be disjoint. Without the lock, both processes
//! routinely read term `T` and both mint `T + 1` — exactly the
//! duplicated-fence bug the lock exists to prevent.

use neo_cluster::{CheckpointStore, FsCheckpointStore};
use std::collections::HashSet;
use std::io::ErrorKind;
use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

const DIR_VAR: &str = "NEO_LEASE_HELPER_DIR";
const OUT_VAR: &str = "NEO_LEASE_HELPER_OUT";
const NAME_VAR: &str = "NEO_LEASE_HELPER_NAME";

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("neo-lease-mp-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn wall_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .expect("clock after epoch")
        .as_millis() as u64
}

/// The child body: not a test of its own — it no-ops unless the parent
/// set the env contract. Hammers zero-TTL claims for a fixed window and
/// logs every term it minted, one per line.
#[test]
fn lease_hammer_helper() {
    let (Ok(dir), Ok(out), Ok(name)) = (
        std::env::var(DIR_VAR),
        std::env::var(OUT_VAR),
        std::env::var(NAME_VAR),
    ) else {
        return; // normal test run, not a spawned helper
    };
    let store = FsCheckpointStore::open(&dir).expect("open shared store");
    let mut minted: Vec<u64> = Vec::new();
    let deadline = Instant::now() + Duration::from_millis(1_500);
    while Instant::now() < deadline {
        // ttl 0 ⇒ the lease is already expired for the next caller:
        // every grant is a takeover and mints a new term.
        match store.try_acquire_lease(&name, wall_ms(), 0) {
            Ok(Some(lease)) => {
                minted.push(lease.term);
                // Mutual exclusion is under test, not lock fairness: a
                // back-to-back re-claim can monopolize the lock (the
                // peer's 1ms backoff never lands in the tiny free
                // window). Yield longer than the backoff so both
                // processes keep making progress.
                std::thread::sleep(Duration::from_millis(2));
            }
            Ok(None) => {}
            // The mutation lock gives up with WouldBlock after its
            // bounded wait — under a hammer that is contention, not
            // failure; retry.
            Err(e) if e.kind() == ErrorKind::WouldBlock => {}
            Err(e) => panic!("helper {name}: lease claim failed: {e}"),
        }
    }
    let body: String = minted.iter().map(|t| format!("{t}\n")).collect();
    std::fs::write(&out, body).expect("write term log");
}

#[test]
fn lease_terms_are_globally_unique_across_two_processes() {
    let scratch = TempDir::new("fleet");
    let store_dir = scratch.0.join("store");
    std::fs::create_dir_all(&store_dir).expect("store dir");

    let exe = std::env::current_exe().expect("own test binary");
    let spawn = |who: &str| {
        let out = scratch.0.join(format!("terms-{who}.txt"));
        let child = Command::new(&exe)
            .args(["lease_hammer_helper", "--exact", "--nocapture"])
            .env(DIR_VAR, &store_dir)
            .env(OUT_VAR, &out)
            .env(NAME_VAR, who)
            .spawn()
            .expect("spawn helper process");
        (child, out)
    };
    let (mut a, out_a) = spawn("proc-a");
    let (mut b, out_b) = spawn("proc-b");
    assert!(a.wait().expect("wait a").success(), "helper a failed");
    assert!(b.wait().expect("wait b").success(), "helper b failed");

    let read_terms = |path: &PathBuf| -> Vec<u64> {
        std::fs::read_to_string(path)
            .expect("helper wrote its term log")
            .lines()
            .map(|l| l.parse().expect("term line"))
            .collect()
    };
    let terms_a = read_terms(&out_a);
    let terms_b = read_terms(&out_b);

    // Both processes made real progress — neither starved out.
    assert!(terms_a.len() >= 10, "proc-a minted only {}", terms_a.len());
    assert!(terms_b.len() >= 10, "proc-b minted only {}", terms_b.len());

    // Within one process, terms are strictly increasing (each mint
    // observed the previous state).
    for terms in [&terms_a, &terms_b] {
        for w in terms.windows(2) {
            assert!(w[0] < w[1], "non-monotonic mint in one process: {w:?}");
        }
    }

    // Across processes, no term was minted twice: the claim sequence is
    // truly serialized. This is the assertion that fails without the
    // O_EXCL/link(2) lock — both processes read term T, both mint T+1.
    let set_a: HashSet<u64> = terms_a.iter().copied().collect();
    let set_b: HashSet<u64> = terms_b.iter().copied().collect();
    let dupes: Vec<u64> = set_a.intersection(&set_b).copied().collect();
    assert!(
        dupes.is_empty(),
        "terms minted by BOTH processes (mutual exclusion broken): {dupes:?}"
    );
}
