//! Fleet invariants (ISSUE 4): generation convergence, cross-node plan
//! byte-equality, corrupt-checkpoint rejection, and warm crash recovery.

use neo::{Featurization, Featurizer, NetConfig, ValueNet};
use neo_cluster::{CheckpointStore, Cluster, ClusterConfig, FsCheckpointStore, MemCheckpointStore};
use neo_engine::{true_latency, CardinalityOracle, Engine};
use neo_learn::{ReplayConfig, TrainerConfig};
use neo_query::{PlanNode, Query};
use neo_serve::ServeConfig;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

/// A unique scratch directory per test, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "neo-cluster-it-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

struct Fixture {
    db: Arc<neo_storage::Database>,
    featurizer: Arc<Featurizer>,
    net: Arc<ValueNet>,
    queries: Vec<Query>,
}

fn fixture(seed: u64) -> Fixture {
    let db = Arc::new(neo_storage::datagen::imdb::generate(0.02, seed));
    let queries: Vec<Query> = neo_query::workload::job::generate(&db, seed)
        .queries
        .into_iter()
        .filter(|q| (4..=6).contains(&q.num_relations()))
        .take(5)
        .collect();
    assert!(queries.len() >= 4, "fixture needs a real workload");
    let featurizer = Arc::new(Featurizer::new(&db, Featurization::Histogram));
    let net = Arc::new(ValueNet::new(
        featurizer.query_dim(),
        featurizer.plan_channels(),
        NetConfig {
            query_layers: vec![32, 16],
            conv_channels: vec![16, 8],
            head_layers: vec![16],
            lr: 5e-3,
            grad_clip: 5.0,
            ignore_structure: false,
        },
        seed,
    ));
    Fixture {
        db,
        featurizer,
        net,
        queries,
    }
}

fn cluster_cfg(nodes: usize, seed: u64) -> ClusterConfig {
    ClusterConfig {
        nodes,
        serve: ServeConfig {
            workers: 2,
            // Seeds off so plan byte-equality holds unconditionally —
            // including for late joiners with no seed history (see
            // `ClusterConfig::serve` docs).
            use_seeds: false,
            search_base_expansions: 12,
            ..Default::default()
        },
        trainer: TrainerConfig {
            epochs_per_generation: 3,
            seed,
            ..Default::default()
        },
        replay: ReplayConfig::default(),
        poll_interval_ms: 5,
        auto_poll: false,
        ..Default::default()
    }
}

/// Serves the workload on `node`, executes chosen plans on the latency
/// model, and reports the observations (with predictions) into the fleet
/// sink.
fn serve_and_report(cluster: &Cluster, node: usize, fx: &Fixture, oracle: &mut CardinalityOracle) {
    let profile = Engine::PostgresLike.profile();
    let svc = cluster.node(node).service();
    let outcomes = svc.optimize_stream(&fx.queries);
    for (q, o) in fx.queries.iter().zip(&outcomes) {
        let latency = true_latency(&fx.db, q, &profile, oracle, &o.plan);
        svc.report_outcome(q, o, latency);
    }
}

/// Every node's plans for the workload, via fresh searches at its current
/// generation.
fn plans_per_node(cluster: &Cluster, fx: &Fixture) -> Vec<Vec<PlanNode>> {
    (0..cluster.len())
        .map(|i| {
            cluster
                .node(i)
                .service()
                .optimize_stream(&fx.queries)
                .into_iter()
                .map(|o| o.plan)
                .collect()
        })
        .collect()
}

#[test]
fn fleet_converges_to_leader_generation_with_identical_plans() {
    let tmp = TempDir::new("converge");
    let fx = fixture(11);
    let store: Arc<dyn CheckpointStore> = Arc::new(FsCheckpointStore::open(tmp.path()).unwrap());
    let cluster = Cluster::new(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        Arc::clone(&fx.net),
        store,
        cluster_cfg(3, 11),
    )
    .unwrap();
    assert_eq!(cluster.generations(), vec![0, 0, 0], "fresh fleet at gen 0");

    let mut oracle = CardinalityOracle::new();
    for round in 0..2u64 {
        // Experience arrives from *every* node (the fingerprint-sharded
        // merge), then the leader trains and publishes.
        for node in 0..cluster.len() {
            serve_and_report(&cluster, node, &fx, &mut oracle);
        }
        cluster.leader().trainer().request_generation();
        assert!(
            cluster
                .leader()
                .trainer()
                .wait_for_generation(round + 1, WAIT),
            "generation {} never completed",
            round + 1
        );
        assert!(
            cluster.wait_converged(round + 1, WAIT),
            "fleet failed to converge to generation {}",
            round + 1
        );
        let generations = cluster.generations();
        assert!(
            generations.iter().all(|&g| g == round + 1),
            "nodes diverged: {generations:?}"
        );
        // The fleet invariant: same generation ⇒ byte-identical plans.
        let plans = plans_per_node(&cluster, &fx);
        for (i, node_plans) in plans.iter().enumerate().skip(1) {
            assert_eq!(
                node_plans,
                &plans[0],
                "node {i} chose different plans than the leader at generation {}",
                round + 1
            );
        }
    }
    assert_eq!(cluster.leader().trainer().persist_failures(), 0);
    assert_eq!(
        cluster.store().latest_generation().unwrap(),
        Some(2),
        "both generations persisted"
    );
}

#[test]
fn restarted_follower_recovers_warm_to_the_manifest_generation() {
    let tmp = TempDir::new("restart");
    let fx = fixture(13);
    let store: Arc<dyn CheckpointStore> = Arc::new(FsCheckpointStore::open(tmp.path()).unwrap());
    let mut cluster = Cluster::new(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        Arc::clone(&fx.net),
        store,
        cluster_cfg(2, 13),
    )
    .unwrap();

    let mut oracle = CardinalityOracle::new();
    for node in 0..cluster.len() {
        serve_and_report(&cluster, node, &fx, &mut oracle);
    }
    for g in 1..=2u64 {
        cluster.leader().trainer().request_generation();
        assert!(cluster.leader().trainer().wait_for_generation(g, WAIT));
    }
    let leader_generation = cluster.leader().generation();
    assert_eq!(leader_generation, 2);
    let trained_before = cluster.leader().trainer().completed_generations();

    // Kill the follower and bring up its replacement from nothing but the
    // shared store.
    cluster.restart_follower(1).unwrap();
    let restarted = cluster.node(1);
    assert_eq!(
        restarted.recovered_generation(),
        Some(leader_generation),
        "restart did not recover from the store"
    );
    assert_eq!(
        restarted.generation(),
        leader_generation,
        "restarted node serves a stale generation"
    );
    // Warm means warm: recovery triggered no retraining anywhere.
    assert_eq!(
        cluster.leader().trainer().completed_generations(),
        trained_before,
        "restart caused a retrain"
    );
    // And the recovered node agrees with the fleet byte-for-byte.
    let plans = plans_per_node(&cluster, &fx);
    assert_eq!(plans[1], plans[0], "recovered node disagrees on plans");
}

#[test]
fn corrupt_checkpoint_is_rejected_and_node_keeps_serving() {
    let tmp = TempDir::new("corrupt-sync");
    let fx = fixture(17);
    let fs_store = Arc::new(FsCheckpointStore::open(tmp.path()).unwrap());
    let store: Arc<dyn CheckpointStore> = Arc::clone(&fs_store) as _;
    let cluster = Cluster::new(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        Arc::clone(&fx.net),
        store,
        cluster_cfg(2, 17),
    )
    .unwrap();

    let mut oracle = CardinalityOracle::new();
    serve_and_report(&cluster, 0, &fx, &mut oracle);
    cluster.leader().trainer().request_generation();
    assert!(cluster.leader().trainer().wait_for_generation(1, WAIT));

    // Corrupt generation 1 on disk (a torn replication, say) before the
    // follower ever fetches it.
    let path = fs_store.checkpoint_path(1);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    let err = cluster.node(1).sync().unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    assert_eq!(
        cluster.node(1).generation(),
        0,
        "corrupt checkpoint must not be adopted"
    );

    // Restore the true bytes: the follower recovers on the next sync.
    let good = cluster.store().load_latest();
    assert!(
        good.is_err(),
        "store-level load also rejects the corruption"
    );
    std::fs::write(
        &path,
        neo::checkpoint::frame(&{
            // Re-derive the payload from the leader's in-memory checkpoint.
            let framed = cluster.leader().trainer().latest_checkpoint().unwrap();
            neo::checkpoint::decode(&framed).unwrap().payload().to_vec()
        }),
    )
    .unwrap();
    assert_eq!(cluster.node(1).sync().unwrap(), Some(1));
    assert_eq!(cluster.node(1).generation(), 1);
}

#[test]
fn a_generation_the_store_rejects_never_goes_live() {
    // A store that accepts nothing: the persist-before-publish contract
    // must keep every generation off the serving path.
    struct BrokenStore;
    impl CheckpointStore for BrokenStore {
        fn publish_term(&self, _generation: u64, _term: u64, _framed: &[u8]) -> io::Result<()> {
            Err(io::Error::other("disk on fire"))
        }
        fn manifest(&self) -> io::Result<Option<neo_cluster::Manifest>> {
            Ok(None)
        }
        fn load(&self, generation: u64) -> io::Result<Vec<u8>> {
            Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("generation {generation} not in store"),
            ))
        }
        fn read_lease(&self) -> io::Result<Option<neo_cluster::LeaderLease>> {
            Ok(None)
        }
        fn try_acquire_lease(
            &self,
            holder: &str,
            now_ms: u64,
            ttl_ms: u64,
        ) -> io::Result<Option<neo_cluster::LeaderLease>> {
            // Leases work (the leader can be elected); only checkpoint
            // durability is on fire.
            Ok(Some(neo_cluster::LeaderLease {
                holder: holder.into(),
                term: 1,
                expires_at_ms: now_ms.saturating_add(ttl_ms),
            }))
        }
        fn release_lease(&self, _holder: &str) -> io::Result<bool> {
            Ok(false)
        }
        fn retain(&self, _keep_last: usize) -> io::Result<usize> {
            Ok(0)
        }
    }

    let fx = fixture(19);
    let cluster = Cluster::new(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        Arc::clone(&fx.net),
        Arc::new(BrokenStore),
        cluster_cfg(1, 19),
    )
    .unwrap();
    let mut oracle = CardinalityOracle::new();
    serve_and_report(&cluster, 0, &fx, &mut oracle);
    cluster.leader().trainer().request_generation();
    // The generation *runs* (completes) but is vetoed before publishing.
    assert!(cluster.leader().trainer().wait_for_generation(1, WAIT));
    assert_eq!(cluster.leader().generation(), 0, "vetoed generation served");
    assert_eq!(cluster.leader().trainer().persist_failures(), 1);
    assert!(cluster.leader().trainer().latest_checkpoint().is_none());
}

#[test]
fn follower_promotes_when_the_leader_dies_and_history_does_not_fork() {
    let fx = fixture(29);
    let store: Arc<dyn CheckpointStore> = Arc::new(MemCheckpointStore::new());
    let mut cluster = Cluster::new(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        Arc::clone(&fx.net),
        store,
        ClusterConfig {
            auto_poll: true,
            failover: true,
            lease_ttl_ms: 100,
            ..cluster_cfg(3, 29)
        },
    )
    .unwrap();
    assert_eq!(cluster.leader_index(), Some(0));
    let old_term = cluster.leader().term();
    assert_eq!(old_term, 1, "constructed leader holds term 1");

    // Close the loop once under the original leader.
    let mut oracle = CardinalityOracle::new();
    for node in 0..cluster.len() {
        serve_and_report(&cluster, node, &fx, &mut oracle);
    }
    cluster.leader().trainer().request_generation();
    assert!(cluster.leader().trainer().wait_for_generation(1, WAIT));
    assert!(cluster.wait_converged(1, WAIT));

    // Kill the leader like a crash: no resign, the lease just expires.
    cluster.kill_node(0);
    let generation_at_kill = cluster.store().latest_generation().unwrap().unwrap();
    let promoted = cluster
        .wait_for_leader(WAIT)
        .expect("no candidate promoted");
    let successor = cluster.node(promoted);
    assert!(
        successor.term() > old_term,
        "successor must fence the dead leader"
    );
    assert!(successor.promotions() >= 1);
    let new_term = successor.term();

    // The successor keeps the fleet learning over the same merged sink.
    for node in 0..cluster.len() {
        serve_and_report(&cluster, node, &fx, &mut oracle);
    }
    cluster.node(promoted).trainer().request_generation();
    assert!(
        cluster
            .node(promoted)
            .trainer()
            .wait_for_generation(1, WAIT),
        "successor never trained"
    );
    let post = cluster.store().latest_generation().unwrap().unwrap();
    assert!(post > generation_at_kill, "history did not advance");
    assert!(cluster.wait_converged(post, WAIT));
    // No fork: every survivor on the successor's generation and term,
    // byte-identical plans.
    for i in 0..cluster.len() {
        assert_eq!(
            (cluster.node(i).generation(), cluster.node(i).served_term()),
            (post, new_term),
            "node {i} diverged"
        );
    }
    let plans = plans_per_node(&cluster, &fx);
    for (i, node_plans) in plans.iter().enumerate().skip(1) {
        assert_eq!(node_plans, &plans[0], "node {i} disagrees after failover");
    }
}

#[test]
fn resigned_leader_demotes_and_rejoins_as_a_follower() {
    let fx = fixture(31);
    let store: Arc<dyn CheckpointStore> = Arc::new(MemCheckpointStore::new());
    let mut cluster = Cluster::new(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        Arc::clone(&fx.net),
        store,
        ClusterConfig {
            auto_poll: true,
            failover: true,
            lease_ttl_ms: 200,
            ..cluster_cfg(2, 31)
        },
    )
    .unwrap();
    let mut oracle = CardinalityOracle::new();
    for node in 0..cluster.len() {
        serve_and_report(&cluster, node, &fx, &mut oracle);
    }
    cluster.leader().trainer().request_generation();
    assert!(cluster.leader().trainer().wait_for_generation(1, WAIT));
    assert!(cluster.wait_converged(1, WAIT));

    // Clean handoff: the lease is released and demotion is immediate;
    // whichever candidate's tick fires first (the ex-leader included —
    // every node is a candidate) claims the next term.
    assert!(cluster.node_mut(0).resign().unwrap());
    let promoted = cluster
        .wait_for_leader(WAIT)
        .expect("no candidate took over");
    let new_term = cluster.node(promoted).term();
    assert_eq!(new_term, 2, "a released lease still mints the next term");

    // The loop keeps closing under the new term, and nobody — the
    // ex-leader included — is left behind the store's history.
    for node in 0..cluster.len() {
        serve_and_report(&cluster, node, &fx, &mut oracle);
    }
    cluster.node(promoted).trainer().request_generation();
    assert!(cluster
        .node(promoted)
        .trainer()
        .wait_for_generation(1, WAIT));
    let post = cluster.store().latest_generation().unwrap().unwrap();
    assert!(
        post >= 2,
        "the successor's generation continues the history"
    );
    assert!(
        cluster.wait_converged(post, WAIT),
        "a node fell behind the store"
    );
    for i in 0..cluster.len() {
        assert_eq!(cluster.node(i).generation(), post, "node {i} behind");
        assert_eq!(cluster.node(i).served_term(), new_term, "node {i} term");
    }
}

#[test]
fn deposed_leaders_late_publish_is_fenced_and_it_adopts_the_successor() {
    use neo_cluster::{ClusterNode, NodeConfig};
    use neo_learn::ExperienceSink;

    let fx = fixture(37);
    let store: Arc<dyn CheckpointStore> = Arc::new(MemCheckpointStore::new());
    let node_cfg = |name: &str| NodeConfig {
        name: name.into(),
        serve: ServeConfig {
            workers: 2,
            use_seeds: false,
            search_base_expansions: 12,
            ..Default::default()
        },
        poll_interval_ms: 5,
        auto_poll: false, // manual control: node A must NOT renew its lease
        lease_ttl_ms: 50,
        failover: false,
        retain_generations: None,
        ..Default::default()
    };
    let trainer_cfg = TrainerConfig {
        epochs_per_generation: 3,
        seed: 37,
        ..Default::default()
    };
    let node_a = ClusterNode::leader(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        Arc::clone(&fx.net),
        node_cfg("node-a"),
        trainer_cfg.clone(),
        ReplayConfig::default(),
        Arc::clone(&store),
        Arc::new(ExperienceSink::default()),
    )
    .unwrap();
    assert_eq!(node_a.term(), 1);

    // A second leader while the first's lease is live is refused...
    let refused = ClusterNode::leader(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        Arc::clone(&fx.net),
        node_cfg("node-b"),
        trainer_cfg.clone(),
        ReplayConfig::default(),
        Arc::clone(&store),
        Arc::new(ExperienceSink::default()),
    );
    let refused = match refused {
        Ok(_) => panic!("a second leader was accepted over a live lease"),
        Err(e) => e,
    };
    assert_eq!(refused.kind(), io::ErrorKind::WouldBlock);

    // ...but once node A stalls past its TTL (it never renews: no
    // poller), a successor claims the next term over the same store.
    std::thread::sleep(Duration::from_millis(80));
    let node_b = ClusterNode::leader(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        Arc::clone(&fx.net),
        node_cfg("node-b"),
        trainer_cfg,
        ReplayConfig::default(),
        Arc::clone(&store),
        Arc::new(ExperienceSink::default()),
    )
    .unwrap();
    assert_eq!(node_b.term(), 2);

    // The deposed node A wakes up and tries to publish: the term fences
    // it — the generation is vetoed, never served, nothing in the store.
    let profile = Engine::PostgresLike.profile();
    let mut oracle = CardinalityOracle::new();
    let svc = node_a.service();
    let outcomes = svc.optimize_stream(&fx.queries);
    for (q, o) in fx.queries.iter().zip(&outcomes) {
        let latency = true_latency(&fx.db, q, &profile, &mut oracle, &o.plan);
        svc.report_outcome(q, o, latency);
    }
    node_a.trainer().request_generation();
    assert!(node_a.trainer().wait_for_generation(1, WAIT));
    assert_eq!(node_a.trainer().persist_failures(), 1, "publish not fenced");
    assert_eq!(node_a.generation(), 0, "fenced generation went live");
    assert_eq!(store.latest_generation().unwrap(), None);

    // The successor trains and publishes under its term; the deposed node
    // adopts it through an ordinary sync — one history, no fork.
    let svc_b = node_b.service();
    let outcomes = svc_b.optimize_stream(&fx.queries);
    for (q, o) in fx.queries.iter().zip(&outcomes) {
        let latency = true_latency(&fx.db, q, &profile, &mut oracle, &o.plan);
        svc_b.report_outcome(q, o, latency);
    }
    node_b.trainer().request_generation();
    assert!(node_b.trainer().wait_for_generation(1, WAIT));
    assert_eq!(node_b.generation(), 1);
    assert_eq!(node_a.sync().unwrap(), Some(1));
    assert_eq!(node_a.served_term(), 2);
}

#[test]
fn dropping_a_node_does_not_stall_on_the_poll_interval() {
    use neo_cluster::{ClusterNode, NodeConfig};
    use neo_learn::ExperienceSink;
    use std::time::Instant;

    let fx = fixture(41);
    let store: Arc<dyn CheckpointStore> = Arc::new(MemCheckpointStore::new());
    let sink = Arc::new(ExperienceSink::default());
    // A pathological interval: with the old bare sleep, construction's
    // first sync could lag a full period and drop would stall for it.
    let mut follower = ClusterNode::candidate(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        Arc::clone(&fx.net),
        NodeConfig {
            name: "slow-poll".into(),
            serve: ServeConfig {
                workers: 1,
                ..Default::default()
            },
            poll_interval_ms: 60_000,
            auto_poll: false,
            ..Default::default()
        },
        TrainerConfig::default(),
        ReplayConfig::default(),
        Arc::clone(&store),
        sink,
    )
    .unwrap();
    follower.start_polling();
    // The eager pre-wait tick means a generation published after
    // construction is adopted without waiting out the interval... for
    // that we'd need a leader; here we just verify drop is prompt.
    let start = Instant::now();
    drop(follower);
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "drop stalled {elapsed:?} on a 60 s poll interval"
    );
}

#[test]
fn mem_and_fs_stores_are_interchangeable_for_a_fleet() {
    let fx = fixture(23);
    let store: Arc<dyn CheckpointStore> = Arc::new(MemCheckpointStore::new());
    let cluster = Cluster::new(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        Arc::clone(&fx.net),
        store,
        ClusterConfig {
            auto_poll: true,
            ..cluster_cfg(2, 23)
        },
    )
    .unwrap();
    let mut oracle = CardinalityOracle::new();
    serve_and_report(&cluster, 0, &fx, &mut oracle);
    cluster.leader().trainer().request_generation();
    assert!(cluster.leader().trainer().wait_for_generation(1, WAIT));
    // The background poller (no explicit sync here) converges the fleet.
    assert!(
        cluster.wait_converged(1, WAIT),
        "poller never adopted generation 1"
    );
    assert_eq!(cluster.node(1).sync_failures(), 0);
}
