//! Fleet invariants (ISSUE 4): generation convergence, cross-node plan
//! byte-equality, corrupt-checkpoint rejection, and warm crash recovery.

use neo::{Featurization, Featurizer, NetConfig, ValueNet};
use neo_cluster::{CheckpointStore, Cluster, ClusterConfig, FsCheckpointStore, MemCheckpointStore};
use neo_engine::{true_latency, CardinalityOracle, Engine};
use neo_learn::{ReplayConfig, TrainerConfig};
use neo_query::{PlanNode, Query};
use neo_serve::ServeConfig;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

/// A unique scratch directory per test, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "neo-cluster-it-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

struct Fixture {
    db: Arc<neo_storage::Database>,
    featurizer: Arc<Featurizer>,
    net: Arc<ValueNet>,
    queries: Vec<Query>,
}

fn fixture(seed: u64) -> Fixture {
    let db = Arc::new(neo_storage::datagen::imdb::generate(0.02, seed));
    let queries: Vec<Query> = neo_query::workload::job::generate(&db, seed)
        .queries
        .into_iter()
        .filter(|q| (4..=6).contains(&q.num_relations()))
        .take(5)
        .collect();
    assert!(queries.len() >= 4, "fixture needs a real workload");
    let featurizer = Arc::new(Featurizer::new(&db, Featurization::Histogram));
    let net = Arc::new(ValueNet::new(
        featurizer.query_dim(),
        featurizer.plan_channels(),
        NetConfig {
            query_layers: vec![32, 16],
            conv_channels: vec![16, 8],
            head_layers: vec![16],
            lr: 5e-3,
            grad_clip: 5.0,
            ignore_structure: false,
        },
        seed,
    ));
    Fixture {
        db,
        featurizer,
        net,
        queries,
    }
}

fn cluster_cfg(nodes: usize, seed: u64) -> ClusterConfig {
    ClusterConfig {
        nodes,
        serve: ServeConfig {
            workers: 2,
            // Seeds off so plan byte-equality holds unconditionally —
            // including for late joiners with no seed history (see
            // `ClusterConfig::serve` docs).
            use_seeds: false,
            search_base_expansions: 12,
            ..Default::default()
        },
        trainer: TrainerConfig {
            epochs_per_generation: 3,
            seed,
            ..Default::default()
        },
        replay: ReplayConfig::default(),
        poll_interval_ms: 5,
        auto_poll: false,
    }
}

/// Serves the workload on `node`, executes chosen plans on the latency
/// model, and reports the observations (with predictions) into the fleet
/// sink.
fn serve_and_report(cluster: &Cluster, node: usize, fx: &Fixture, oracle: &mut CardinalityOracle) {
    let profile = Engine::PostgresLike.profile();
    let svc = cluster.node(node).service();
    let outcomes = svc.optimize_stream(&fx.queries);
    for (q, o) in fx.queries.iter().zip(&outcomes) {
        let latency = true_latency(&fx.db, q, &profile, oracle, &o.plan);
        svc.report_outcome(q, o, latency);
    }
}

/// Every node's plans for the workload, via fresh searches at its current
/// generation.
fn plans_per_node(cluster: &Cluster, fx: &Fixture) -> Vec<Vec<PlanNode>> {
    (0..cluster.len())
        .map(|i| {
            cluster
                .node(i)
                .service()
                .optimize_stream(&fx.queries)
                .into_iter()
                .map(|o| o.plan)
                .collect()
        })
        .collect()
}

#[test]
fn fleet_converges_to_leader_generation_with_identical_plans() {
    let tmp = TempDir::new("converge");
    let fx = fixture(11);
    let store: Arc<dyn CheckpointStore> = Arc::new(FsCheckpointStore::open(tmp.path()).unwrap());
    let cluster = Cluster::new(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        Arc::clone(&fx.net),
        store,
        cluster_cfg(3, 11),
    )
    .unwrap();
    assert_eq!(cluster.generations(), vec![0, 0, 0], "fresh fleet at gen 0");

    let mut oracle = CardinalityOracle::new();
    for round in 0..2u64 {
        // Experience arrives from *every* node (the fingerprint-sharded
        // merge), then the leader trains and publishes.
        for node in 0..cluster.len() {
            serve_and_report(&cluster, node, &fx, &mut oracle);
        }
        cluster.leader().trainer().request_generation();
        assert!(
            cluster
                .leader()
                .trainer()
                .wait_for_generation(round + 1, WAIT),
            "generation {} never completed",
            round + 1
        );
        assert!(
            cluster.wait_converged(round + 1, WAIT),
            "fleet failed to converge to generation {}",
            round + 1
        );
        let generations = cluster.generations();
        assert!(
            generations.iter().all(|&g| g == round + 1),
            "nodes diverged: {generations:?}"
        );
        // The fleet invariant: same generation ⇒ byte-identical plans.
        let plans = plans_per_node(&cluster, &fx);
        for (i, node_plans) in plans.iter().enumerate().skip(1) {
            assert_eq!(
                node_plans,
                &plans[0],
                "node {i} chose different plans than the leader at generation {}",
                round + 1
            );
        }
    }
    assert_eq!(cluster.leader().trainer().persist_failures(), 0);
    assert_eq!(
        cluster.store().latest_generation().unwrap(),
        Some(2),
        "both generations persisted"
    );
}

#[test]
fn restarted_follower_recovers_warm_to_the_manifest_generation() {
    let tmp = TempDir::new("restart");
    let fx = fixture(13);
    let store: Arc<dyn CheckpointStore> = Arc::new(FsCheckpointStore::open(tmp.path()).unwrap());
    let mut cluster = Cluster::new(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        Arc::clone(&fx.net),
        store,
        cluster_cfg(2, 13),
    )
    .unwrap();

    let mut oracle = CardinalityOracle::new();
    for node in 0..cluster.len() {
        serve_and_report(&cluster, node, &fx, &mut oracle);
    }
    for g in 1..=2u64 {
        cluster.leader().trainer().request_generation();
        assert!(cluster.leader().trainer().wait_for_generation(g, WAIT));
    }
    let leader_generation = cluster.leader().generation();
    assert_eq!(leader_generation, 2);
    let trained_before = cluster.leader().trainer().completed_generations();

    // Kill the follower and bring up its replacement from nothing but the
    // shared store.
    cluster.restart_follower(1).unwrap();
    let restarted = cluster.node(1);
    assert_eq!(
        restarted.recovered_generation(),
        Some(leader_generation),
        "restart did not recover from the store"
    );
    assert_eq!(
        restarted.generation(),
        leader_generation,
        "restarted node serves a stale generation"
    );
    // Warm means warm: recovery triggered no retraining anywhere.
    assert_eq!(
        cluster.leader().trainer().completed_generations(),
        trained_before,
        "restart caused a retrain"
    );
    // And the recovered node agrees with the fleet byte-for-byte.
    let plans = plans_per_node(&cluster, &fx);
    assert_eq!(plans[1], plans[0], "recovered node disagrees on plans");
}

#[test]
fn corrupt_checkpoint_is_rejected_and_node_keeps_serving() {
    let tmp = TempDir::new("corrupt-sync");
    let fx = fixture(17);
    let fs_store = Arc::new(FsCheckpointStore::open(tmp.path()).unwrap());
    let store: Arc<dyn CheckpointStore> = Arc::clone(&fs_store) as _;
    let cluster = Cluster::new(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        Arc::clone(&fx.net),
        store,
        cluster_cfg(2, 17),
    )
    .unwrap();

    let mut oracle = CardinalityOracle::new();
    serve_and_report(&cluster, 0, &fx, &mut oracle);
    cluster.leader().trainer().request_generation();
    assert!(cluster.leader().trainer().wait_for_generation(1, WAIT));

    // Corrupt generation 1 on disk (a torn replication, say) before the
    // follower ever fetches it.
    let path = fs_store.checkpoint_path(1);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    let err = cluster.node(1).sync().unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    assert_eq!(
        cluster.node(1).generation(),
        0,
        "corrupt checkpoint must not be adopted"
    );

    // Restore the true bytes: the follower recovers on the next sync.
    let good = cluster.store().load_latest();
    assert!(
        good.is_err(),
        "store-level load also rejects the corruption"
    );
    std::fs::write(
        &path,
        neo::checkpoint::frame(&{
            // Re-derive the payload from the leader's in-memory checkpoint.
            let framed = cluster.leader().trainer().latest_checkpoint().unwrap();
            neo::checkpoint::decode(&framed).unwrap().payload().to_vec()
        }),
    )
    .unwrap();
    assert_eq!(cluster.node(1).sync().unwrap(), Some(1));
    assert_eq!(cluster.node(1).generation(), 1);
}

#[test]
fn a_generation_the_store_rejects_never_goes_live() {
    // A store that accepts nothing: the persist-before-publish contract
    // must keep every generation off the serving path.
    struct BrokenStore;
    impl CheckpointStore for BrokenStore {
        fn publish(&self, _generation: u64, _framed: &[u8]) -> io::Result<()> {
            Err(io::Error::other("disk on fire"))
        }
        fn latest_generation(&self) -> io::Result<Option<u64>> {
            Ok(None)
        }
        fn load(&self, generation: u64) -> io::Result<Vec<u8>> {
            Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("generation {generation} not in store"),
            ))
        }
    }

    let fx = fixture(19);
    let cluster = Cluster::new(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        Arc::clone(&fx.net),
        Arc::new(BrokenStore),
        cluster_cfg(1, 19),
    )
    .unwrap();
    let mut oracle = CardinalityOracle::new();
    serve_and_report(&cluster, 0, &fx, &mut oracle);
    cluster.leader().trainer().request_generation();
    // The generation *runs* (completes) but is vetoed before publishing.
    assert!(cluster.leader().trainer().wait_for_generation(1, WAIT));
    assert_eq!(cluster.leader().generation(), 0, "vetoed generation served");
    assert_eq!(cluster.leader().trainer().persist_failures(), 1);
    assert!(cluster.leader().trainer().latest_checkpoint().is_none());
}

#[test]
fn mem_and_fs_stores_are_interchangeable_for_a_fleet() {
    let fx = fixture(23);
    let store: Arc<dyn CheckpointStore> = Arc::new(MemCheckpointStore::new());
    let cluster = Cluster::new(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        Arc::clone(&fx.net),
        store,
        ClusterConfig {
            auto_poll: true,
            ..cluster_cfg(2, 23)
        },
    )
    .unwrap();
    let mut oracle = CardinalityOracle::new();
    serve_and_report(&cluster, 0, &fx, &mut oracle);
    cluster.leader().trainer().request_generation();
    assert!(cluster.leader().trainer().wait_for_generation(1, WAIT));
    // The background poller (no explicit sync here) converges the fleet.
    assert!(
        cluster.wait_converged(1, WAIT),
        "poller never adopted generation 1"
    );
    assert_eq!(cluster.node(1).sync_failures(), 0);
}
