//! Fleet assembly: one leader plus N−1 followers over a shared store and
//! a shared experience sink.
//!
//! [`Cluster`] is the convenience wiring used by the tests and the
//! `cluster-bench` harness. Real deployments can assemble
//! [`ClusterNode`]s by hand (e.g. nodes in separate processes sharing an
//! [`FsCheckpointStore`](crate::FsCheckpointStore) directory); nothing in
//! the node depends on this struct.

use crate::node::{ClusterNode, NodeConfig};
use crate::store::CheckpointStore;
use neo::{Featurizer, ValueNet};
use neo_learn::{ExperienceSink, ReplayConfig, RetryPolicy, TrainerConfig};
use neo_obs::{EventRing, FleetSnapshot, JsonNode, SamplerConfig, SpanRing, TelemetrySampler};
use neo_serve::{HealthPolicy, HealthSnapshot, HealthState, ServeConfig};
use neo_storage::Database;
use std::io;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Fleet-level configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Total nodes including the leader (≥ 1).
    pub nodes: usize,
    /// Per-node serving configuration.
    ///
    /// Note on `use_seeds`: cross-node plan byte-equality per generation
    /// holds *unconditionally* with seeds off (every post-swap search is
    /// unseeded and search is deterministic per generation). With seeds
    /// on it holds when nodes served the same queries under the same
    /// generation sequence — seeds are then themselves
    /// generation-deterministic — but a node that joined late starts
    /// seedless and may legitimately return a different (never worse
    /// under the current net) plan.
    pub serve: ServeConfig,
    /// Leader trainer configuration.
    pub trainer: TrainerConfig,
    /// Leader replay retention.
    pub replay: ReplayConfig,
    /// Background tick interval (follower manifest polls, leader lease
    /// renewals).
    pub poll_interval_ms: u64,
    /// Spawn the background tick threads at construction (required for
    /// lease renewal and automatic failover).
    pub auto_poll: bool,
    /// Leader-lease TTL, milliseconds (see [`NodeConfig::lease_ttl_ms`]).
    pub lease_ttl_ms: u64,
    /// Make every node a failover candidate: when the leader's lease
    /// expires, one survivor claims the next term and promotes itself,
    /// training over the same shared sink (requires `auto_poll`).
    pub failover: bool,
    /// Store retention: after each publish the leader keeps the manifest
    /// generation plus `keep_last − 1` predecessors and collects the rest
    /// (see [`NodeConfig::retain_generations`]). `None` = unbounded.
    pub retain_generations: Option<usize>,
    /// Per-node retry schedule for tick-path store I/O (see
    /// [`NodeConfig::retry`]).
    pub retry: RetryPolicy,
    /// Per-node health thresholds (see [`NodeConfig::health`]).
    pub health: HealthPolicy,
    /// Shared structured-event ring for the whole fleet (lease
    /// transitions, model adoptions, health changes — every node records
    /// into it under its own name). `None` makes the fleet create its own
    /// ring of [`DEFAULT_EVENT_CAPACITY`] slots; pass a ring to share it
    /// with a chaos store's fault trace.
    pub events: Option<Arc<EventRing>>,
    /// Shared causal span ring for the whole fleet: the leader's trainer
    /// roots one lineage trace per generation (drain → train →
    /// checkpoint → publish → store write) and every follower's adoption
    /// records into the same trace via the manifest's span context.
    /// `None` makes the fleet create its own ring of
    /// [`DEFAULT_SPAN_CAPACITY`] slots.
    pub spans: Option<Arc<SpanRing>>,
}

/// Event-ring slots a fleet allocates when [`ClusterConfig::events`] is
/// `None`.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// Span-ring slots a fleet allocates when [`ClusterConfig::spans`] is
/// `None`.
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 2,
            serve: ServeConfig::default(),
            trainer: TrainerConfig::default(),
            replay: ReplayConfig::default(),
            poll_interval_ms: 20,
            auto_poll: false,
            lease_ttl_ms: 500,
            failover: false,
            retain_generations: None,
            retry: RetryPolicy::default(),
            health: HealthPolicy::default(),
            events: None,
            spans: None,
        }
    }
}

/// A fleet of [`ClusterNode`]s sharing one checkpoint store and one
/// experience sink. Node 0 is the leader.
pub struct Cluster {
    nodes: Vec<ClusterNode>,
    sink: Arc<ExperienceSink>,
    store: Arc<dyn CheckpointStore>,
    /// The fleet-wide structured-event ring every node records into.
    events: Arc<EventRing>,
    /// The fleet-wide causal span ring (generation lineage traces).
    spans: Arc<SpanRing>,
    /// The optional fleet telemetry sampler (one per cluster), started
    /// on demand; watches every node's registry under its node name.
    telemetry: Mutex<Option<Arc<TelemetrySampler>>>,
    // Retained for follower respawns (simulated crash recovery).
    db: Arc<Database>,
    featurizer: Arc<Featurizer>,
    initial_net: Arc<ValueNet>,
    cfg: ClusterConfig,
}

impl Cluster {
    /// Assembles the fleet: every node serves over `cfg.serve` workers and
    /// forwards feedback into one shared sink; the leader trains on the
    /// merged experience and publishes to `store`. All nodes share the
    /// initial network (generation 0) unless the store already holds
    /// generations, in which case every node recovers to its latest.
    pub fn new(
        db: Arc<Database>,
        featurizer: Arc<Featurizer>,
        net: Arc<ValueNet>,
        store: Arc<dyn CheckpointStore>,
        cfg: ClusterConfig,
    ) -> io::Result<Self> {
        assert!(cfg.nodes >= 1, "a fleet needs at least the leader");
        // Resolve the shared event ring once so every node (initial and
        // respawned) records into the same trace.
        let mut cfg = cfg;
        let events = cfg
            .events
            .get_or_insert_with(|| Arc::new(EventRing::new(DEFAULT_EVENT_CAPACITY)))
            .clone();
        let spans = cfg
            .spans
            .get_or_insert_with(|| Arc::new(SpanRing::new(DEFAULT_SPAN_CAPACITY)))
            .clone();
        let sink = Arc::new(ExperienceSink::default());
        let mut nodes = Vec::with_capacity(cfg.nodes);
        nodes.push(ClusterNode::leader(
            Arc::clone(&db),
            Arc::clone(&featurizer),
            Arc::clone(&net),
            Self::node_cfg(&cfg, 0),
            cfg.trainer.clone(),
            cfg.replay,
            Arc::clone(&store),
            Arc::clone(&sink),
        )?);
        for i in 1..cfg.nodes {
            nodes.push(Self::spawn_follower_inner(
                &db,
                &featurizer,
                &net,
                &store,
                &sink,
                &cfg,
                i,
            )?);
        }
        Ok(Cluster {
            nodes,
            sink,
            store,
            events,
            spans,
            telemetry: Mutex::new(None),
            db,
            featurizer,
            initial_net: net,
            cfg,
        })
    }

    /// Uniform per-node config: every node is a candidate when the fleet
    /// runs with failover, so leadership can land anywhere (including
    /// back on a recovered ex-leader). Without failover the constructed
    /// leader gets no tick thread — there are no candidates to renew the
    /// lease against, and a 5 ms store-file poll on the serving node is
    /// pure overhead (it is the follower pollers that need `auto_poll`).
    fn node_cfg(cfg: &ClusterConfig, index: usize) -> NodeConfig {
        NodeConfig {
            name: format!("node-{index}"),
            serve: cfg.serve.clone(),
            poll_interval_ms: cfg.poll_interval_ms,
            auto_poll: cfg.auto_poll && (index != 0 || cfg.failover),
            lease_ttl_ms: cfg.lease_ttl_ms,
            failover: cfg.failover,
            retain_generations: cfg.retain_generations,
            retry: cfg.retry,
            health: cfg.health,
            events: cfg.events.clone(),
            spans: cfg.spans.clone(),
        }
    }

    fn spawn_follower_inner(
        db: &Arc<Database>,
        featurizer: &Arc<Featurizer>,
        net: &Arc<ValueNet>,
        store: &Arc<dyn CheckpointStore>,
        sink: &Arc<ExperienceSink>,
        cfg: &ClusterConfig,
        index: usize,
    ) -> io::Result<ClusterNode> {
        // Candidates carry the fleet's training assets so a promotion
        // trains with the same epochs/batch/seed the constructed leader
        // used.
        ClusterNode::candidate(
            Arc::clone(db),
            Arc::clone(featurizer),
            Arc::clone(net),
            Self::node_cfg(cfg, index),
            cfg.trainer.clone(),
            cfg.replay,
            Arc::clone(store),
            Arc::clone(sink),
        )
    }

    /// Node count (leader included).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the fleet is leader-only.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes; index 0 is the leader.
    pub fn nodes(&self) -> &[ClusterNode] {
        &self.nodes
    }

    /// The constructed leader (node 0). With failover enabled leadership
    /// can move; prefer [`Self::current_leader`] after any kill or lease
    /// churn.
    pub fn leader(&self) -> &ClusterNode {
        &self.nodes[0]
    }

    /// Index of the node currently holding leadership (running the fleet
    /// trainer), if any — `None` mid-failover, between a leader's death
    /// and a candidate's promotion.
    pub fn leader_index(&self) -> Option<usize> {
        self.nodes.iter().position(|n| n.is_leader())
    }

    /// The node currently holding leadership, if any.
    pub fn current_leader(&self) -> Option<&ClusterNode> {
        self.leader_index().map(|i| &self.nodes[i])
    }

    /// Mutable access to a node (0 = the constructed leader) — for
    /// node-lifecycle operations like [`ClusterNode::resign`] or manual
    /// [`ClusterNode::start_polling`].
    pub fn node_mut(&mut self, i: usize) -> &mut ClusterNode {
        &mut self.nodes[i]
    }

    /// Blocks until some node holds leadership (or the timeout passes).
    /// Returns the leader's index. The wait is pure observation — with
    /// failover + auto-poll the candidates promote themselves.
    pub fn wait_for_leader(&self, timeout: Duration) -> Option<usize> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(i) = self.leader_index() {
                return Some(i);
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Kills node `i` outright — drops it with **no replacement**: its
    /// pool, tick thread, trainer, cache, and model die with it, and its
    /// lease (if it led) is *not* released, exactly like a crash. The
    /// remaining nodes shift down one index. With failover enabled a
    /// surviving candidate claims the expired lease and the fleet keeps
    /// training.
    pub fn kill_node(&mut self, i: usize) {
        assert!(
            self.nodes.len() > 1,
            "kill_node: refusing to empty the fleet"
        );
        drop(self.nodes.remove(i));
    }

    /// A node by index (0 = leader).
    pub fn node(&self, i: usize) -> &ClusterNode {
        &self.nodes[i]
    }

    /// The shared experience sink (the leader trains from it).
    pub fn sink(&self) -> &Arc<ExperienceSink> {
        &self.sink
    }

    /// The shared checkpoint store.
    pub fn store(&self) -> &Arc<dyn CheckpointStore> {
        &self.store
    }

    /// The fleet-wide structured-event ring (every node's lease
    /// transitions, model adoptions, and health changes, interleaved in
    /// record order). Share it with a chaos store via
    /// [`ClusterConfig::events`] to interleave the fault trace too.
    pub fn events(&self) -> &Arc<EventRing> {
        &self.events
    }

    /// The fleet-wide causal span ring: one lineage trace per trained
    /// generation, from the leader's sink drain through every follower's
    /// adoption. Share it via [`ClusterConfig::spans`] to interleave
    /// spans from outside the fleet (e.g. a co-located serving path).
    pub fn spans(&self) -> &Arc<SpanRing> {
        &self.spans
    }

    /// Starts the fleet telemetry sampler (or returns the one already
    /// running): every node's metrics registry is watched under its node
    /// name, and `BudgetBurn`/`SloBreach` events land in the shared
    /// fleet ring under the `telemetry` label. Declare SLOs through the
    /// returned handle. Nodes respawned *after* this call are not
    /// auto-watched — restart telemetry (or `watch` them explicitly) if
    /// their series matter.
    pub fn start_telemetry(&self, cfg: SamplerConfig) -> Arc<TelemetrySampler> {
        let mut slot = self
            .telemetry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(sampler) = slot.as_ref() {
            return Arc::clone(sampler);
        }
        let sampler = Arc::new(TelemetrySampler::spawn(cfg));
        for node in &self.nodes {
            sampler.watch(node.name(), Arc::clone(node.service().metrics()));
        }
        sampler.attach_events(Arc::clone(&self.events), "telemetry");
        *slot = Some(Arc::clone(&sampler));
        sampler
    }

    /// The running fleet telemetry sampler, if [`Self::start_telemetry`]
    /// was called.
    pub fn telemetry(&self) -> Option<Arc<TelemetrySampler>> {
        self.telemetry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
            .map(Arc::clone)
    }

    /// Stops and detaches the fleet telemetry sampler (final drain
    /// sample included). A no-op when none is running.
    pub fn stop_telemetry(&self) {
        if let Some(sampler) = self
            .telemetry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
        {
            sampler.stop();
        }
    }

    /// One uniform tree of everything observable about the fleet: a
    /// `nodes` section (per-node role, generation, health, and full
    /// metrics-registry snapshot — serving latencies and cluster counters
    /// alike) plus the `events` trace with its wraparound drop count —
    /// and, when the fleet telemetry sampler is running, the `series`
    /// and `slo` sections its ticks accumulated. Callers `push` extra
    /// sections (store stats, chaos stats) before serializing with
    /// [`FleetSnapshot::to_json`].
    pub fn fleet_snapshot(&self) -> FleetSnapshot {
        let mut snap = FleetSnapshot::new();
        let nodes = self.nodes.iter().map(Self::node_section).collect();
        snap.push("nodes", JsonNode::Arr(nodes));
        snap.push("events", self.events.to_node());
        // An honest trace: a postmortem reading `events` can tell whether
        // it is looking at the whole story or just the retained tail.
        snap.push("events_dropped_total", JsonNode::U64(self.events.dropped()));
        snap.push(
            "events_recorded_total",
            JsonNode::U64(self.events.recorded()),
        );
        snap.push("traces", self.spans.to_node());
        if let Some(sampler) = self.telemetry() {
            snap.push("series", sampler.series_node());
            snap.push("slo", sampler.slo_node());
            snap.push("telemetry_ticks", JsonNode::U64(sampler.ticks()));
        }
        snap
    }

    /// One node's snapshot subtree.
    fn node_section(node: &ClusterNode) -> JsonNode {
        let retry = node.retry_stats();
        let mut retry_node = JsonNode::obj();
        retry_node.push("attempts", JsonNode::U64(retry.attempts));
        retry_node.push("retries", JsonNode::U64(retry.retries));
        retry_node.push("recoveries", JsonNode::U64(retry.recoveries));
        retry_node.push("exhausted", JsonNode::U64(retry.exhausted));
        let mut obj = JsonNode::obj();
        obj.push("name", JsonNode::Str(node.name().to_string()));
        obj.push("leader", JsonNode::Bool(node.is_leader()));
        obj.push("term", JsonNode::U64(node.term()));
        obj.push("generation", JsonNode::U64(node.generation()));
        obj.push("served_term", JsonNode::U64(node.served_term()));
        obj.push("promotions", JsonNode::U64(node.promotions()));
        obj.push("gc_removed", JsonNode::U64(node.gc_removed()));
        obj.push("retry", retry_node);
        obj.push("health", Self::health_section(&node.health()));
        obj.push("metrics", node.service().metrics_snapshot().to_node());
        obj
    }

    /// A [`HealthSnapshot`] as a snapshot subtree.
    fn health_section(h: &HealthSnapshot) -> JsonNode {
        let opt_ms = |v: Option<f64>| match v {
            Some(ms) => JsonNode::f64_rounded(ms, 3),
            None => JsonNode::Null,
        };
        let mut obj = JsonNode::obj();
        obj.push("state", JsonNode::Str(h.state.label().to_string()));
        obj.push(
            "consecutive_failures",
            JsonNode::U64(u64::from(h.consecutive_failures)),
        );
        obj.push("total_failures", JsonNode::U64(h.total_failures));
        obj.push("total_successes", JsonNode::U64(h.total_successes));
        obj.push("transitions", JsonNode::U64(h.transitions));
        obj.push("degraded_entries", JsonNode::U64(h.degraded_entries));
        obj.push("isolated_entries", JsonNode::U64(h.isolated_entries));
        obj.push("recoveries", JsonNode::U64(h.recoveries));
        obj.push("last_transition_ms", opt_ms(h.last_transition_ms));
        obj.push("since_ms", JsonNode::f64_rounded(h.since_ms, 3));
        obj.push("last_recovery_ms", opt_ms(h.last_recovery_ms));
        obj.push(
            "last_error",
            match &h.last_error {
                Some(e) => JsonNode::Str(e.clone()),
                None => JsonNode::Null,
            },
        );
        obj
    }

    /// Every node's currently served generation, node order.
    pub fn generations(&self) -> Vec<u64> {
        self.nodes.iter().map(|n| n.generation()).collect()
    }

    /// Every node's current health state, node order.
    pub fn health_states(&self) -> Vec<HealthState> {
        self.nodes.iter().map(|n| n.health_state()).collect()
    }

    /// Whether every node currently reports `Healthy`.
    pub fn all_healthy(&self) -> bool {
        self.nodes
            .iter()
            .all(|n| n.health_state() == HealthState::Healthy)
    }

    /// One explicit sync on every follower (the leader publishes what it
    /// trains and needs none). Returns the per-node adopted generations.
    pub fn sync_followers(&self) -> io::Result<Vec<Option<u64>>> {
        self.nodes
            .iter()
            .skip(1)
            .map(|n| n.sync())
            .collect::<io::Result<Vec<_>>>()
    }

    /// Blocks until every node serves `generation` (or the timeout
    /// passes); followers without a running poller are synced explicitly.
    /// Returns whether the fleet converged.
    pub fn wait_converged(&self, generation: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.nodes.iter().all(|n| n.generation() >= generation) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            if !self.cfg.auto_poll {
                let _ = self.sync_followers();
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Simulates a follower crash + restart: drops node `i` (its pool,
    /// poller, cache, and model go with it) and rebuilds it from nothing
    /// but the shared store — the new node recovers to the manifest's
    /// generation before serving ([`ClusterNode::recovered_generation`]).
    ///
    /// # Panics
    /// Panics when node `i` currently leads — killing the leader is
    /// [`Self::kill_node`] territory (the lease protocol elects a
    /// successor; a restarted replacement joins as a candidate).
    pub fn restart_follower(&mut self, i: usize) -> io::Result<()> {
        assert!(
            !self.nodes[i].is_leader(),
            "restart_follower: node {i} is the current leader; use kill_node and let \
             the lease protocol fail over"
        );
        // Kill first, then rebuild: the replacement must see only durable
        // store state, and the old node's worker pool should be gone
        // before the new one spawns.
        drop(self.nodes.remove(i));
        let node = Self::spawn_follower_inner(
            &self.db,
            &self.featurizer,
            &self.initial_net,
            &self.store,
            &self.sink,
            &self.cfg,
            i,
        )?;
        self.nodes.insert(i, node);
        Ok(())
    }
}
