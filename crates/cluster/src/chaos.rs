//! Deterministic store fault injection: a [`CheckpointStore`] decorator
//! that turns any cluster test into a reproducible fault storm.
//!
//! [`FaultInjectingStore`] wraps an inner store and, before delegating
//! each operation, consults a **seeded, per-operation-class schedule**:
//! every class (publish / load / manifest / lease) draws from its own
//! `StdRng` stream seeded from `seed ^ class`, so the fault sequence a
//! given operation sees depends only on the seed and how many operations
//! of *its class* ran before it — not on thread interleaving across
//! classes. Same seed + same per-class op sequence ⇒ byte-identical
//! fault schedule (pinned by a test in `tests/chaos.rs`).
//!
//! What it injects:
//!
//! * **transient `io::Error`s** (`ErrorKind::Interrupted`) per class at
//!   [`ChaosConfig::fault_rate`] — always *fail-before*: the inner store
//!   is untouched, so a retried operation is safe to re-issue;
//! * **injected latency** ([`ChaosConfig::latency_rate`] /
//!   [`ChaosConfig::latency_ms`]) — slow I/O without failure;
//! * **corrupt loads** ([`ChaosConfig::corrupt_load_rate`]): `load`
//!   returns a torn prefix of the real frame — the caller's checksum
//!   verification must reject it (exercising "no corrupt checkpoint is
//!   ever adopted" end to end);
//! * **crash-before-rename** ([`ChaosConfig::crash_publish_rate`], over
//!   a filesystem store): a faulted publish also leaves a half-written
//!   `gen-N.ckpt.tmp` behind, exactly the litter a publisher crashing
//!   between tmp write and rename orphans;
//! * **torn `LEADER` writes** ([`ChaosConfig::torn_lease_rate`], over a
//!   filesystem store): a faulted lease acquisition also truncates the
//!   on-disk lease file mid-line — the hardened
//!   [`CheckpointStore::read_lease`] must parse it as expired/absent
//!   (claimable) instead of error-looping every candidate;
//! * **outages** ([`FaultInjectingStore::set_outage`]): a runtime toggle
//!   that fails every operation until lifted — the "store is down longer
//!   than the lease TTL" scenario the failover protocol must survive.
//!
//! Everything injected is counted in [`ChaosStats`], so a bench can
//! report exactly what storm the fleet rode out.

use crate::store::{CheckpointStore, LeaderLease, Manifest, LEASE_NAME};
use neo_obs::{EventKind, EventRing};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// The fault classes a store operation can belong to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpClass {
    /// `publish*` and `retain` (store mutations by the leader).
    Publish,
    /// `load` / `load_latest` checkpoint fetches.
    Load,
    /// `manifest` / `latest_generation` reads.
    Manifest,
    /// `read_lease` / `try_acquire_lease` / `release_lease`.
    Lease,
}

impl OpClass {
    /// All classes, in [`ChaosStats`] array order.
    pub const ALL: [OpClass; 4] = [
        OpClass::Publish,
        OpClass::Load,
        OpClass::Manifest,
        OpClass::Lease,
    ];

    /// This class's position in [`ChaosStats`] arrays.
    pub fn index(self) -> usize {
        match self {
            OpClass::Publish => 0,
            OpClass::Load => 1,
            OpClass::Manifest => 2,
            OpClass::Lease => 3,
        }
    }

    /// Stable per-class seed tag (xored into the schedule seed).
    fn seed_tag(self) -> u64 {
        // Distinct odd constants so class streams never collide even
        // under adversarial seeds.
        [
            0x9E37_79B9_7F4A_7C15,
            0xC2B2_AE3D_27D4_EB4F,
            0x1656_67B1_9E37_79F9,
            0x27D4_EB2F_1656_67C5,
        ][self.index()]
    }

    /// Lowercase label, used in injected error messages and stats JSON.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Publish => "publish",
            OpClass::Load => "load",
            OpClass::Manifest => "manifest",
            OpClass::Lease => "lease",
        }
    }
}

/// The seeded fault schedule.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Seed of the deterministic schedule (per-class streams derive from
    /// it).
    pub seed: u64,
    /// Probability that any operation fails with a transient
    /// `Interrupted` error (inner store untouched).
    pub fault_rate: f64,
    /// Probability that a `load` returns a torn prefix of the real frame
    /// instead of failing cleanly (checksum verification at the caller
    /// must catch it). Drawn independently of `fault_rate`.
    pub corrupt_load_rate: f64,
    /// Given a faulted lease acquisition over a filesystem store: the
    /// probability the fault also tears the on-disk `LEADER` file
    /// (truncated mid-line, simulating a torn write).
    pub torn_lease_rate: f64,
    /// Given a faulted publish over a filesystem store: the probability
    /// the fault also leaves `gen-N.ckpt.tmp` litter (a publisher that
    /// crashed between tmp write and rename).
    pub crash_publish_rate: f64,
    /// Probability an operation is delayed by [`Self::latency_ms`]
    /// before running normally.
    pub latency_rate: f64,
    /// Injected delay, milliseconds.
    pub latency_ms: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC0FF_EE00,
            fault_rate: 0.1,
            corrupt_load_rate: 0.05,
            torn_lease_rate: 0.0,
            crash_publish_rate: 0.25,
            latency_rate: 0.05,
            latency_ms: 1,
        }
    }
}

impl ChaosConfig {
    /// A schedule that injects nothing (pass-through decorator).
    pub fn quiet(seed: u64) -> Self {
        ChaosConfig {
            seed,
            fault_rate: 0.0,
            corrupt_load_rate: 0.0,
            torn_lease_rate: 0.0,
            crash_publish_rate: 0.0,
            latency_rate: 0.0,
            latency_ms: 0,
        }
    }
}

/// Per-class and aggregate injection counters (atomics; clone-free
/// snapshot via [`FaultInjectingStore::stats`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Operations intercepted per class (faulted or not), class order
    /// publish/load/manifest/lease.
    pub ops: [u64; 4],
    /// Transient faults injected per class (outage faults excluded).
    pub faults: [u64; 4],
    /// Loads answered with torn frame bytes.
    pub corrupt_loads: u64,
    /// Faulted publishes that also left `.ckpt.tmp` crash litter.
    pub crash_publishes: u64,
    /// Faulted lease writes that also tore the on-disk `LEADER` file.
    pub torn_leases: u64,
    /// Operations delayed by injected latency.
    pub delays: u64,
    /// Operations failed because an outage was active.
    pub outage_faults: u64,
}

impl ChaosStats {
    /// Total transient faults injected across classes (outages excluded).
    pub fn total_faults(&self) -> u64 {
        self.faults.iter().sum()
    }

    /// Total operations intercepted.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().sum()
    }
}

#[derive(Default)]
struct StatCells {
    ops: [AtomicU64; 4],
    faults: [AtomicU64; 4],
    corrupt_loads: AtomicU64,
    crash_publishes: AtomicU64,
    torn_leases: AtomicU64,
    delays: AtomicU64,
    outage_faults: AtomicU64,
}

/// What the schedule decided for one operation.
struct Verdict {
    delay_ms: u64,
    fault: Option<u64>,
    /// Secondary draw for class-specific damage (torn lease / crash
    /// litter / corrupt load), pre-drawn so the decision is part of the
    /// deterministic schedule even when unused.
    side_effect: bool,
}

/// A [`CheckpointStore`] decorator injecting a deterministic fault
/// schedule. See the module docs for the fault catalogue.
pub struct FaultInjectingStore {
    inner: Arc<dyn CheckpointStore>,
    cfg: ChaosConfig,
    /// Store directory, when the inner store lives on a filesystem —
    /// enables the on-disk damage modes (torn `LEADER`, crash litter).
    dir: Option<PathBuf>,
    /// One independent RNG stream per operation class.
    rngs: [Mutex<StdRng>; 4],
    outage: AtomicBool,
    paused: AtomicBool,
    stats: StatCells,
    /// Optional trace sink: injected faults and outage edges become
    /// structured [`EventRing`] events (see [`Self::attach_events`]).
    events: Mutex<Option<(Arc<EventRing>, String)>>,
}

impl FaultInjectingStore {
    /// Wraps `inner` under `cfg`. On-disk damage modes (torn lease,
    /// crash litter) stay off — use [`Self::over_fs`] for those.
    pub fn new(inner: Arc<dyn CheckpointStore>, cfg: ChaosConfig) -> Self {
        Self::build(inner, cfg, None)
    }

    /// Wraps a filesystem store, enabling the on-disk damage modes
    /// (torn `LEADER` writes, crash-before-rename `.ckpt.tmp` litter)
    /// in `dir`.
    pub fn over_fs(inner: Arc<crate::store::FsCheckpointStore>, cfg: ChaosConfig) -> Self {
        let dir = inner.dir().to_path_buf();
        Self::build(inner, cfg, Some(dir))
    }

    fn build(inner: Arc<dyn CheckpointStore>, cfg: ChaosConfig, dir: Option<PathBuf>) -> Self {
        let seeded =
            |class: OpClass| Mutex::new(StdRng::seed_from_u64(cfg.seed ^ class.seed_tag()));
        FaultInjectingStore {
            inner,
            cfg,
            dir,
            rngs: [
                seeded(OpClass::Publish),
                seeded(OpClass::Load),
                seeded(OpClass::Manifest),
                seeded(OpClass::Lease),
            ],
            outage: AtomicBool::new(false),
            paused: AtomicBool::new(false),
            stats: StatCells::default(),
            events: Mutex::new(None),
        }
    }

    /// Attaches a trace sink: from now on injected transient faults
    /// record [`EventKind::ChaosFault`] events and [`Self::set_outage`]
    /// edges record [`EventKind::Outage`] events, labelled `source`.
    pub fn attach_events(&self, ring: Arc<EventRing>, source: &str) {
        *self.events.lock().unwrap_or_else(PoisonError::into_inner) =
            Some((ring, source.to_string()));
    }

    fn emit(&self, kind: EventKind, detail: String) {
        let guard = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some((ring, source)) = guard.as_ref() {
            ring.record(source, kind, detail);
        }
    }

    /// Pauses/resumes the schedule entirely: while paused the decorator is
    /// transparent — no faults, no latency, no outage, no op counting, and
    /// **no schedule draws consumed** (determinism therefore covers the
    /// unpaused op sequence only). Lets a harness assemble a fleet over
    /// the wrapped store and then start the storm on a running system.
    pub fn set_paused(&self, on: bool) {
        self.paused.store(on, Ordering::Release);
    }

    /// Starts/stops a total outage: while active, every operation fails
    /// (`ErrorKind::Interrupted`) without touching the inner store —
    /// the "store unreachable longer than the lease TTL" scenario.
    pub fn set_outage(&self, on: bool) {
        let was = self.outage.swap(on, Ordering::AcqRel);
        if was != on {
            self.emit(
                EventKind::Outage,
                if on { "start" } else { "end" }.to_string(),
            );
        }
    }

    /// Whether an outage is currently active.
    pub fn outage(&self) -> bool {
        self.outage.load(Ordering::Acquire)
    }

    /// Snapshot of everything injected so far.
    pub fn stats(&self) -> ChaosStats {
        let load = |cells: &[AtomicU64; 4]| {
            let mut out = [0u64; 4];
            for (o, c) in out.iter_mut().zip(cells) {
                *o = c.load(Ordering::Relaxed);
            }
            out
        };
        ChaosStats {
            ops: load(&self.stats.ops),
            faults: load(&self.stats.faults),
            corrupt_loads: self.stats.corrupt_loads.load(Ordering::Relaxed),
            crash_publishes: self.stats.crash_publishes.load(Ordering::Relaxed),
            torn_leases: self.stats.torn_leases.load(Ordering::Relaxed),
            delays: self.stats.delays.load(Ordering::Relaxed),
            outage_faults: self.stats.outage_faults.load(Ordering::Relaxed),
        }
    }

    /// The schedule: pre-draws every decision for one operation from the
    /// class stream (fixed draw count per op, so the stream position —
    /// and therefore the schedule — depends only on the class op count).
    fn schedule(&self, class: OpClass) -> Verdict {
        let mut rng = self.rngs[class.index()]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let delay = rng.gen_bool(self.cfg.latency_rate.clamp(0.0, 1.0));
        let fault = rng.gen_bool(self.cfg.fault_rate.clamp(0.0, 1.0));
        let side_rate = match class {
            OpClass::Publish => self.cfg.crash_publish_rate,
            OpClass::Load => self.cfg.corrupt_load_rate,
            OpClass::Lease => self.cfg.torn_lease_rate,
            OpClass::Manifest => 0.0,
        };
        let side_effect = rng.gen_bool(side_rate.clamp(0.0, 1.0));
        Verdict {
            delay_ms: if delay { self.cfg.latency_ms } else { 0 },
            fault: fault.then(|| self.stats.faults[class.index()].load(Ordering::Relaxed) + 1),
            side_effect,
        }
    }

    /// The per-operation gate: counts the op, applies the outage, the
    /// injected delay, and the scheduled transient fault. `Ok(verdict)`
    /// means "proceed to the inner store" (side-effect draw included for
    /// class-specific handling).
    fn intercept(&self, class: OpClass) -> io::Result<Verdict> {
        if self.paused.load(Ordering::Acquire) {
            return Ok(Verdict {
                delay_ms: 0,
                fault: None,
                side_effect: false,
            });
        }
        self.stats.ops[class.index()].fetch_add(1, Ordering::Relaxed);
        if self.outage.load(Ordering::Acquire) {
            self.stats.outage_faults.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("chaos: injected outage ({} unavailable)", class.label()),
            ));
        }
        let verdict = self.schedule(class);
        if verdict.delay_ms > 0 {
            self.stats.delays.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(std::time::Duration::from_millis(verdict.delay_ms));
        }
        Ok(verdict)
    }

    fn fault_error(&self, class: OpClass, n: u64) -> io::Error {
        self.stats.faults[class.index()].fetch_add(1, Ordering::Relaxed);
        self.emit(
            EventKind::ChaosFault,
            format!("transient {} fault #{n}", class.label()),
        );
        io::Error::new(
            io::ErrorKind::Interrupted,
            format!("chaos: injected transient {} fault #{n}", class.label()),
        )
    }

    /// Leaves the crash-before-rename litter of a publish that died
    /// between tmp write and rename: a half-written checkpoint tmp.
    fn drop_crash_litter(&self, generation: u64, framed: &[u8]) {
        if let Some(dir) = &self.dir {
            let tmp = dir.join(format!("gen-{generation:06}.ckpt.tmp"));
            let torn = &framed[..framed.len() / 2];
            if std::fs::write(tmp, torn).is_ok() {
                self.stats.crash_publishes.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Tears the on-disk `LEADER` file mid-line, as a torn write would:
    /// the content is truncated, not atomic-renamed, so readers see a
    /// partial lease. Only the *expiry* line is torn (header, holder,
    /// and term survive) — a real torn write tears at an arbitrary
    /// offset, but tearing the term line would reset the fencing
    /// sequence, which is a different (and store-breaking) corruption
    /// class than the torn-write-during-renewal this simulates.
    fn tear_lease_file(&self) {
        let Some(dir) = &self.dir else { return };
        let path = dir.join(LEASE_NAME);
        let Ok(text) = std::fs::read_to_string(&path) else {
            return;
        };
        let Some(cut) = text.find("expires_at_ms=") else {
            return;
        };
        // Keep "expires_at_ms" with no '=' digits: an unparseable,
        // half-written line.
        let torn = &text[..cut + "expires_at_ms".len()];
        if std::fs::write(&path, torn).is_ok() {
            self.stats.torn_leases.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn publish_gate(&self, generation: u64, framed: &[u8]) -> io::Result<()> {
        let verdict = self.intercept(OpClass::Publish)?;
        if let Some(n) = verdict.fault {
            if verdict.side_effect {
                self.drop_crash_litter(generation, framed);
            }
            return Err(self.fault_error(OpClass::Publish, n));
        }
        Ok(())
    }
}

impl CheckpointStore for FaultInjectingStore {
    fn publish_term(&self, generation: u64, term: u64, framed: &[u8]) -> io::Result<()> {
        self.publish_gate(generation, framed)?;
        self.inner.publish_term(generation, term, framed)
    }

    fn publish_fenced(&self, generation: u64, term: u64, framed: &[u8]) -> io::Result<()> {
        self.publish_gate(generation, framed)?;
        self.inner.publish_fenced(generation, term, framed)
    }

    fn publish_fenced_traced(
        &self,
        generation: u64,
        term: u64,
        framed: &[u8],
        trace: Option<neo_obs::SpanContext>,
    ) -> io::Result<()> {
        // Same gate as every publish; the lineage context rides through
        // to the inner store untouched.
        self.publish_gate(generation, framed)?;
        self.inner
            .publish_fenced_traced(generation, term, framed, trace)
    }

    fn manifest(&self) -> io::Result<Option<Manifest>> {
        let verdict = self.intercept(OpClass::Manifest)?;
        if let Some(n) = verdict.fault {
            return Err(self.fault_error(OpClass::Manifest, n));
        }
        self.inner.manifest()
    }

    fn load(&self, generation: u64) -> io::Result<Vec<u8>> {
        let verdict = self.intercept(OpClass::Load)?;
        if let Some(n) = verdict.fault {
            return Err(self.fault_error(OpClass::Load, n));
        }
        let bytes = self.inner.load(generation)?;
        if verdict.side_effect && bytes.len() > 1 {
            // A torn frame: the caller's checksum verification must
            // reject it — this is the "no corrupt checkpoint is ever
            // adopted" path, exercised end to end.
            self.stats.corrupt_loads.fetch_add(1, Ordering::Relaxed);
            return Ok(bytes[..bytes.len() / 2].to_vec());
        }
        Ok(bytes)
    }

    fn read_lease(&self) -> io::Result<Option<LeaderLease>> {
        let verdict = self.intercept(OpClass::Lease)?;
        if let Some(n) = verdict.fault {
            return Err(self.fault_error(OpClass::Lease, n));
        }
        self.inner.read_lease()
    }

    fn try_acquire_lease(
        &self,
        holder: &str,
        now_ms: u64,
        ttl_ms: u64,
    ) -> io::Result<Option<LeaderLease>> {
        let verdict = self.intercept(OpClass::Lease)?;
        if let Some(n) = verdict.fault {
            if verdict.side_effect {
                self.tear_lease_file();
            }
            return Err(self.fault_error(OpClass::Lease, n));
        }
        self.inner.try_acquire_lease(holder, now_ms, ttl_ms)
    }

    fn release_lease(&self, holder: &str) -> io::Result<bool> {
        let verdict = self.intercept(OpClass::Lease)?;
        if let Some(n) = verdict.fault {
            return Err(self.fault_error(OpClass::Lease, n));
        }
        self.inner.release_lease(holder)
    }

    fn retain(&self, keep_last: usize) -> io::Result<usize> {
        let verdict = self.intercept(OpClass::Publish)?;
        if let Some(n) = verdict.fault {
            return Err(self.fault_error(OpClass::Publish, n));
        }
        self.inner.retain(keep_last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemCheckpointStore;

    fn framed(tag: u8) -> Vec<u8> {
        neo::checkpoint::frame(&[tag; 32])
    }

    fn chaotic(cfg: ChaosConfig) -> FaultInjectingStore {
        FaultInjectingStore::new(Arc::new(MemCheckpointStore::new()), cfg)
    }

    #[test]
    fn quiet_schedule_is_a_transparent_decorator() {
        let store = chaotic(ChaosConfig::quiet(1));
        store.publish(1, &framed(1)).unwrap();
        assert_eq!(store.load(1).unwrap(), framed(1));
        assert_eq!(store.latest_generation().unwrap(), Some(1));
        let stats = store.stats();
        assert_eq!(stats.total_faults(), 0);
        assert!(stats.total_ops() >= 3);
    }

    #[test]
    fn faults_are_fail_before_and_transient() {
        let store = chaotic(ChaosConfig {
            seed: 42,
            fault_rate: 0.5,
            corrupt_load_rate: 0.0,
            ..ChaosConfig::quiet(42)
        });
        // Publish until one lands; every failure must leave the inner
        // store untouched (strictly monotone history, no gaps adopted).
        let mut published = 0u64;
        for _ in 0..64 {
            match store.publish(published + 1, &framed((published + 1) as u8)) {
                Ok(()) => published += 1,
                Err(e) => assert_eq!(e.kind(), io::ErrorKind::Interrupted, "{e}"),
            }
        }
        assert!(published > 0, "0.5 fault rate blocked 64 publishes");
        assert_eq!(store.inner.latest_generation().unwrap(), Some(published));
        let stats = store.stats();
        assert!(stats.faults[OpClass::Publish.index()] > 0);
    }

    #[test]
    fn corrupt_loads_are_rejected_by_frame_verification() {
        let store = chaotic(ChaosConfig {
            seed: 7,
            corrupt_load_rate: 1.0,
            ..ChaosConfig::quiet(7)
        });
        store.publish(1, &framed(9)).unwrap();
        let torn = store.load(1).unwrap();
        assert!(torn.len() < framed(9).len());
        let err = neo::checkpoint::decode(&torn).expect_err("torn frame must not decode");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert_eq!(store.stats().corrupt_loads, 1);
    }

    #[test]
    fn outage_fails_everything_until_lifted() {
        let store = chaotic(ChaosConfig::quiet(3));
        store.publish(1, &framed(1)).unwrap();
        store.set_outage(true);
        assert!(store.manifest().is_err());
        assert!(store.load(1).is_err());
        assert!(store.try_acquire_lease("a", 0, 100).is_err());
        store.set_outage(false);
        assert_eq!(store.load(1).unwrap(), framed(1));
        assert_eq!(store.stats().outage_faults, 3);
    }

    #[test]
    fn same_seed_same_op_sequence_same_schedule() {
        let run = || -> (Vec<String>, ChaosStats) {
            let store = chaotic(ChaosConfig {
                seed: 99,
                fault_rate: 0.3,
                corrupt_load_rate: 0.2,
                ..ChaosConfig::quiet(99)
            });
            let mut log = Vec::new();
            let mut next = 1u64;
            for _ in 0..40 {
                match store.publish(next, &framed(next as u8)) {
                    Ok(()) => {
                        log.push(format!("publish {next} ok"));
                        next += 1;
                    }
                    Err(e) => log.push(format!("publish {next} err {}", e.kind())),
                }
                log.push(format!("{:?}", store.manifest().map_err(|e| e.kind())));
                if next > 1 {
                    log.push(format!(
                        "{:?}",
                        store.load(next - 1).map_err(|e| e.kind()).map(|b| b.len())
                    ));
                }
            }
            (log, store.stats())
        };
        let (log_a, stats_a) = run();
        let (log_b, stats_b) = run();
        assert_eq!(log_a, log_b, "schedule not deterministic");
        assert_eq!(stats_a, stats_b);
        assert!(
            stats_a.total_faults() > 0,
            "storm too quiet to prove anything"
        );
    }

    #[test]
    fn outage_edges_and_faults_become_ring_events() {
        let store = chaotic(ChaosConfig {
            seed: 13,
            fault_rate: 1.0,
            ..ChaosConfig::quiet(13)
        });
        let ring = Arc::new(EventRing::new(64));
        store.attach_events(Arc::clone(&ring), "store-0");
        store.set_outage(true);
        store.set_outage(true); // no edge: already on, must not re-emit
        store.set_outage(false);
        let _ = store.manifest(); // fault_rate 1.0: guaranteed ChaosFault
        let events = ring.snapshot();
        let kinds: Vec<_> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::Outage, EventKind::Outage, EventKind::ChaosFault]
        );
        assert_eq!(events[0].detail, "start");
        assert_eq!(events[1].detail, "end");
        assert!(events.iter().all(|e| e.node == "store-0"));
    }

    #[test]
    fn class_streams_are_independent_of_cross_class_interleaving() {
        let faults_seen = |interleave: bool| -> [u64; 4] {
            let store = chaotic(ChaosConfig {
                seed: 5,
                fault_rate: 0.4,
                ..ChaosConfig::quiet(5)
            });
            for i in 0..30 {
                let _ = store.manifest();
                if interleave {
                    // Extra lease traffic between manifest reads must not
                    // shift the manifest class's fault schedule.
                    let _ = store.read_lease();
                    let _ = store.try_acquire_lease("x", i, 10);
                }
            }
            store.stats().faults
        };
        assert_eq!(
            faults_seen(false)[OpClass::Manifest.index()],
            faults_seen(true)[OpClass::Manifest.index()]
        );
    }
}
