//! The shared checkpoint store: how model generations travel between
//! nodes (and survive them).
//!
//! The fleet's single source of truth is a tiny content-addressed-by-
//! generation store: the leader publishes each trained generation as a
//! framed checkpoint (`neo::checkpoint`: magic + version + length +
//! checksum) plus a `MANIFEST` naming the latest generation; followers
//! poll the manifest and fetch what they're missing. Everything a node
//! needs to serve the fleet's current model is in the store — which is
//! exactly what makes a killed-and-restarted node recover warm.
//!
//! [`FsCheckpointStore`] is the filesystem implementation with **atomic
//! publish**: the checkpoint is written to `gen-N.ckpt.tmp`, fsynced, and
//! renamed to `gen-N.ckpt`; only then is the manifest rewritten the same
//! way (`MANIFEST.tmp` → fsync → rename). A reader therefore never
//! observes a manifest pointing at a missing or half-written generation:
//! either the rename happened (and the fsynced checkpoint is fully
//! there) or the old manifest still points at the previous generation.
//! A torn or bit-rotted checkpoint file that slips through anyway (e.g.
//! a copy truncated in transit) is caught by the frame's length+checksum
//! header at [`CheckpointStore::load`] time and rejected with a clean
//! error instead of being deserialized into garbage weights.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// First line of a valid `MANIFEST` file.
pub const MANIFEST_HEADER: &str = "neo-cluster-manifest v1";

/// Filename of the manifest inside a store directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// Where the fleet's model generations live. Implementations must be
/// safe to share across nodes/threads; `publish` is only ever called by
/// the fleet leader (single writer), `latest_generation`/`load` by
/// everyone.
pub trait CheckpointStore: Send + Sync {
    /// Durably publishes `framed` (a `neo::checkpoint` frame) as
    /// generation `generation` and advances the manifest to it.
    /// Generations must advance strictly monotonically; re-publishing an
    /// old or current generation is an error (the leader is the only
    /// minter of generation numbers).
    fn publish(&self, generation: u64, framed: &[u8]) -> io::Result<()>;

    /// The latest published generation per the manifest, `None` for an
    /// empty (never-published) store.
    fn latest_generation(&self) -> io::Result<Option<u64>>;

    /// Loads the framed checkpoint of `generation`, verifying its
    /// integrity header. Torn, corrupt, or headerless bytes are rejected
    /// with [`io::ErrorKind::InvalidData`].
    fn load(&self, generation: u64) -> io::Result<Vec<u8>>;

    /// Loads the latest generation (manifest read + fetch), `None` for an
    /// empty store.
    fn load_latest(&self) -> io::Result<Option<(u64, Vec<u8>)>> {
        match self.latest_generation()? {
            Some(g) => Ok(Some((g, self.load(g)?))),
            None => Ok(None),
        }
    }
}

/// Verifies that `framed` is a complete, checksum-valid checkpoint frame.
fn verify_frame(framed: &[u8], context: &str) -> io::Result<()> {
    let decoded = neo::checkpoint::decode(framed)
        .map_err(|e| io::Error::new(e.kind(), format!("{context}: {e}")))?;
    if !decoded.verified() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{context}: headerless bytes (the store holds framed checkpoints only)"),
        ));
    }
    Ok(())
}

fn regression_error(generation: u64, latest: u64) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        format!(
            "generation regression: publishing {generation} over already-published {latest} \
             (generations are minted monotonically by the leader)"
        ),
    )
}

// ---------------------------------------------------------------------------
// Filesystem implementation
// ---------------------------------------------------------------------------

/// A directory of `gen-N.ckpt` files plus a `MANIFEST`, published
/// atomically (tmp + fsync + rename). Suitable for any shared filesystem
/// visible to all nodes.
pub struct FsCheckpointStore {
    dir: PathBuf,
}

impl FsCheckpointStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FsCheckpointStore { dir })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of a generation's checkpoint file.
    pub fn checkpoint_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("gen-{generation:06}.ckpt"))
    }

    /// Best-effort directory fsync, so the renames themselves are durable
    /// (ignored on filesystems that reject directory handles).
    fn sync_dir(&self) {
        if let Ok(d) = std::fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
    }

    /// Writes `bytes` to `<name>.tmp`, fsyncs, and renames onto `name` —
    /// the atomic-publish step used for both checkpoints and the
    /// manifest.
    fn write_atomic(&self, name: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = name.with_extension(match name.extension() {
            Some(e) => format!("{}.tmp", e.to_string_lossy()),
            None => "tmp".to_string(),
        });
        {
            let mut f = std::fs::File::create(&tmp)?;
            io::Write::write_all(&mut f, bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, name)?;
        self.sync_dir();
        Ok(())
    }
}

impl CheckpointStore for FsCheckpointStore {
    fn publish(&self, generation: u64, framed: &[u8]) -> io::Result<()> {
        verify_frame(framed, "refusing to publish invalid checkpoint")?;
        if let Some(latest) = self.latest_generation()? {
            if generation <= latest {
                return Err(regression_error(generation, latest));
            }
        }
        // Checkpoint first, manifest second: a crash between the two
        // leaves a reachable store whose manifest still names the previous
        // (fully published) generation.
        self.write_atomic(&self.checkpoint_path(generation), framed)?;
        let manifest = format!("{MANIFEST_HEADER}\nlatest={generation}\n");
        self.write_atomic(&self.dir.join(MANIFEST_NAME), manifest.as_bytes())
    }

    fn latest_generation(&self) -> io::Result<Option<u64>> {
        let text = match std::fs::read_to_string(self.dir.join(MANIFEST_NAME)) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let mut lines = text.lines();
        if lines.next() != Some(MANIFEST_HEADER) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed manifest: missing '{MANIFEST_HEADER}' header"),
            ));
        }
        let latest = lines
            .next()
            .and_then(|l| l.strip_prefix("latest="))
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    "malformed manifest: missing 'latest=<generation>' line",
                )
            })?;
        Ok(Some(latest))
    }

    fn load(&self, generation: u64) -> io::Result<Vec<u8>> {
        let path = self.checkpoint_path(generation);
        let bytes = std::fs::read(&path).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!(
                    "checkpoint for generation {generation} ({}): {e}",
                    path.display()
                ),
            )
        })?;
        verify_frame(
            &bytes,
            &format!(
                "checkpoint for generation {generation} ({})",
                path.display()
            ),
        )?;
        Ok(bytes)
    }
}

// ---------------------------------------------------------------------------
// In-memory implementation
// ---------------------------------------------------------------------------

/// An in-process store (one `Mutex<BTreeMap>`), for tests and
/// single-process fleets. Frames are verified with the same rules as the
/// filesystem store so the two are interchangeable in tests.
#[derive(Default)]
pub struct MemCheckpointStore {
    generations: Mutex<BTreeMap<u64, Vec<u8>>>,
}

impl MemCheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CheckpointStore for MemCheckpointStore {
    fn publish(&self, generation: u64, framed: &[u8]) -> io::Result<()> {
        verify_frame(framed, "refusing to publish invalid checkpoint")?;
        let mut map = self.generations.lock().expect("store poisoned");
        if let Some((&latest, _)) = map.last_key_value() {
            if generation <= latest {
                return Err(regression_error(generation, latest));
            }
        }
        map.insert(generation, framed.to_vec());
        Ok(())
    }

    fn latest_generation(&self) -> io::Result<Option<u64>> {
        Ok(self
            .generations
            .lock()
            .expect("store poisoned")
            .last_key_value()
            .map(|(&g, _)| g))
    }

    fn load(&self, generation: u64) -> io::Result<Vec<u8>> {
        let map = self.generations.lock().expect("store poisoned");
        let bytes = map.get(&generation).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("generation {generation} not in store"),
            )
        })?;
        verify_frame(bytes, &format!("checkpoint for generation {generation}"))?;
        Ok(bytes.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique scratch directory per test invocation, removed on drop.
    pub(crate) struct TempDir(PathBuf);

    impl TempDir {
        pub(crate) fn new(tag: &str) -> Self {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "neo-cluster-{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }

        pub(crate) fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn framed(tag: u8) -> Vec<u8> {
        neo::checkpoint::frame(&[tag; 32])
    }

    fn stores(tmp: &TempDir) -> Vec<Box<dyn CheckpointStore>> {
        vec![
            Box::new(FsCheckpointStore::open(tmp.path()).unwrap()),
            Box::new(MemCheckpointStore::new()),
        ]
    }

    #[test]
    fn publish_load_roundtrip_and_manifest_advance() {
        let tmp = TempDir::new("roundtrip");
        for store in stores(&tmp) {
            assert_eq!(store.latest_generation().unwrap(), None);
            assert!(store.load_latest().unwrap().is_none());
            store.publish(1, &framed(1)).unwrap();
            store.publish(2, &framed(2)).unwrap();
            assert_eq!(store.latest_generation().unwrap(), Some(2));
            assert_eq!(store.load(1).unwrap(), framed(1));
            let (g, bytes) = store.load_latest().unwrap().unwrap();
            assert_eq!((g, bytes), (2, framed(2)));
        }
    }

    #[test]
    fn generation_regression_is_rejected() {
        let tmp = TempDir::new("regression");
        for store in stores(&tmp) {
            store.publish(3, &framed(3)).unwrap();
            for stale in [3, 2] {
                let err = store.publish(stale, &framed(9)).unwrap_err();
                assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "gen {stale}");
            }
            // The store still serves generation 3 untouched.
            assert_eq!(store.load(3).unwrap(), framed(3));
        }
    }

    #[test]
    fn unframed_bytes_are_refused_at_publish() {
        let tmp = TempDir::new("unframed");
        for store in stores(&tmp) {
            let err = store.publish(1, b"raw weights, no header").unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            assert_eq!(store.latest_generation().unwrap(), None);
        }
    }

    #[test]
    fn corrupt_and_torn_checkpoint_files_are_rejected_at_load() {
        let tmp = TempDir::new("corrupt");
        let store = FsCheckpointStore::open(tmp.path()).unwrap();
        store.publish(1, &framed(1)).unwrap();

        // Bit flip in the payload: checksum mismatch.
        let path = store.checkpoint_path(1);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = store.load(1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");

        // Torn write: file truncated mid-payload.
        std::fs::write(&path, &framed(1)[..10]).unwrap();
        let err = store.load(1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");

        // Missing generation (manifest pointing into the void).
        std::fs::remove_file(&path).unwrap();
        assert_eq!(store.load(1).unwrap_err().kind(), io::ErrorKind::NotFound);
        assert_eq!(store.latest_generation().unwrap(), Some(1));
    }

    #[test]
    fn malformed_manifest_is_a_clean_error() {
        let tmp = TempDir::new("manifest");
        let store = FsCheckpointStore::open(tmp.path()).unwrap();
        std::fs::write(tmp.path().join(MANIFEST_NAME), "what is this\n").unwrap();
        let err = store.latest_generation().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::write(
            tmp.path().join(MANIFEST_NAME),
            format!("{MANIFEST_HEADER}\n"),
        )
        .unwrap();
        let err = store.latest_generation().unwrap_err();
        assert!(err.to_string().contains("latest="), "{err}");
    }

    #[test]
    fn no_tmp_files_survive_a_publish() {
        let tmp = TempDir::new("tmpfiles");
        let store = FsCheckpointStore::open(tmp.path()).unwrap();
        store.publish(1, &framed(1)).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(tmp.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
    }
}
