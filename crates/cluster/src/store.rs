//! The shared checkpoint store: how model generations travel between
//! nodes (and survive them).
//!
//! The fleet's single source of truth is a tiny content-addressed-by-
//! generation store: the leader publishes each trained generation as a
//! framed checkpoint (`neo::checkpoint`: magic + version + length +
//! checksum) plus a `MANIFEST` naming the latest generation; followers
//! poll the manifest and fetch what they're missing. Everything a node
//! needs to serve the fleet's current model is in the store — which is
//! exactly what makes a killed-and-restarted node recover warm.
//!
//! [`FsCheckpointStore`] is the filesystem implementation with **atomic
//! publish**: the checkpoint is written to `gen-N.ckpt.tmp`, fsynced, and
//! renamed to `gen-N.ckpt`; only then is the manifest rewritten the same
//! way (`MANIFEST.tmp` → fsync → rename). A reader therefore never
//! observes a manifest pointing at a missing or half-written generation:
//! either the rename happened (and the fsynced checkpoint is fully
//! there) or the old manifest still points at the previous generation.
//! A torn or bit-rotted checkpoint file that slips through anyway (e.g.
//! a copy truncated in transit) is caught by the frame's length+checksum
//! header at [`CheckpointStore::load`] time and rejected with a clean
//! error instead of being deserialized into garbage weights.
//!
//! # Leader lease and term fencing
//!
//! Which node is allowed to *write* is itself store state: a `LEADER`
//! file (written with the same tmp/fsync/rename discipline as the
//! manifest) holding `(holder, term, expires_at_ms)`. The leader renews
//! it ahead of expiry; when the leader dies, the lease expires and any
//! candidate follower claims it via [`CheckpointStore::try_acquire_lease`],
//! which mints the next **term**. Publishes from a deposed leader are
//! fenced: [`CheckpointStore::publish_fenced`] refuses to write under a
//! term lower than the lease's current one. Even in the razor-thin race
//! where a deposed leader's publish slips past the fence check, the
//! fleet's generation history cannot fork: generation minting is
//! serialized by the store (on [`FsCheckpointStore`] a per-handle op
//! lock guards the monotonicity check + write; [`MemCheckpointStore`]
//! holds its map lock across both), so exactly one publisher wins a
//! generation and the loser gets a clean regression error instead of
//! overwriting anything.
//!
//! Filesystem caveat: the op lock serializes lease claims and publishes
//! only *within* a process (which covers fleets sharing one
//! `Arc<FsCheckpointStore>`). Across **processes** (ISSUE 10's gateway
//! fleet: leader, followers, and clients as separate OS processes), the
//! lease read-modify-write is additionally serialized by a true on-disk
//! mutual-exclusion lock — the classic `O_EXCL` + `link(2)` dance: each
//! claimant `O_EXCL`-creates a unique staging file and atomically
//! `link(2)`s it onto `LEADER.lock`; exactly one link wins (confirmed by
//! the staging file's link count reaching 2, which survives even an
//! NFS-style lost reply), every loser retries briefly. A lock abandoned
//! by a crashed holder is broken after a short TTL by an atomic
//! rename-then-delete, so exactly one breaker wins the break too.
//! Publishes keep their in-process serialization; the backstops for a
//! cross-process publish race remain: rename atomicity keeps every
//! *visible* file whole, and the frame checksum turns a genuinely
//! simultaneous same-generation write into a detected, transient load
//! failure (the next generation heals it) rather than silently
//! divergent weights.
//!
//! # Retention
//!
//! Long-lived stores are bounded by [`CheckpointStore::retain`]: keep the
//! manifest's generation plus its `keep_last − 1` newest predecessors,
//! delete everything else — unreferenced `gen-*.ckpt` files *newer* than
//! the manifest (litter from a publish that crashed between checkpoint
//! rename and manifest rewrite) and stale `*.tmp` files included. The
//! manifest's generation is never deleted, under any interleaving of
//! publishes and GC runs.

use neo_obs::{SpanContext, SpanId, TraceId};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

/// First line of a valid `MANIFEST` file.
pub const MANIFEST_HEADER: &str = "neo-cluster-manifest v1";

/// Filename of the manifest inside a store directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// First line of a valid `LEADER` lease file.
pub const LEASE_HEADER: &str = "neo-cluster-lease v1";

/// Filename of the leader lease inside a store directory.
pub const LEASE_NAME: &str = "LEADER";

/// Filename of the cross-process mutation lock guarding lease
/// read-modify-writes (the `O_EXCL` + `link(2)` target).
pub const LOCK_NAME: &str = "LEADER.lock";

/// Prefix of the per-claimant staging files the lock dance links from.
/// Deliberately *not* a `*.tmp` suffix: the open-time tmp sweep must
/// never reclaim a racer's in-flight staging file.
const LOCK_STAGING_PREFIX: &str = ".lck-";

/// Age (by the timestamp embedded in the lock file) beyond which a
/// mutation lock is considered abandoned by a crashed holder and may be
/// broken. The guarded critical section is a handful of small-file
/// reads/writes — milliseconds — so three orders of magnitude of
/// headroom separates "crashed" from "slow".
const LOCK_STALE_MS: u64 = 2_000;

/// Bounded wait for the mutation lock: attempts × per-attempt backoff.
const LOCK_ATTEMPTS: u32 = 200;
const LOCK_BACKOFF: std::time::Duration = std::time::Duration::from_millis(1);

/// What the manifest names: the latest published generation and the term
/// of the leader that minted it (0 for publishes outside the lease
/// protocol, and for manifests written before terms existed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// The latest fully published generation.
    pub generation: u64,
    /// The lease term under which it was published.
    pub term: u64,
    /// The generation's lineage-trace context (the trainer's root span),
    /// when the publish carried one — how a generation's causal trace is
    /// stitched across nodes: each follower parents its `adopt` span on
    /// this context. `None` for untraced publishes and manifests written
    /// before tracing existed.
    pub trace: Option<SpanContext>,
}

/// The leader lease: who may publish, under which fenced term, and until
/// when. Time is caller-supplied milliseconds (wall clock in production,
/// a counter in tests), so expiry logic is deterministic under test.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeaderLease {
    /// The holder's node name.
    pub holder: String,
    /// Monotonic fencing term: minted +1 on every takeover, stable across
    /// renewals by the same holder.
    pub term: u64,
    /// Expiry instant, milliseconds (same clock the caller passes to
    /// [`CheckpointStore::try_acquire_lease`]).
    pub expires_at_ms: u64,
}

impl LeaderLease {
    /// Whether the lease has expired at `now_ms` (an expired lease is
    /// claimable by any candidate).
    pub fn expired(&self, now_ms: u64) -> bool {
        now_ms >= self.expires_at_ms
    }
}

/// Where the fleet's model generations live. Implementations must be
/// safe to share across nodes/threads; `publish*` is only ever called by
/// the current lease holder (single writer per term),
/// `latest_generation`/`load` by everyone.
pub trait CheckpointStore: Send + Sync {
    /// Durably publishes `framed` (a `neo::checkpoint` frame) as
    /// generation `generation` minted under lease `term`, and advances
    /// the manifest to it. Generations must advance strictly
    /// monotonically; re-publishing an old or current generation is an
    /// error (the store is the fleet's single serialized generation
    /// minter).
    fn publish_term(&self, generation: u64, term: u64, framed: &[u8]) -> io::Result<()>;

    /// [`Self::publish_term`] under term 0 — the pre-failover API, kept
    /// for stores used outside the lease protocol.
    fn publish(&self, generation: u64, framed: &[u8]) -> io::Result<()> {
        self.publish_term(generation, 0, framed)
    }

    /// A fenced publish: refused outright when the store's lease carries
    /// a term greater than `term` — a deposed leader's late publish never
    /// lands. (An expired-but-unclaimed lease does not fence its own
    /// holder; only a successor's higher term does.) The shipped
    /// implementations override this to hold their op lock across the
    /// fence check *and* the publish, so a lease claim can never slip
    /// between the two in-process; this default is the unserialized
    /// fallback for third-party stores.
    fn publish_fenced(&self, generation: u64, term: u64, framed: &[u8]) -> io::Result<()> {
        if let Some(lease) = self.read_lease()? {
            fence_check(generation, term, &lease)?;
        }
        self.publish_term(generation, term, framed)
    }

    /// [`Self::publish_fenced`] carrying the generation's lineage-trace
    /// context into the manifest, so followers can parent their adoption
    /// spans on the trainer's root span. The default drops the context
    /// (third-party stores need no trace support); the shipped
    /// implementations persist it.
    fn publish_fenced_traced(
        &self,
        generation: u64,
        term: u64,
        framed: &[u8],
        trace: Option<SpanContext>,
    ) -> io::Result<()> {
        let _ = trace;
        self.publish_fenced(generation, term, framed)
    }

    /// The manifest (latest generation + minting term), `None` for an
    /// empty (never-published) store.
    fn manifest(&self) -> io::Result<Option<Manifest>>;

    /// The latest published generation per the manifest, `None` for an
    /// empty store.
    fn latest_generation(&self) -> io::Result<Option<u64>> {
        Ok(self.manifest()?.map(|m| m.generation))
    }

    /// Loads the framed checkpoint of `generation`, verifying its
    /// integrity header. Torn, corrupt, or headerless bytes are rejected
    /// with [`io::ErrorKind::InvalidData`].
    fn load(&self, generation: u64) -> io::Result<Vec<u8>>;

    /// Loads the latest generation (manifest read + fetch), `None` for an
    /// empty store.
    fn load_latest(&self) -> io::Result<Option<(u64, Vec<u8>)>> {
        match self.latest_generation()? {
            Some(g) => Ok(Some((g, self.load(g)?))),
            None => Ok(None),
        }
    }

    /// The current leader lease, `None` when no lease was ever written
    /// (an *expired* lease is still returned — expiry is the caller's
    /// judgement via [`LeaderLease::expired`] with its own clock).
    fn read_lease(&self) -> io::Result<Option<LeaderLease>>;

    /// Claims or renews the leader lease at `now_ms` for `ttl_ms`:
    ///
    /// * a live lease held by `holder` → renewed (same term, extended
    ///   expiry);
    /// * no lease, or an expired one (any holder — an expired lease is a
    ///   dead leadership, even one's own) → taken over, minting
    ///   `term + 1`;
    /// * a live lease held by someone else → `Ok(None)` (not an error;
    ///   candidates simply retry next poll).
    ///
    /// Serialized by the store, so two candidates racing an expired lease
    /// mint distinct terms and exactly one of them holds the result.
    /// Terms never restart: every takeover continues the stored term
    /// sequence, so a fenced publish can never be un-fenced.
    fn try_acquire_lease(
        &self,
        holder: &str,
        now_ms: u64,
        ttl_ms: u64,
    ) -> io::Result<Option<LeaderLease>>;

    /// Releases the lease iff currently held by `holder` (clean handoff;
    /// a crashed leader never calls this — its lease just expires). The
    /// lease is *expired in place*, never deleted: the term sequence must
    /// survive so the next claim still mints a fencing `term + 1`.
    /// Returns whether a lease was released.
    fn release_lease(&self, holder: &str) -> io::Result<bool>;

    /// Retention GC: keeps the manifest's generation plus its
    /// `keep_last − 1` newest predecessors (`keep_last` is clamped to
    /// ≥ 1); deletes every other checkpoint — older history *and*
    /// unreferenced generations newer than the manifest (litter from a
    /// publish that crashed between checkpoint rename and manifest
    /// rewrite) — plus any stale `*.tmp` files. The manifest-referenced
    /// generation is never deleted. Returns the number of checkpoints
    /// removed.
    fn retain(&self, keep_last: usize) -> io::Result<usize>;
}

/// Verifies that `framed` is a complete, checksum-valid checkpoint frame.
fn verify_frame(framed: &[u8], context: &str) -> io::Result<()> {
    let decoded = neo::checkpoint::decode(framed)
        .map_err(|e| io::Error::new(e.kind(), format!("{context}: {e}")))?;
    if !decoded.verified() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{context}: headerless bytes (the store holds framed checkpoints only)"),
        ));
    }
    Ok(())
}

/// The term fence: a publish labeled `term` is refused when `lease`
/// carries a newer one (the publisher was deposed).
fn fence_check(generation: u64, term: u64, lease: &LeaderLease) -> io::Result<()> {
    if lease.term > term {
        return Err(io::Error::new(
            io::ErrorKind::PermissionDenied,
            format!(
                "publish fenced: generation {generation} carries term {term} but the \
                 lease is held by {:?} at term {} (this leader was deposed)",
                lease.holder, lease.term
            ),
        ));
    }
    Ok(())
}

fn regression_error(generation: u64, latest: u64) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        format!(
            "generation regression: publishing {generation} over already-published {latest} \
             (generations are minted monotonically by the leader)"
        ),
    )
}

/// Which generations survive a `retain(keep_last)` pass: the manifest's
/// generation plus its `keep_last − 1` newest existing predecessors.
/// Shared by both store impls so they agree byte-for-byte on policy.
fn retained_set(existing: &[u64], manifest_generation: u64, keep_last: usize) -> Vec<u64> {
    let keep_last = keep_last.max(1);
    let mut keep: Vec<u64> = existing
        .iter()
        .copied()
        .filter(|&g| g <= manifest_generation)
        .collect();
    keep.sort_unstable_by(|a, b| b.cmp(a));
    keep.truncate(keep_last);
    // The manifest generation is kept even if its file has gone missing
    // from the listing (a corrupted store must not get worse under GC).
    if !keep.contains(&manifest_generation) {
        keep.push(manifest_generation);
    }
    keep
}

// ---------------------------------------------------------------------------
// Filesystem implementation
// ---------------------------------------------------------------------------

/// Durability/corruption observability counters for one
/// [`FsCheckpointStore`] handle (see [`FsCheckpointStore::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FsStoreStats {
    /// Directory fsyncs that failed (the rename itself succeeded, so the
    /// publish is visible, but its durability across a power loss is not
    /// guaranteed — silently swallowing this hides exactly the failures a
    /// durability audit needs).
    pub fsync_failures: u64,
    /// `LEADER` reads that found a torn/partial lease file and degraded
    /// it to expired/absent (claimable) instead of erroring.
    pub torn_lease_reads: u64,
}

/// A directory of `gen-N.ckpt` files plus a `MANIFEST` and a `LEADER`
/// lease, all published atomically (tmp + fsync + rename). Suitable for
/// any shared filesystem visible to all nodes.
pub struct FsCheckpointStore {
    dir: PathBuf,
    /// Serializes lease read-modify-write within this process (fleets
    /// share one store handle, so in-process candidates never race).
    op_lock: Mutex<()>,
    // neo-obs counters so a metrics registry can share the live atomics
    // (see `bind_metrics`); `stats()` remains the legacy view.
    fsync_failures: neo_obs::Counter,
    torn_lease_reads: neo_obs::Counter,
}

impl FsCheckpointStore {
    /// Opens (creating if needed) a store rooted at `dir`, sweeping any
    /// stale `*.tmp` litter a crashed publisher left behind (a crash
    /// between tmp write and rename orphans the tmp file forever —
    /// nothing else ever reclaims it).
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let store = FsCheckpointStore {
            dir,
            op_lock: Mutex::new(()),
            fsync_failures: neo_obs::Counter::new(),
            torn_lease_reads: neo_obs::Counter::new(),
        };
        // At open this process has no publish or lease renewal in flight,
        // so a crashed writer's `LEADER.tmp` is reclaimable here too, as
        // is `.lck-*` staging litter from crashed lock claimants (the
        // lock name itself is never swept — stale locks are broken by
        // the TTL path so exactly one breaker wins). Age-gated: another
        // LIVE process may have a write in flight right now, and
        // unlinking its milliseconds-old tmp would fail its rename.
        // Crash litter is, by definition, old by the time anyone
        // reopens; fresh files are someone else's business.
        store.sweep_tmp_matching_older_than(
            |name| name.ends_with(".tmp") || name.starts_with(LOCK_STAGING_PREFIX),
            Duration::from_millis(LOCK_STALE_MS),
        );
        Ok(store)
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Durability/corruption counters accumulated by this handle.
    pub fn stats(&self) -> FsStoreStats {
        FsStoreStats {
            fsync_failures: self.fsync_failures.get(),
            torn_lease_reads: self.torn_lease_reads.get(),
        }
    }

    /// Registers this handle's durability counters in `registry` under
    /// `store_*_total` names, sharing the live atomics.
    pub fn bind_metrics(&self, registry: &neo_obs::MetricsRegistry) {
        registry.bind_counter("store_fsync_failures_total", &self.fsync_failures);
        registry.bind_counter("store_torn_lease_reads_total", &self.torn_lease_reads);
    }

    /// Path of a generation's checkpoint file.
    pub fn checkpoint_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("gen-{generation:06}.ckpt"))
    }

    /// Parses `gen-NNNNNN.ckpt` into its generation number.
    fn parse_generation(name: &str) -> Option<u64> {
        name.strip_prefix("gen-")?
            .strip_suffix(".ckpt")?
            .parse()
            .ok()
    }

    /// Every `gen-*.ckpt` generation currently on disk, unordered.
    fn list_generations(&self) -> io::Result<Vec<u64>> {
        let mut gens = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if let Some(g) = entry
                .file_name()
                .to_str()
                .and_then(FsCheckpointStore::parse_generation)
            {
                gens.push(g);
            }
        }
        Ok(gens)
    }

    /// Deletes stale **publish** tmp litter — `gen-*.ckpt.tmp` and
    /// `MANIFEST.tmp` left behind by a publisher that crashed between
    /// write and rename (nothing else ever reclaims them). Best-effort;
    /// returns how many were removed.
    ///
    /// Deliberately *never* touches `LEADER.tmp`: the lease file is
    /// written concurrently by the leader's tick thread (renewals), so
    /// sweeping it here could unlink an in-flight renewal's tmp and fail
    /// the rename. Publish tmps have no such writer: under the lease
    /// discipline the caller *is* the only live publisher, and its own
    /// publish is serialized by [`FsCheckpointStore`]'s op lock.
    /// (A crashed lease write's `LEADER.tmp` is reclaimed by
    /// [`FsCheckpointStore::open`] instead, where this process has no
    /// renewal in flight; that sweep is age-gated so a restarting peer
    /// cannot unlink another live process's in-flight tmp.)
    pub fn sweep_stale_tmp(&self) -> usize {
        self.sweep_tmp_matching_older_than(
            |name| {
                name == "MANIFEST.tmp" || (name.starts_with("gen-") && name.ends_with(".ckpt.tmp"))
            },
            Duration::ZERO,
        )
    }

    /// Removes directory entries matching `matches` whose mtime is at
    /// least `min_age` old. An unreadable mtime counts as old (matching
    /// the pre-age-gate behavior on filesystems without timestamps).
    fn sweep_tmp_matching_older_than(
        &self,
        matches: impl Fn(&str) -> bool,
        min_age: Duration,
    ) -> usize {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        let now = std::time::SystemTime::now();
        let mut removed = 0;
        for entry in entries.filter_map(|e| e.ok()) {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !matches(name) {
                continue;
            }
            let old_enough = entry
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|mtime| now.duration_since(mtime).ok())
                .is_none_or(|age| age >= min_age);
            if old_enough && std::fs::remove_file(entry.path()).is_ok() {
                removed += 1;
            }
        }
        removed
    }

    /// Best-effort directory fsync, so the renames themselves are durable.
    /// Failure (e.g. a filesystem that rejects directory handles, or a
    /// genuine I/O error) doesn't fail the publish — the rename already
    /// made it visible — but it is **counted**, never silently dropped:
    /// a store whose renames aren't durable should show up in
    /// [`FsCheckpointStore::stats`], not in a post-power-loss autopsy.
    fn sync_dir(&self) {
        let synced = std::fs::File::open(&self.dir).and_then(|d| d.sync_all());
        if synced.is_err() {
            self.fsync_failures.inc();
        }
    }

    /// Writes `bytes` to `<name>.tmp`, fsyncs, and renames onto `name` —
    /// the atomic-publish step used for checkpoints, the manifest, and
    /// the lease.
    fn write_atomic(&self, name: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = name.with_extension(match name.extension() {
            Some(e) => format!("{}.tmp", e.to_string_lossy()),
            None => "tmp".to_string(),
        });
        {
            let mut f = std::fs::File::create(&tmp)?;
            io::Write::write_all(&mut f, bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, name)?;
        self.sync_dir();
        Ok(())
    }

    fn write_lease(&self, lease: &LeaderLease) -> io::Result<()> {
        let text = format!(
            "{LEASE_HEADER}\nholder={}\nterm={}\nexpires_at_ms={}\n",
            lease.holder, lease.term, lease.expires_at_ms
        );
        self.write_atomic(&self.dir.join(LEASE_NAME), text.as_bytes())
    }

    /// Acquires the **cross-process** mutation lock serializing lease
    /// read-modify-writes (the in-process op lock must already be held).
    ///
    /// The dance, NFS-folklore complete:
    ///
    /// 1. `O_EXCL`-create a unique staging file (`.lck-<pid>-<nonce>`)
    ///    carrying `holder` and a wall-clock birth stamp;
    /// 2. `link(2)` it onto [`LOCK_NAME`] — atomic even where `O_EXCL`
    ///    on the lock name itself wouldn't be;
    /// 3. confirm by the staging file's **link count**: 2 means our link
    ///    landed, regardless of what the `link` call returned (a lost
    ///    network reply reports failure for a link that succeeded);
    /// 4. a lock older than [`LOCK_STALE_MS`] was abandoned by a crashed
    ///    holder: break it with an atomic rename-then-delete, so exactly
    ///    one breaker wins the break and nobody unlinks a *fresh* lock
    ///    that replaced the stale one mid-break.
    ///
    /// Bounded wait ([`LOCK_ATTEMPTS`] × [`LOCK_BACKOFF`]); contention
    /// past that returns `WouldBlock`, which the node tick's retry
    /// policy absorbs like any transient store fault.
    fn lock_mutation(&self, holder: &str) -> io::Result<FsMutationLock> {
        let lock_path = self.dir.join(LOCK_NAME);
        static NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let staging = self.dir.join(format!(
            "{LOCK_STAGING_PREFIX}{}-{:x}",
            std::process::id(),
            NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        for _ in 0..LOCK_ATTEMPTS {
            let content = format!("holder={holder}\nlocked_at_ms={}\n", wall_ms());
            // (Re)write the staging file: create_new on the first pass
            // (O_EXCL — the name embeds our pid, so a leftover can only
            // be our own crash litter, safe to truncate), plain rewrite
            // after, refreshing the birth stamp carried into the lock.
            std::fs::write(&staging, content.as_bytes())?;
            let linked = std::fs::hard_link(&staging, &lock_path);
            let nlink_confirmed = staging_link_count(&staging).is_some_and(|n| n >= 2);
            if linked.is_ok() || nlink_confirmed {
                // Ours. The staging entry served its purpose; the lock
                // name keeps the inode (and its content) alive.
                let _ = std::fs::remove_file(&staging);
                return Ok(FsMutationLock {
                    lock_path,
                    expected_content: content,
                });
            }
            match linked {
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if lock_is_stale(&lock_path) {
                        // Exactly-one-wins break: rename the stale lock
                        // aside, then delete the renamed husk. A loser's
                        // rename fails (NotFound) and it simply retries.
                        let husk = self.dir.join(format!(
                            "{LOCK_STAGING_PREFIX}break-{}-{:x}",
                            std::process::id(),
                            wall_ms()
                        ));
                        if std::fs::rename(&lock_path, &husk).is_ok() {
                            let _ = std::fs::remove_file(&husk);
                        }
                        continue; // immediate re-attempt
                    }
                    std::thread::sleep(LOCK_BACKOFF);
                }
                // Staging file vanished (a concurrent open() swept it) or
                // other transient weirdness: recreate and retry.
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => {
                    let _ = std::fs::remove_file(&staging);
                    return Err(e);
                }
                Ok(()) => unreachable!("handled above"),
            }
        }
        let _ = std::fs::remove_file(&staging);
        Err(io::Error::new(
            io::ErrorKind::WouldBlock,
            format!("lease mutation lock contended beyond {LOCK_ATTEMPTS} attempts"),
        ))
    }

    /// The publish body, op lock already held by the caller: the
    /// monotonicity check and the write are one serialized step, so
    /// in-process racing publishers are decided cleanly — exactly one
    /// writes a given generation, the other gets the regression error.
    fn publish_term_locked(
        &self,
        generation: u64,
        term: u64,
        framed: &[u8],
        trace: Option<SpanContext>,
    ) -> io::Result<()> {
        verify_frame(framed, "refusing to publish invalid checkpoint")?;
        if let Some(latest) = self.latest_generation()? {
            if generation <= latest {
                return Err(regression_error(generation, latest));
            }
        }
        // A crashed predecessor's half-written tmp files must not
        // accumulate: sweep before adding our own.
        self.sweep_stale_tmp();
        // Checkpoint first, manifest second: a crash between the two
        // leaves a reachable store whose manifest still names the previous
        // (fully published) generation; the orphaned checkpoint is
        // GC-eligible litter for the next `retain`.
        self.write_atomic(&self.checkpoint_path(generation), framed)?;
        let mut manifest = format!("{MANIFEST_HEADER}\nlatest={generation}\nterm={term}\n");
        if let Some(ctx) = trace {
            manifest.push_str(&format!("trace={:016x}:{:016x}\n", ctx.trace.0, ctx.span.0));
        }
        self.write_atomic(&self.dir.join(MANIFEST_NAME), manifest.as_bytes())
    }
}

/// Parses a manifest `trace=<trace-hex>:<span-hex>` value. Tolerant: any
/// malformation degrades to `None` (the trace context is advisory — a
/// manifest must never become unreadable over it).
fn parse_manifest_trace(v: &str) -> Option<SpanContext> {
    let (t, s) = v.split_once(':')?;
    Some(SpanContext {
        trace: TraceId(u64::from_str_radix(t, 16).ok()?),
        span: SpanId(u64::from_str_radix(s, 16).ok()?),
    })
}

impl CheckpointStore for FsCheckpointStore {
    fn publish_term(&self, generation: u64, term: u64, framed: &[u8]) -> io::Result<()> {
        // In-process serialization lives in `publish_term_locked`; across
        // processes the check is read-then-write (see the module docs) —
        // the frame checksum bounds the damage of a truly simultaneous
        // cross-process write to a transient, detected load failure.
        let _serialize = self.op_lock.lock().expect("store op lock poisoned");
        self.publish_term_locked(generation, term, framed, None)
    }

    fn publish_fenced(&self, generation: u64, term: u64, framed: &[u8]) -> io::Result<()> {
        self.publish_fenced_traced(generation, term, framed, None)
    }

    fn publish_fenced_traced(
        &self,
        generation: u64,
        term: u64,
        framed: &[u8],
        trace: Option<SpanContext>,
    ) -> io::Result<()> {
        // Fence check and publish under ONE op-lock acquisition: a lease
        // claim (which also takes the lock) can never land between the
        // two, so an in-process deposed leader is always the one that
        // loses — with the fence error, never by out-racing its
        // successor's first publish.
        let _serialize = self.op_lock.lock().expect("store op lock poisoned");
        if let Some(lease) = self.read_lease()? {
            fence_check(generation, term, &lease)?;
        }
        self.publish_term_locked(generation, term, framed, trace)
    }

    fn manifest(&self) -> io::Result<Option<Manifest>> {
        let text = match std::fs::read_to_string(self.dir.join(MANIFEST_NAME)) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let mut lines = text.lines();
        if lines.next() != Some(MANIFEST_HEADER) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed manifest: missing '{MANIFEST_HEADER}' header"),
            ));
        }
        let mut latest = None;
        let mut term = 0;
        let mut trace = None;
        for line in lines {
            if let Some(v) = line.strip_prefix("latest=") {
                latest = v.parse::<u64>().ok();
            } else if let Some(v) = line.strip_prefix("term=") {
                // Absent in pre-failover manifests: term 0.
                term = v.parse::<u64>().unwrap_or(0);
            } else if let Some(v) = line.strip_prefix("trace=") {
                // Absent in pre-tracing manifests (and for untraced
                // publishes): no lineage context.
                trace = parse_manifest_trace(v);
            }
        }
        let generation = latest.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "malformed manifest: missing 'latest=<generation>' line",
            )
        })?;
        Ok(Some(Manifest {
            generation,
            term,
            trace,
        }))
    }

    fn load(&self, generation: u64) -> io::Result<Vec<u8>> {
        let path = self.checkpoint_path(generation);
        let bytes = std::fs::read(&path).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!(
                    "checkpoint for generation {generation} ({}): {e}",
                    path.display()
                ),
            )
        })?;
        verify_frame(
            &bytes,
            &format!(
                "checkpoint for generation {generation} ({})",
                path.display()
            ),
        )?;
        Ok(bytes)
    }

    fn read_lease(&self) -> io::Result<Option<LeaderLease>> {
        let text = match std::fs::read_to_string(self.dir.join(LEASE_NAME)) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let mut lines = text.lines();
        if lines.next() != Some(LEASE_HEADER) {
            // Torn from the first line (or outright garbage): there is no
            // lease to honor. Treating this as an *error* would make every
            // candidate's claim loop fail forever on one bad write; treating
            // it as absent makes it claimable, which is safe — the next
            // successful claim rewrites the file whole. (Worst case, with
            // the term line also lost, the minted term restarts low; fence
            // comparisons only ever consult this same file, so fencing
            // stays internally consistent.)
            self.torn_lease_reads.inc();
            return Ok(None);
        }
        let mut holder = None;
        let mut term = None;
        let mut expires = None;
        for line in lines {
            if let Some(v) = line.strip_prefix("holder=") {
                holder = Some(v.to_string());
            } else if let Some(v) = line.strip_prefix("term=") {
                term = v.parse::<u64>().ok();
            } else if let Some(v) = line.strip_prefix("expires_at_ms=") {
                expires = v.parse::<u64>().ok();
            }
        }
        match (holder, term, expires) {
            (Some(holder), Some(term), Some(expires_at_ms)) => Ok(Some(LeaderLease {
                holder,
                term,
                expires_at_ms,
            })),
            (holder, Some(term), _) => {
                // Torn after the term line (the common torn-write shape:
                // lines land in write order). The fencing-critical term
                // survived, so preserve it in an already-expired lease —
                // claimable by any candidate, whose takeover mints
                // `term + 1`, keeping the fence sequence monotonic.
                self.torn_lease_reads.inc();
                Ok(Some(LeaderLease {
                    holder: holder.unwrap_or_default(),
                    term,
                    expires_at_ms: 0,
                }))
            }
            _ => {
                // Header intact but no parseable term: degrade to absent,
                // same claimability argument as the missing-header case.
                self.torn_lease_reads.inc();
                Ok(None)
            }
        }
    }

    fn try_acquire_lease(
        &self,
        holder: &str,
        now_ms: u64,
        ttl_ms: u64,
    ) -> io::Result<Option<LeaderLease>> {
        let _serialize = self.op_lock.lock().expect("store op lock poisoned");
        // True multi-process mutual exclusion (ISSUE 10): the op lock
        // covers in-process racers; this covers racing *processes*.
        let _excl = self.lock_mutation(holder)?;
        let current = self.read_lease()?;
        let next = match &current {
            Some(lease) if lease.holder == holder && !lease.expired(now_ms) => LeaderLease {
                // Renewal: same term, extended expiry.
                holder: holder.to_string(),
                term: lease.term,
                expires_at_ms: now_ms.saturating_add(ttl_ms),
            },
            Some(lease) if !lease.expired(now_ms) => return Ok(None),
            _ => LeaderLease {
                // Takeover (or first acquisition): mint the next term —
                // an expired lease is a dead leadership even when the
                // holder names match (a restarted ex-leader must fence
                // its own previous stint's late publishes).
                holder: holder.to_string(),
                term: current.as_ref().map_or(0, |l| l.term) + 1,
                expires_at_ms: now_ms.saturating_add(ttl_ms),
            },
        };
        self.write_lease(&next)?;
        // Under the mutation lock the write cannot race another process:
        // no read-back confirmation needed — the old write-then-read-back
        // heuristic had an ABA window where two claimants could both
        // confirm the same minted term.
        Ok(Some(next))
    }

    fn release_lease(&self, holder: &str) -> io::Result<bool> {
        let _serialize = self.op_lock.lock().expect("store op lock poisoned");
        let _excl = self.lock_mutation(holder)?;
        match self.read_lease()? {
            Some(lease) if lease.holder == holder => {
                // Expire in place — the term sequence must survive.
                self.write_lease(&LeaderLease {
                    expires_at_ms: 0,
                    ..lease
                })?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn retain(&self, keep_last: usize) -> io::Result<usize> {
        // Serialized with publishes: without the op lock, a GC racing a
        // concurrent in-process publish could read the old manifest and
        // then delete the just-renamed newer checkpoint as an "orphan".
        let _serialize = self.op_lock.lock().expect("store op lock poisoned");
        // Tmp litter is not a checkpoint; swept but not counted.
        self.sweep_stale_tmp();
        let Some(manifest) = self.manifest()? else {
            return Ok(0);
        };
        let existing = self.list_generations()?;
        let keep = retained_set(&existing, manifest.generation, keep_last);
        let mut removed = 0;
        for g in existing {
            if !keep.contains(&g) && std::fs::remove_file(self.checkpoint_path(g)).is_ok() {
                removed += 1;
            }
        }
        if removed > 0 {
            self.sync_dir();
        }
        Ok(removed)
    }
}

/// Held for the duration of one lease read-modify-write; dropping it
/// releases [`LOCK_NAME`]. Release verifies the lock's content is still
/// ours first: if a pathological stall let a breaker replace the lock
/// mid-critical-section, we must not unlink the successor's lock. (The
/// verify-then-unlink pair is not atomic — that residual window is the
/// irreducible cost of TTL-based crash recovery, shared by the lease
/// protocol itself.)
struct FsMutationLock {
    lock_path: PathBuf,
    expected_content: String,
}

impl Drop for FsMutationLock {
    fn drop(&mut self) {
        match std::fs::read_to_string(&self.lock_path) {
            Ok(content) if content == self.expected_content => {
                let _ = std::fs::remove_file(&self.lock_path);
            }
            _ => {} // broken as stale and possibly re-claimed: not ours to unlink
        }
    }
}

/// Wall-clock milliseconds since the epoch — the mutation lock's
/// staleness clock. Independent of the *caller-supplied* lease clock
/// (which tests drive as a counter): lock staleness is about real
/// crashed processes, not simulated time.
fn wall_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// The staging file's hard-link count, where the platform exposes one.
#[cfg(unix)]
fn staging_link_count(path: &Path) -> Option<u64> {
    use std::os::unix::fs::MetadataExt;
    std::fs::metadata(path).ok().map(|m| m.nlink())
}

#[cfg(not(unix))]
fn staging_link_count(_path: &Path) -> Option<u64> {
    None // fall back to trusting the hard_link return value
}

/// True when the lock file at `path` was abandoned: its embedded birth
/// stamp is older than [`LOCK_STALE_MS`] (or the content is garbage,
/// which a *live* lock can never be — the staging file is fully written
/// before it is linked into place).
fn lock_is_stale(path: &Path) -> bool {
    match std::fs::read_to_string(path) {
        Ok(content) => content
            .lines()
            .find_map(|l| l.strip_prefix("locked_at_ms="))
            .and_then(|v| v.parse::<u64>().ok())
            .is_none_or(|born| wall_ms().saturating_sub(born) > LOCK_STALE_MS),
        // Vanished between the link failure and this read: someone else
        // released or broke it — not stale, just retry.
        Err(_) => false,
    }
}

// ---------------------------------------------------------------------------
// In-memory implementation
// ---------------------------------------------------------------------------

/// Everything a [`MemCheckpointStore`] holds, under one lock so every
/// compound operation — fence check + publish, lease read-modify-write,
/// manifest read + GC — is a single critical section, mirroring the
/// filesystem store's op lock.
#[derive(Default)]
struct MemInner {
    /// generation → (minting term, framed checkpoint).
    generations: BTreeMap<u64, (u64, Vec<u8>)>,
    lease: Option<LeaderLease>,
    /// The lineage-trace context the latest publish carried (what the
    /// filesystem store persists as the manifest's `trace=` line).
    manifest_trace: Option<SpanContext>,
}

/// An in-process store (one mutex over generations + lease), for tests
/// and single-process fleets. Frames are verified with the same rules as
/// the filesystem store so the two are interchangeable in tests.
#[derive(Default)]
pub struct MemCheckpointStore {
    inner: Mutex<MemInner>,
}

impl MemCheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The publish body over an already-locked [`MemInner`].
fn mem_publish_locked(
    inner: &mut MemInner,
    generation: u64,
    term: u64,
    framed: &[u8],
    trace: Option<SpanContext>,
) -> io::Result<()> {
    verify_frame(framed, "refusing to publish invalid checkpoint")?;
    if let Some((&latest, _)) = inner.generations.last_key_value() {
        if generation <= latest {
            return Err(regression_error(generation, latest));
        }
    }
    inner
        .generations
        .insert(generation, (term, framed.to_vec()));
    // The manifest describes the latest publish: an untraced publish
    // clears any previous generation's context rather than inheriting it.
    inner.manifest_trace = trace;
    Ok(())
}

impl CheckpointStore for MemCheckpointStore {
    fn publish_term(&self, generation: u64, term: u64, framed: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("store poisoned");
        mem_publish_locked(&mut inner, generation, term, framed, None)
    }

    fn publish_fenced(&self, generation: u64, term: u64, framed: &[u8]) -> io::Result<()> {
        self.publish_fenced_traced(generation, term, framed, None)
    }

    fn publish_fenced_traced(
        &self,
        generation: u64,
        term: u64,
        framed: &[u8],
        trace: Option<SpanContext>,
    ) -> io::Result<()> {
        // One critical section for fence check + publish: a lease claim
        // cannot land between the two (see the Fs impl for the rationale).
        let mut inner = self.inner.lock().expect("store poisoned");
        if let Some(lease) = &inner.lease {
            fence_check(generation, term, lease)?;
        }
        mem_publish_locked(&mut inner, generation, term, framed, trace)
    }

    fn manifest(&self) -> io::Result<Option<Manifest>> {
        let inner = self.inner.lock().expect("store poisoned");
        Ok(inner
            .generations
            .last_key_value()
            .map(|(&g, &(term, _))| Manifest {
                generation: g,
                term,
                trace: inner.manifest_trace,
            }))
    }

    fn load(&self, generation: u64) -> io::Result<Vec<u8>> {
        let inner = self.inner.lock().expect("store poisoned");
        let (_, bytes) = inner.generations.get(&generation).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("generation {generation} not in store"),
            )
        })?;
        verify_frame(bytes, &format!("checkpoint for generation {generation}"))?;
        Ok(bytes.clone())
    }

    fn read_lease(&self) -> io::Result<Option<LeaderLease>> {
        Ok(self.inner.lock().expect("store poisoned").lease.clone())
    }

    fn try_acquire_lease(
        &self,
        holder: &str,
        now_ms: u64,
        ttl_ms: u64,
    ) -> io::Result<Option<LeaderLease>> {
        let mut inner = self.inner.lock().expect("store poisoned");
        let next = match &inner.lease {
            Some(lease) if lease.holder == holder && !lease.expired(now_ms) => LeaderLease {
                holder: holder.to_string(),
                term: lease.term,
                expires_at_ms: now_ms.saturating_add(ttl_ms),
            },
            Some(lease) if !lease.expired(now_ms) => return Ok(None),
            current => LeaderLease {
                holder: holder.to_string(),
                term: current.as_ref().map_or(0, |l| l.term) + 1,
                expires_at_ms: now_ms.saturating_add(ttl_ms),
            },
        };
        inner.lease = Some(next.clone());
        Ok(Some(next))
    }

    fn release_lease(&self, holder: &str) -> io::Result<bool> {
        let mut inner = self.inner.lock().expect("store poisoned");
        match &inner.lease {
            Some(lease) if lease.holder == holder => {
                inner.lease = Some(LeaderLease {
                    expires_at_ms: 0,
                    ..lease.clone()
                });
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn retain(&self, keep_last: usize) -> io::Result<usize> {
        let mut inner = self.inner.lock().expect("store poisoned");
        let Some((&latest, _)) = inner.generations.last_key_value() else {
            return Ok(0);
        };
        let existing: Vec<u64> = inner.generations.keys().copied().collect();
        let keep = retained_set(&existing, latest, keep_last);
        let before = inner.generations.len();
        inner.generations.retain(|g, _| keep.contains(g));
        Ok(before - inner.generations.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique scratch directory per test invocation, removed on drop.
    pub(crate) struct TempDir(PathBuf);

    impl TempDir {
        pub(crate) fn new(tag: &str) -> Self {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "neo-cluster-{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }

        pub(crate) fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn framed(tag: u8) -> Vec<u8> {
        neo::checkpoint::frame(&[tag; 32])
    }

    fn stores(tmp: &TempDir) -> Vec<Box<dyn CheckpointStore>> {
        vec![
            Box::new(FsCheckpointStore::open(tmp.path()).unwrap()),
            Box::new(MemCheckpointStore::new()),
        ]
    }

    #[test]
    fn publish_load_roundtrip_and_manifest_advance() {
        let tmp = TempDir::new("roundtrip");
        for store in stores(&tmp) {
            assert_eq!(store.latest_generation().unwrap(), None);
            assert!(store.load_latest().unwrap().is_none());
            store.publish(1, &framed(1)).unwrap();
            store.publish(2, &framed(2)).unwrap();
            assert_eq!(store.latest_generation().unwrap(), Some(2));
            assert_eq!(store.load(1).unwrap(), framed(1));
            let (g, bytes) = store.load_latest().unwrap().unwrap();
            assert_eq!((g, bytes), (2, framed(2)));
        }
    }

    #[test]
    fn generation_regression_is_rejected() {
        let tmp = TempDir::new("regression");
        for store in stores(&tmp) {
            store.publish(3, &framed(3)).unwrap();
            for stale in [3, 2] {
                let err = store.publish(stale, &framed(9)).unwrap_err();
                assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "gen {stale}");
            }
            // The store still serves generation 3 untouched.
            assert_eq!(store.load(3).unwrap(), framed(3));
        }
    }

    #[test]
    fn unframed_bytes_are_refused_at_publish() {
        let tmp = TempDir::new("unframed");
        for store in stores(&tmp) {
            let err = store.publish(1, b"raw weights, no header").unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            assert_eq!(store.latest_generation().unwrap(), None);
        }
    }

    #[test]
    fn corrupt_and_torn_checkpoint_files_are_rejected_at_load() {
        let tmp = TempDir::new("corrupt");
        let store = FsCheckpointStore::open(tmp.path()).unwrap();
        store.publish(1, &framed(1)).unwrap();

        // Bit flip in the payload: checksum mismatch.
        let path = store.checkpoint_path(1);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = store.load(1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");

        // Torn write: file truncated mid-payload.
        std::fs::write(&path, &framed(1)[..10]).unwrap();
        let err = store.load(1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");

        // Missing generation (manifest pointing into the void).
        std::fs::remove_file(&path).unwrap();
        assert_eq!(store.load(1).unwrap_err().kind(), io::ErrorKind::NotFound);
        assert_eq!(store.latest_generation().unwrap(), Some(1));
    }

    #[test]
    fn malformed_manifest_is_a_clean_error() {
        let tmp = TempDir::new("manifest");
        let store = FsCheckpointStore::open(tmp.path()).unwrap();
        std::fs::write(tmp.path().join(MANIFEST_NAME), "what is this\n").unwrap();
        let err = store.latest_generation().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::write(
            tmp.path().join(MANIFEST_NAME),
            format!("{MANIFEST_HEADER}\n"),
        )
        .unwrap();
        let err = store.latest_generation().unwrap_err();
        assert!(err.to_string().contains("latest="), "{err}");
    }

    #[test]
    fn pre_term_manifests_still_parse_as_term_zero() {
        let tmp = TempDir::new("legacy-manifest");
        let store = FsCheckpointStore::open(tmp.path()).unwrap();
        std::fs::write(
            tmp.path().join(MANIFEST_NAME),
            format!("{MANIFEST_HEADER}\nlatest=7\n"),
        )
        .unwrap();
        assert_eq!(
            store.manifest().unwrap(),
            Some(Manifest {
                generation: 7,
                term: 0,
                trace: None
            })
        );
    }

    #[test]
    fn traced_publish_roundtrips_the_lineage_context() {
        let tmp = TempDir::new("traced-publish");
        let ctx = SpanContext {
            trace: TraceId(0xabc),
            span: SpanId(0xdef),
        };
        for store in stores(&tmp) {
            store
                .publish_fenced_traced(1, 0, &framed(1), Some(ctx))
                .unwrap();
            let manifest = store.manifest().unwrap().unwrap();
            assert_eq!(manifest.trace, Some(ctx), "context survives the manifest");
            // An untraced publish clears the context — the manifest
            // always describes its own generation's lineage, never a
            // predecessor's.
            store.publish_fenced(2, 0, &framed(2)).unwrap();
            assert_eq!(store.manifest().unwrap().unwrap().trace, None);
        }
    }

    #[test]
    fn malformed_manifest_trace_degrades_to_none() {
        let tmp = TempDir::new("bad-trace");
        let store = FsCheckpointStore::open(tmp.path()).unwrap();
        for bad in ["garbage", "12:zz", "nocolon", ""] {
            std::fs::write(
                tmp.path().join(MANIFEST_NAME),
                format!("{MANIFEST_HEADER}\nlatest=4\nterm=2\ntrace={bad}\n"),
            )
            .unwrap();
            let manifest = store.manifest().unwrap().unwrap();
            assert_eq!((manifest.generation, manifest.term), (4, 2));
            assert_eq!(
                manifest.trace, None,
                "trace {bad:?} must not poison the manifest"
            );
        }
    }

    #[test]
    fn no_tmp_files_survive_a_publish() {
        let tmp = TempDir::new("tmpfiles");
        let store = FsCheckpointStore::open(tmp.path()).unwrap();
        store.publish(1, &framed(1)).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(tmp.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
    }

    #[test]
    fn lease_acquire_renew_expire_takeover() {
        let tmp = TempDir::new("lease");
        for store in stores(&tmp) {
            assert_eq!(store.read_lease().unwrap(), None);
            // First acquisition mints term 1.
            let lease = store.try_acquire_lease("a", 1000, 100).unwrap().unwrap();
            assert_eq!((lease.term, lease.expires_at_ms), (1, 1100));
            // A live lease blocks other candidates...
            assert_eq!(store.try_acquire_lease("b", 1050, 100).unwrap(), None);
            // ...but the incumbent renews at the same term.
            let renewed = store.try_acquire_lease("a", 1050, 100).unwrap().unwrap();
            assert_eq!((renewed.term, renewed.expires_at_ms), (1, 1150));
            // Expiry makes it claimable; takeover mints the next term.
            let stolen = store.try_acquire_lease("b", 1150, 100).unwrap().unwrap();
            assert_eq!((stolen.holder.as_str(), stolen.term), ("b", 2));
            // Release by a non-holder is a no-op; by the holder, the
            // lease is expired in place — term preserved, never deleted.
            assert!(!store.release_lease("a").unwrap());
            assert!(store.release_lease("b").unwrap());
            let released = store.read_lease().unwrap().unwrap();
            assert_eq!((released.term, released.expires_at_ms), (2, 0));
            // Terms never restart: the next claim (even by an old holder)
            // mints the next term in the stored sequence, so fencing can
            // never be undone by a release/expiry cycle.
            let fresh = store.try_acquire_lease("b", 2000, 100).unwrap().unwrap();
            assert_eq!(fresh.term, 3);
        }
    }

    #[test]
    fn torn_lease_file_is_claimable_not_an_error_loop() {
        let tmp = TempDir::new("torn-lease");
        let store = FsCheckpointStore::open(tmp.path()).unwrap();
        let lease = store.try_acquire_lease("a", 1000, 100).unwrap().unwrap();
        assert_eq!(lease.term, 1);
        let path = tmp.path().join(LEASE_NAME);

        // Torn after the term line (a write that died mid-expiry-line):
        // the lease reads as already expired with the term preserved, so
        // a candidate claims it and the fence sequence stays monotonic.
        std::fs::write(
            &path,
            format!("{LEASE_HEADER}\nholder=a\nterm=1\nexpires_at"),
        )
        .unwrap();
        let torn = store.read_lease().unwrap().unwrap();
        assert_eq!((torn.term, torn.expires_at_ms), (1, 0));
        let claimed = store.try_acquire_lease("b", 2000, 100).unwrap().unwrap();
        assert_eq!((claimed.holder.as_str(), claimed.term), ("b", 2));

        // Torn before the term line: nothing worth honoring — absent,
        // claimable.
        std::fs::write(&path, format!("{LEASE_HEADER}\nhold")).unwrap();
        assert_eq!(store.read_lease().unwrap(), None);

        // Torn mid-header (or outright garbage): same.
        std::fs::write(&path, "neo-clus").unwrap();
        assert_eq!(store.read_lease().unwrap(), None);
        std::fs::write(&path, "not a lease at all\n\0\0\0").unwrap();
        assert_eq!(store.read_lease().unwrap(), None);
        let reclaimed = store.try_acquire_lease("c", 3000, 100).unwrap().unwrap();
        assert_eq!(reclaimed.holder, "c");

        // Every degradation was counted, never silently absorbed.
        assert!(store.stats().torn_lease_reads >= 4);
    }

    #[test]
    fn fsync_failures_surface_in_store_stats() {
        let tmp = TempDir::new("fsync-stats");
        let store = FsCheckpointStore::open(tmp.path()).unwrap();
        store.publish(1, &framed(1)).unwrap();
        // On a healthy filesystem nothing failed — the counter exists and
        // stays zero (the negative case; the failing case needs an
        // unsyncable directory, which a unit test can't portably conjure).
        assert_eq!(store.stats().fsync_failures, 0);
        assert_eq!(store.stats().torn_lease_reads, 0);
    }

    #[test]
    fn deposed_leader_publish_is_fenced_by_term() {
        let tmp = TempDir::new("fence");
        for store in stores(&tmp) {
            let old = store.try_acquire_lease("old", 0, 100).unwrap().unwrap();
            store.publish_fenced(1, old.term, &framed(1)).unwrap();
            // The old leader stalls; a successor takes the lease.
            let new = store.try_acquire_lease("new", 200, 100).unwrap().unwrap();
            assert!(new.term > old.term);
            // The deposed leader's late publish is refused outright.
            let err = store.publish_fenced(2, old.term, &framed(2)).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::PermissionDenied, "{err}");
            assert_eq!(store.latest_generation().unwrap(), Some(1));
            // The successor publishes fine, and the manifest records its term.
            store.publish_fenced(2, new.term, &framed(3)).unwrap();
            assert_eq!(
                store.manifest().unwrap(),
                Some(Manifest {
                    generation: 2,
                    term: new.term,
                    trace: None
                })
            );
            // An expired-but-unclaimed lease does not fence its own holder.
            store.publish_fenced(3, new.term, &framed(4)).unwrap();
        }
    }

    #[test]
    fn retain_keeps_manifest_generation_plus_predecessors() {
        let tmp = TempDir::new("retain");
        for store in stores(&tmp) {
            for g in 1..=6 {
                store.publish(g, &framed(g as u8)).unwrap();
            }
            assert_eq!(store.retain(3).unwrap(), 3);
            for g in 1..=3 {
                assert_eq!(
                    store.load(g).unwrap_err().kind(),
                    io::ErrorKind::NotFound,
                    "generation {g} should be collected"
                );
            }
            for g in 4..=6 {
                assert_eq!(store.load(g).unwrap(), framed(g as u8));
            }
            assert_eq!(store.latest_generation().unwrap(), Some(6));
            // keep_last is clamped to 1: the manifest generation survives.
            assert_eq!(store.retain(0).unwrap(), 2);
            assert_eq!(store.load(6).unwrap(), framed(6));
            // Idempotent once bounded.
            assert_eq!(store.retain(1).unwrap(), 0);
        }
    }

    #[test]
    fn open_sweeps_stale_tmp_litter() {
        let tmp = TempDir::new("sweep");
        {
            let store = FsCheckpointStore::open(tmp.path()).unwrap();
            store.publish(1, &framed(1)).unwrap();
        }
        // A publisher crashed between tmp write and rename. The sweep is
        // age-gated (a FRESH tmp may be another live process's in-flight
        // write), so backdate the litter past the staleness horizon.
        for (name, bytes) in [
            ("gen-000002.ckpt.tmp", b"half a checkpoint".as_slice()),
            ("MANIFEST.tmp", b"half a manifest".as_slice()),
        ] {
            let path = tmp.path().join(name);
            std::fs::write(&path, bytes).unwrap();
            let old = std::time::SystemTime::now() - Duration::from_millis(10 * LOCK_STALE_MS);
            let f = std::fs::File::options().append(true).open(&path).unwrap();
            f.set_times(std::fs::FileTimes::new().set_modified(old))
                .unwrap();
        }
        let store = FsCheckpointStore::open(tmp.path()).unwrap();
        let tmp_files: Vec<_> = std::fs::read_dir(tmp.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(tmp_files.is_empty(), "{tmp_files:?}");
        // The real store state is untouched.
        assert_eq!(store.load_latest().unwrap().unwrap().0, 1);
    }

    #[test]
    fn open_leaves_fresh_tmp_files_alone() {
        // A *fresh* tmp is plausibly another live process's in-flight
        // atomic write; a restarting peer must not unlink it out from
        // under the rename (the multi-process hammer test caught exactly
        // this).
        let tmp = TempDir::new("sweep-fresh");
        std::fs::create_dir_all(tmp.path()).unwrap();
        std::fs::write(tmp.path().join("LEADER.tmp"), b"renewal in flight").unwrap();
        std::fs::write(tmp.path().join(".lck-999-0"), b"holder=live\n").unwrap();
        let _store = FsCheckpointStore::open(tmp.path()).unwrap();
        assert!(tmp.path().join("LEADER.tmp").exists());
        assert!(tmp.path().join(".lck-999-0").exists());
    }
}
