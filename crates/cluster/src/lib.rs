#![warn(missing_docs)]
//! # neo-cluster — the multi-node optimization fleet
//!
//! The ROADMAP's north star is a service for millions of users; one
//! node's worker pool is not that. This crate scales the closed learning
//! loop (`neo-learn` over `neo-serve`) **across nodes** while keeping the
//! fleet's defining invariant: every node converges to the same model
//! generation, and — search being deterministic per generation — chooses
//! **byte-identical plans** for the same query fingerprint. An optimizer
//! fleet that disagrees with itself is a fleet of regressions waiting for
//! a retry ("Query Optimization in the Wild" calls fleet-wide plan
//! consistency the make-or-break property of industrial deployments).
//!
//! Architecture (one leader, N−1 followers, one store — with leadership
//! itself being store state):
//!
//! * [`CheckpointStore`] — the durable, shared generation store
//!   ([`FsCheckpointStore`]: atomic tmp→fsync→rename publish of framed
//!   `gen-N.ckpt` files plus a `MANIFEST` naming the latest;
//!   [`MemCheckpointStore`] for in-process fleets and tests). Checkpoint
//!   frames carry a magic/version/length/checksum header
//!   ([`neo::checkpoint`]), so torn or corrupt files are rejected, never
//!   loaded.
//! * [`ClusterNode`] — an [`neo_serve::OptimizerService`] +
//!   fleet-feedback wiring. The **leader** aggregates experience
//!   forwarded by every node (one fingerprint-sharded
//!   [`neo_learn::ExperienceSink`] merged into one replay buffer), runs
//!   the fleet's only [`neo_learn::BackgroundTrainer`], and publishes
//!   each generation to the store *before* it may serve — a generation
//!   the fleet cannot fetch never goes live. **Followers** poll the
//!   manifest and hot-swap through their local model slot
//!   ([`neo_serve::OptimizerService::publish_model_from`]), demoting cached
//!   plans to warm-start seeds exactly as a local publish would.
//! * **Crash recovery = routine sync:** a node constructed over a
//!   non-empty store loads the manifest's generation before serving its
//!   first query, so a killed-and-restarted node comes back warm at the
//!   fleet's current generation with zero retraining
//!   ([`ClusterNode::recovered_generation`]).
//! * **Leader failover:** leadership is a store-serialized lease (a
//!   `LEADER` file written with the manifest's tmp→fsync→rename
//!   discipline, holding `(holder, term, expiry)`). The leader renews it
//!   from its tick thread; when the leader dies the lease expires and a
//!   surviving candidate claims the next **term**, promoting itself —
//!   spinning up its own trainer over the same merged sink. A deposed
//!   leader's late publish is fenced by the term
//!   ([`CheckpointStore::publish_fenced`]), and generation minting stays
//!   store-serialized (monotonic), so the fleet's generation history
//!   never forks.
//! * **Retention:** long-lived stores stay bounded —
//!   [`CheckpointStore::retain`] keeps the manifest's generation plus its
//!   `keep_last − 1` predecessors and collects older history, orphaned
//!   checkpoints from crashed publishes, and stale `*.tmp` litter; wired
//!   into every leader publish via
//!   [`NodeConfig::retain_generations`](NodeConfig).
//! * [`Cluster`] — convenience assembly of leader + followers over one
//!   store and sink, used by the tests and `cluster-bench`.
//! * **Robustness under faults:** [`FaultInjectingStore`] wraps any store
//!   in a seeded, deterministic fault schedule (transient errors, injected
//!   latency, torn `LEADER` writes, corrupt loads, crash-before-rename
//!   litter, full outages) so the fleet can be soaked under a reproducible
//!   fault storm. Nodes absorb transients through a bounded
//!   [`neo_learn::RetryPolicy`] and track sustained unreachability with a
//!   per-node [`neo_serve::HealthTracker`] — a Degraded leader resigns
//!   before its lease lapses mid-publish.
//!
//! ```no_run
//! use neo::{Featurization, Featurizer, NetConfig, ValueNet};
//! use neo_cluster::{Cluster, ClusterConfig, FsCheckpointStore};
//! use std::sync::Arc;
//!
//! let db = Arc::new(neo_storage::datagen::imdb::generate(0.05, 42));
//! let featurizer = Arc::new(Featurizer::new(&db, Featurization::Histogram));
//! let net = Arc::new(ValueNet::new(
//!     featurizer.query_dim(),
//!     featurizer.plan_channels(),
//!     NetConfig::default(),
//!     42,
//! ));
//! let store = Arc::new(FsCheckpointStore::open("/mnt/shared/neo-ckpt").unwrap());
//! let cluster = Cluster::new(
//!     db,
//!     featurizer,
//!     net,
//!     store,
//!     ClusterConfig { nodes: 4, auto_poll: true, ..Default::default() },
//! )
//! .unwrap();
//! let workload = neo_query::workload::job::generate(cluster.leader().service().db(), 42);
//! for (i, q) in workload.queries.iter().enumerate() {
//!     // Route queries to any node: same generation ⇒ same plan.
//!     let node = cluster.node(i % cluster.len());
//!     let outcome = node.service().optimize(q);
//!     node.service().report_outcome(q, &outcome, 12.3 /* measured */);
//! }
//! cluster.leader().trainer().request_generation();
//! ```

pub mod chaos;
pub mod fleet;
pub mod node;
pub mod store;

pub use chaos::{ChaosConfig, ChaosStats, FaultInjectingStore, OpClass};
pub use fleet::{Cluster, ClusterConfig, DEFAULT_EVENT_CAPACITY};
pub use node::{ClusterNode, NodeConfig};
pub use store::{
    CheckpointStore, FsCheckpointStore, FsStoreStats, LeaderLease, Manifest, MemCheckpointStore,
    LEASE_HEADER, LEASE_NAME, MANIFEST_HEADER, MANIFEST_NAME,
};
