//! One node of the optimization fleet: an [`OptimizerService`] wired to
//! the shared [`CheckpointStore`].
//!
//! Every node serves queries from its own worker pool and forwards its
//! execution feedback into the fleet's shared experience sink. What a
//! node does with *models* depends on its role — and the role is
//! **store state**, not construction-time fate:
//!
//! * the **leader** holds the store's `LEADER` lease (renewed from the
//!   background tick thread), runs the fleet's only
//!   [`BackgroundTrainer`] against the merged experience, and publishes
//!   each trained generation to the store *before* serving it (a
//!   [`GenerationObserver`] with veto power — a generation the fleet
//!   cannot fetch never goes live anywhere). Publishes are fenced by the
//!   lease **term**, and each successful publish runs the store's
//!   retention GC ([`CheckpointStore::retain`]) when
//!   [`NodeConfig::retain_generations`] is set;
//! * a **follower** polls the store's manifest ([`ClusterNode::sync`],
//!   eagerly at tick-thread start and then every interval) and adopts new
//!   generations through its service's swap hook
//!   ([`OptimizerService::publish_model_from`]) — the same swap-then-
//!   epoch-bump path a local publish takes, so cached plans demote to
//!   warm-start seeds identically. A follower with
//!   [`NodeConfig::failover`] set is a **candidate**: when the lease
//!   expires it claims the next term and promotes itself, spinning up its
//!   own trainer over the same merged sink — the fleet keeps learning
//!   across the old leader's death, and the dead leader's late publishes
//!   are fenced by the minted term.
//!
//! **Crash recovery is the same code path as a routine sync.** A node
//! constructed over a non-empty store immediately loads the manifest's
//! generation before serving anything — so a killed-and-restarted node
//! comes back warm at the fleet's current generation with zero
//! retraining, and a node that missed ten generations while partitioned
//! just jumps to the newest one (generations are cumulative snapshots,
//! not deltas).
//!
//! **Store faults degrade the node gracefully, never silently.** Every
//! tick-path store operation runs under the node's bounded
//! [`RetryPolicy`] (exponential backoff + jitter), so a transient hiccup
//! is absorbed instead of skipping a tick or vetoing work. The tick's
//! overall verdict — after retries — feeds a per-node
//! [`HealthTracker`] (`Healthy → Degraded → Isolated`): a **Degraded
//! leader resigns** (best-effort lease release + drain-then-stop trainer)
//! rather than letting its lease lapse mid-publish, and an **Isolated
//! candidate stops standing for election** — a node that cannot reach the
//! store is the last node that should hold its lease.

use crate::store::CheckpointStore;
use neo::{checkpoint, ValueNet};
use neo_learn::{
    BackgroundTrainer, ExperienceSink, GenerationObserver, ReplayConfig, RetryPolicy,
    RetrySnapshot, RetryStats, TrainerConfig,
};
use neo_obs::{
    Counter, EventKind, EventRing, Gauge, LatencyHistogram, SpanContext, SpanGuard, SpanRing,
};
use neo_serve::{
    join_named_or_ignore_during_unwind, HealthPolicy, HealthSnapshot, HealthState, HealthTracker,
    OptimizerService, ServeConfig,
};
use neo_storage::Database;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Wall-clock milliseconds for lease arithmetic (the store compares
/// caller-supplied instants, so every node of a fleet must use the same
/// clock — across processes that is the system clock).
fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Per-node configuration.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// Node name (thread names, diagnostics, lease holder id — must be
    /// unique per fleet).
    pub name: String,
    /// The node-local serving configuration.
    pub serve: ServeConfig,
    /// Tick interval for the background thread (manifest poll on
    /// followers, lease renewal on the leader).
    pub poll_interval_ms: u64,
    /// Spawn the background tick thread at construction. Required for a
    /// long-lived leader (lease renewal) and for follower auto-adoption;
    /// explicit [`ClusterNode::sync`] works either way.
    pub auto_poll: bool,
    /// Leader-lease time-to-live, milliseconds. The leader renews every
    /// tick; a candidate can claim the lease once `lease_ttl_ms` elapses
    /// after the last renewal. Must comfortably exceed
    /// `poll_interval_ms`.
    pub lease_ttl_ms: u64,
    /// Makes this node a failover **candidate**: a follower that claims
    /// the expired lease and promotes itself to leader (spinning up its
    /// own trainer over the shared sink).
    pub failover: bool,
    /// When set, every successful store publish is followed by
    /// [`CheckpointStore::retain`] with this `keep_last` — the manifest's
    /// generation plus `keep_last − 1` predecessors survive; older
    /// history, orphaned checkpoints, and stale tmp litter are collected.
    pub retain_generations: Option<usize>,
    /// Bounded retry schedule for tick-path store I/O (sync, lease
    /// renewal/claim): transient faults are absorbed here before they
    /// become health verdicts. [`RetryPolicy::none()`] restores
    /// single-attempt behavior.
    pub retry: RetryPolicy,
    /// Thresholds of the node's health state machine, fed one verdict
    /// per tick (after retries).
    pub health: HealthPolicy,
    /// Shared structured-event sink: lease transitions, model adoptions,
    /// and health changes are recorded here (labelled with the node
    /// name). A fleet passes one ring to every node so the trace
    /// interleaves; `None` disables event recording.
    pub events: Option<Arc<EventRing>>,
    /// Shared causal span ring: the leader's trainer roots a lineage
    /// trace per generation, its store publish records a `store_write`
    /// child, and every follower's adoption continues the same trace
    /// (stitched through the manifest's span context). A fleet passes
    /// one ring to every node so a generation's whole life lands in one
    /// trace; `None` disables span recording.
    pub spans: Option<Arc<SpanRing>>,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            name: "node".into(),
            serve: ServeConfig::default(),
            poll_interval_ms: 20,
            auto_poll: false,
            lease_ttl_ms: 500,
            failover: false,
            retain_generations: None,
            retry: RetryPolicy::default(),
            health: HealthPolicy::default(),
            events: None,
            spans: None,
        }
    }
}

/// The leader's persist-before-publish hook: each trained generation goes
/// to the shared store first — fenced by the lease term — and a store
/// failure vetoes the publish. After a successful persist the retention
/// GC runs (best-effort: a GC hiccup never vetoes a durably persisted
/// generation).
struct StorePublisher {
    store: Arc<dyn CheckpointStore>,
    /// The lease term this leadership stint publishes under.
    term: u64,
    retain_generations: Option<usize>,
    /// Running count of GC-collected checkpoints (shared with the node).
    gc_removed: Arc<AtomicU64>,
    /// Publishing node's name (span labels).
    node: String,
    /// Shared span ring: each persisted generation records a
    /// `store_write` child under the trainer's lineage trace.
    spans: Option<Arc<SpanRing>>,
}

impl StorePublisher {
    fn persist(
        &self,
        generation: u64,
        framed: &[u8],
        trace: Option<SpanContext>,
    ) -> io::Result<()> {
        self.store
            .publish_fenced_traced(generation, self.term, framed, trace)?;
        if let Some(keep) = self.retain_generations {
            if let Ok(removed) = self.store.retain(keep) {
                self.gc_removed.fetch_add(removed as u64, Ordering::Relaxed);
            }
        }
        Ok(())
    }
}

impl GenerationObserver for StorePublisher {
    fn on_checkpoint(&self, generation: u64, framed: &[u8]) -> io::Result<()> {
        self.persist(generation, framed, None)
    }

    fn on_checkpoint_traced(
        &self,
        generation: u64,
        framed: &[u8],
        trace: Option<SpanContext>,
    ) -> io::Result<()> {
        let mut span = match (&self.spans, trace) {
            (Some(ring), Some(ctx)) => ring.child_of(ctx, "store_write", &self.node),
            _ => SpanGuard::noop(),
        };
        if span.is_recording() {
            span.attr("generation", format!("{generation}"));
            span.attr("term", format!("{}", self.term));
        }
        let result = self.persist(generation, framed, trace);
        if result.is_err() && span.is_recording() {
            span.attr("error", "true");
        }
        result
    }
}

/// Tick-thread control: a `Condvar`-signalled stop flag, so dropping a
/// node interrupts the wait immediately instead of stalling up to a full
/// poll interval on a bare sleep.
struct PollControl {
    stop: Mutex<bool>,
    cv: Condvar,
}

/// Cluster-layer observability: counters and the sync-duration histogram
/// registered in the node's service registry (so one snapshot covers
/// serving and cluster behavior), plus the optional shared event ring.
struct NodeObs {
    /// Syncs that adopted a newer generation.
    sync_adoptions: Counter,
    /// Syncs / lease operations that failed after retries.
    sync_failures: Counter,
    /// Leases re-acquired in place by a sitting leader.
    lease_renewals: Counter,
    /// Self-promotions to leader (construction-time acquisition included).
    promotions: Counter,
    /// Step-downs (deposition, resignation, degraded resigns).
    demotions: Counter,
    /// Wall time of syncs that adopted a generation (fetch + decode +
    /// swap) — the node's sync-lag distribution.
    sync_hist: Arc<LatencyHistogram>,
    /// Health state as a gauge (0 = healthy, 1 = degraded, 2 =
    /// isolated), refreshed every tick so the telemetry sampler gets a
    /// per-node health series without polling the tracker.
    health_state: Gauge,
    events: Option<Arc<EventRing>>,
}

impl NodeObs {
    fn register(service: &OptimizerService, events: Option<Arc<EventRing>>) -> Self {
        let registry = service.metrics();
        NodeObs {
            sync_adoptions: registry.counter("cluster_sync_adoptions_total"),
            sync_failures: registry.counter("cluster_sync_failures_total"),
            lease_renewals: registry.counter("cluster_lease_renewals_total"),
            promotions: registry.counter("cluster_promotions_total"),
            demotions: registry.counter("cluster_demotions_total"),
            sync_hist: registry.histogram("cluster_sync_ms"),
            health_state: registry.gauge("cluster_health_state"),
            events,
        }
    }

    fn emit(&self, node: &str, kind: EventKind, detail: String) {
        if let Some(ring) = &self.events {
            ring.record(node, kind, detail);
        }
    }
}

/// State shared between a node, its background tick thread, and (while
/// leading) its trainer's observer.
struct NodeShared {
    name: String,
    service: Arc<OptimizerService>,
    store: Arc<dyn CheckpointStore>,
    /// Architecture template for decoding checkpoints: `load` requires a
    /// network of the right shape, and every fleet generation shares the
    /// construction-time architecture.
    template: ValueNet,
    /// Background tick interval.
    poll_interval: Duration,
    /// Cluster counters/histogram (registered in the service's metrics
    /// registry) and the optional shared event ring.
    obs: NodeObs,
    /// The fleet sink (feedback merge; the trainer of whoever leads
    /// drains it).
    sink: Arc<ExperienceSink>,
    /// Training assets used when this node leads (at construction for a
    /// constructed leader, at promotion for a candidate).
    trainer_cfg: TrainerConfig,
    replay_cfg: ReplayConfig,
    lease_ttl_ms: u64,
    failover: bool,
    retain_generations: Option<usize>,
    /// Retry schedule for tick-path store I/O, plus its accounting.
    retry: RetryPolicy,
    retry_stats: RetryStats,
    /// Per-tick store verdicts (after retries) drive this node's
    /// `Healthy → Degraded → Isolated` machine.
    health: HealthTracker,
    /// The lease term this node currently publishes under (0 = not
    /// leading).
    held_term: AtomicU64,
    /// Checkpoints collected by the retention GC under this node's
    /// leadership.
    gc_removed: Arc<AtomicU64>,
    /// Shared causal span ring (lineage traces across the fleet).
    spans: Option<Arc<SpanRing>>,
    /// The fleet trainer while this node leads. Behind a mutex so the
    /// tick thread can promote/demote; handles are `Arc` so accessors
    /// never hold the lock across a wait.
    trainer: Mutex<Option<Arc<BackgroundTrainer>>>,
}

impl NodeShared {
    /// One pull from the store: adopt the manifest's generation (and its
    /// minting term) if it is ahead of the locally served one. Returns
    /// the adopted generation, or `None` when already current (or the
    /// store is empty).
    fn sync(&self) -> io::Result<Option<u64>> {
        let Some(manifest) = self.store.manifest()? else {
            return Ok(None);
        };
        if manifest.generation <= self.service.model_generation() {
            return Ok(None);
        }
        let started = Instant::now();
        // Continue the generation's lineage trace (rooted by the minting
        // trainer, carried here through the manifest): this node's fetch/
        // decode/swap is one more `adopt` child of the same trace.
        let mut adopt_span = match (&self.spans, manifest.trace) {
            (Some(ring), Some(ctx)) => ring.child_of(ctx, "adopt", &self.name),
            _ => SpanGuard::noop(),
        };
        if adopt_span.is_recording() {
            adopt_span.attr("generation", format!("{}", manifest.generation));
            adopt_span.attr("term", format!("{}", manifest.term));
        }
        let framed = self.store.load(manifest.generation)?;
        let decoded = checkpoint::decode(&framed)?;
        let mut net = self.template.clone();
        net.load(&mut decoded.payload())?;
        // `publish_model_from` re-checks monotonicity under the slot lock,
        // so a concurrent manual sync racing the poller cannot double-apply
        // or regress; losing the race is not an error.
        let adopted = self
            .service
            .publish_model_from(Arc::new(net), manifest.generation, manifest.term)
            .then_some(manifest.generation);
        if adopt_span.is_recording() {
            adopt_span.attr("adopted", if adopted.is_some() { "true" } else { "false" });
        }
        adopt_span.end();
        if let Some(generation) = adopted {
            self.obs.sync_adoptions.inc();
            self.obs.sync_hist.record_ms_traced(
                started.elapsed().as_secs_f64() * 1e3,
                manifest.trace.map(|ctx| ctx.trace),
            );
            self.obs.emit(
                &self.name,
                EventKind::ModelSwap,
                format!("adopted generation {generation} (term {})", manifest.term),
            );
        }
        Ok(adopted)
    }

    /// Spins up this node's trainer under lease `term` (idempotent while
    /// already leading). The trainer publishes through a fenced
    /// [`StorePublisher`] and is labeled with the term, so everything it
    /// mints is attributable to this leadership stint.
    fn promote(&self, term: u64) {
        let mut slot = self.trainer.lock().expect("trainer slot poisoned");
        if slot.is_some() {
            return;
        }
        let observer = Arc::new(StorePublisher {
            store: Arc::clone(&self.store),
            term,
            retain_generations: self.retain_generations,
            gc_removed: Arc::clone(&self.gc_removed),
            node: self.name.clone(),
            spans: self.spans.clone(),
        });
        let mut trainer_cfg = self.trainer_cfg.clone();
        trainer_cfg.term = term;
        let trainer = BackgroundTrainer::spawn_with_observer(
            Arc::clone(&self.service),
            Arc::clone(&self.sink),
            self.replay_cfg,
            trainer_cfg,
            Some(observer),
        );
        *slot = Some(Arc::new(trainer));
        self.held_term.store(term, Ordering::Release);
        self.obs.promotions.inc();
        self.obs.emit(
            &self.name,
            EventKind::LeaseAcquired,
            format!("promoted under term {term}"),
        );
    }

    /// Steps down: stops the trainer (drain-then-stop — its last
    /// persisted generation is adopted or vetoed before the join), clears
    /// the held term, and reconciles with the store so an ex-leader is
    /// never left behind the history its successor continues.
    fn demote(&self) {
        let taken = self.trainer.lock().expect("trainer slot poisoned").take();
        let resigned_term = self.held_term.swap(0, Ordering::AcqRel);
        if taken.is_some() {
            self.obs.demotions.inc();
            self.obs.emit(
                &self.name,
                EventKind::LeaderResigned,
                format!("stepped down from term {resigned_term}"),
            );
        }
        // Dropping the handle stops and joins the trainer thread (unless
        // an accessor briefly holds another handle, in which case the
        // join happens when that handle drops).
        drop(taken);
        if self.sync().is_err() {
            self.obs.sync_failures.inc();
        }
    }

    /// One background tick: every node syncs from the store (a healthy
    /// leader's sync is a no-op manifest read, but a leader that came up
    /// behind the store's history — or whose in-flight generation lost a
    /// publish race — adopts the latest generation here instead of
    /// wedging on regression errors forever); then leaders renew the
    /// lease (stepping down on deposition) and candidates claim an
    /// expired one.
    ///
    /// Every store operation runs under the node's [`RetryPolicy`]; the
    /// tick's single overall verdict — success only if everything
    /// (eventually) succeeded — feeds the health machine, and a tick that
    /// leaves a leader Degraded makes it resign rather than limp toward
    /// a mid-publish lease lapse.
    fn tick(&self) {
        let mut tick_error: Option<String> = None;
        if let Err(e) = self.retry.run(&self.retry_stats, || self.sync()) {
            self.obs.sync_failures.inc();
            tick_error = Some(format!("sync: {e}"));
        }
        let held = self.held_term.load(Ordering::Acquire);
        if held > 0 {
            if let Err(e) = self.leader_tick(held) {
                tick_error.get_or_insert(format!("lease renewal: {e}"));
            }
        } else if self.failover && self.health.state() != HealthState::Isolated {
            // An Isolated candidate does not stand for election — a node
            // that cannot reach the store is the last node that should
            // hold its lease. (For everyone else `try_acquire_lease`
            // refuses a live lease held by someone else, so this stays a
            // cheap read until the leader actually dies.)
            match self.retry.run(&self.retry_stats, || {
                self.store
                    .try_acquire_lease(&self.name, now_ms(), self.lease_ttl_ms)
            }) {
                Ok(Some(lease)) => self.promote(lease.term),
                Ok(None) => {}
                Err(e) => {
                    self.obs.sync_failures.inc();
                    tick_error.get_or_insert(format!("lease claim: {e}"));
                }
            }
        }
        match tick_error {
            None => {
                self.health.record_success();
            }
            Some(err) => {
                let state = self.health.record_failure(err);
                if state >= HealthState::Degraded && self.held_term.load(Ordering::Acquire) > 0 {
                    // A Degraded leader resigns *before* its lease lapses
                    // mid-publish: release is best-effort (the store may be
                    // the very thing that's unreachable — the TTL then
                    // expires the lease for us), the demotion is not (the
                    // trainer drains and stops, so nothing keeps publishing
                    // under a leadership we've renounced).
                    let _ = self.store.release_lease(&self.name);
                    self.demote();
                }
            }
        }
        self.obs.health_state.set(match self.health.state() {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
            HealthState::Isolated => 2,
        });
    }

    /// The leading node's half of [`Self::tick`]: keep the lease alive,
    /// step down when deposed. `Err` means the renewal attempt itself
    /// failed (after retries) — deposition and self-re-election are
    /// `Ok` outcomes of a reachable store.
    fn leader_tick(&self, held: u64) -> io::Result<()> {
        // Renew-at-half-TTL: every renewal is a tmp+fsync+rename of the
        // lease file, so skip the write while more than half the TTL
        // remains (the read is cheap). A read hiccup just falls through
        // to the renewal attempt, which re-reads under the store's lock.
        let now = now_ms();
        if let Ok(Some(lease)) = self.store.read_lease() {
            if lease.holder == self.name
                && lease.term == held
                && lease.expires_at_ms.saturating_sub(now) > self.lease_ttl_ms / 2
            {
                return Ok(());
            }
        }
        // `now_ms()` is re-read inside the closure: backoff sleeps between
        // attempts would otherwise renew with an already-stale instant.
        match self.retry.run(&self.retry_stats, || {
            self.store
                .try_acquire_lease(&self.name, now_ms(), self.lease_ttl_ms)
        }) {
            Ok(Some(lease)) if lease.term == held => {
                self.obs.lease_renewals.inc();
                Ok(())
            }
            Ok(Some(lease)) => {
                // Our own lease expired (a tick stalled past the TTL) and
                // re-acquiring minted a fresh term — no successor
                // intervened (we hold the live lease), but the old term
                // is dead: anything the old-term trainer still publishes
                // must be fenceable. Re-elect ourselves in place — drain
                // the old trainer, then restart under the minted term —
                // instead of demoting and leaving the fleet leaderless
                // behind our own live lease.
                self.demote();
                self.promote(lease.term);
                Ok(())
            }
            Ok(None) => {
                // Deposed: a successor holds a live newer-term lease.
                self.demote();
                Ok(())
            }
            Err(e) => {
                // Store hiccup outlasting the retry budget: keep serving
                // and training this tick; the health verdict decides
                // whether we resign, and if the outage outlives the TTL a
                // successor will fence us regardless.
                self.obs.sync_failures.inc();
                Err(e)
            }
        }
    }
}

/// One member of the fleet. Construct with [`ClusterNode::leader`],
/// [`ClusterNode::follower`], or [`ClusterNode::candidate`]; all recover
/// to the store's latest generation before serving.
pub struct ClusterNode {
    shared: Arc<NodeShared>,
    poller: Option<(Arc<PollControl>, JoinHandle<()>)>,
    recovered_generation: Option<u64>,
}

impl ClusterNode {
    /// Builds the fleet **leader**: serves queries, trains the fleet's
    /// model on the merged experience in `sink` (attach the same sink to
    /// every node's service), and publishes each generation to `store`
    /// before swapping it in. Claims the store's leader lease first —
    /// refused with [`io::ErrorKind::WouldBlock`] when another node holds
    /// a live lease (build a [`Self::candidate`] instead and let the
    /// protocol elect). A leader constructed over a non-empty store first
    /// recovers to the latest published generation and mints subsequent
    /// generations after it.
    #[allow(clippy::too_many_arguments)] // the leader owns the full loop: serving + training + store
    pub fn leader(
        db: Arc<Database>,
        featurizer: Arc<neo::Featurizer>,
        net: Arc<ValueNet>,
        cfg: NodeConfig,
        trainer_cfg: TrainerConfig,
        replay: ReplayConfig,
        store: Arc<dyn CheckpointStore>,
        sink: Arc<ExperienceSink>,
    ) -> io::Result<Self> {
        let auto_poll = cfg.auto_poll;
        // A leader renewing from the tick thread has the same thrash
        // constraint as a candidate (see `build`); a leader *without* a
        // tick thread deliberately lets its lease expire (single-leader
        // test setups), which is allowed.
        assert!(
            !auto_poll || cfg.lease_ttl_ms > cfg.poll_interval_ms,
            "lease_ttl_ms ({}) must exceed poll_interval_ms ({}) for an auto-polling leader",
            cfg.lease_ttl_ms,
            cfg.poll_interval_ms
        );
        let mut node = Self::build(db, featurizer, net, cfg, trainer_cfg, replay, store, sink)?;
        let lease = node
            .shared
            .store
            .try_acquire_lease(&node.shared.name, now_ms(), node.shared.lease_ttl_ms)?
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::WouldBlock,
                    format!(
                        "leader({}): the store's lease is live under another holder; \
                         construct a candidate and let the lease protocol elect",
                        node.shared.name
                    ),
                )
            })?;
        node.shared.promote(lease.term);
        if auto_poll {
            node.start_polling();
        }
        Ok(node)
    }

    /// Builds a **follower**: serves queries, forwards execution feedback
    /// into the fleet sink, and adopts generations from the store
    /// (immediately at construction — crash recovery — and then via
    /// [`Self::sync`] or the background tick thread). A follower with
    /// [`NodeConfig::failover`] set promotes with *default* training
    /// configuration; use [`Self::candidate`] to control what a promoted
    /// node trains with.
    pub fn follower(
        db: Arc<Database>,
        featurizer: Arc<neo::Featurizer>,
        net: Arc<ValueNet>,
        cfg: NodeConfig,
        store: Arc<dyn CheckpointStore>,
        sink: Arc<ExperienceSink>,
    ) -> io::Result<Self> {
        Self::candidate(
            db,
            featurizer,
            net,
            cfg,
            TrainerConfig::default(),
            ReplayConfig::default(),
            store,
            sink,
        )
    }

    /// A follower carrying the training assets it would lead with: when
    /// [`NodeConfig::failover`] is set and the leader's lease expires,
    /// the node claims the next term and spins up its own
    /// [`BackgroundTrainer`] (same merged sink, fenced store publishes).
    #[allow(clippy::too_many_arguments)] // a candidate is a whole latent leader
    pub fn candidate(
        db: Arc<Database>,
        featurizer: Arc<neo::Featurizer>,
        net: Arc<ValueNet>,
        cfg: NodeConfig,
        trainer_cfg: TrainerConfig,
        replay: ReplayConfig,
        store: Arc<dyn CheckpointStore>,
        sink: Arc<ExperienceSink>,
    ) -> io::Result<Self> {
        let auto_poll = cfg.auto_poll;
        let mut node = Self::build(db, featurizer, net, cfg, trainer_cfg, replay, store, sink)?;
        if auto_poll {
            node.start_polling();
        }
        Ok(node)
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        db: Arc<Database>,
        featurizer: Arc<neo::Featurizer>,
        net: Arc<ValueNet>,
        cfg: NodeConfig,
        trainer_cfg: TrainerConfig,
        replay_cfg: ReplayConfig,
        store: Arc<dyn CheckpointStore>,
        sink: Arc<ExperienceSink>,
    ) -> io::Result<Self> {
        // Misconfiguration fails loudly, not silently: a candidate whose
        // promotion path never runs (no tick thread) would quietly leave
        // the fleet leaderless forever after a crash, and a lease that
        // can expire between ticks would thrash demote/re-elect cycles.
        if cfg.failover {
            assert!(
                cfg.auto_poll,
                "NodeConfig {{ failover: true }} requires auto_poll: promotion happens on \
                 the background tick thread"
            );
            assert!(
                cfg.lease_ttl_ms > cfg.poll_interval_ms,
                "lease_ttl_ms ({}) must exceed poll_interval_ms ({}): a lease shorter than \
                 the tick interval expires between renewals and thrashes leadership",
                cfg.lease_ttl_ms,
                cfg.poll_interval_ms
            );
        }
        let template = (*net).clone();
        let service = Arc::new(OptimizerService::new(db, featurizer, net, cfg.serve));
        assert!(
            service.set_feedback(Arc::clone(&sink) as _),
            "fresh service already had feedback attached"
        );
        let obs = NodeObs::register(&service, cfg.events.clone());
        let retry_stats = RetryStats::new();
        retry_stats.bind_metrics(service.metrics(), "cluster");
        let health = HealthTracker::new(cfg.health);
        if let Some(ring) = &cfg.events {
            health.attach_events(Arc::clone(ring), cfg.name.clone());
        }
        // The trainer (whenever this node leads) roots its lineage traces
        // in the fleet's shared ring, labelled with this node's name.
        let mut trainer_cfg = trainer_cfg;
        trainer_cfg.spans = cfg.spans.clone();
        trainer_cfg.span_node = cfg.name.clone();
        let shared = Arc::new(NodeShared {
            name: cfg.name,
            service,
            store,
            template,
            poll_interval: Duration::from_millis(cfg.poll_interval_ms.max(1)),
            obs,
            sink,
            trainer_cfg,
            replay_cfg,
            lease_ttl_ms: cfg.lease_ttl_ms.max(1),
            failover: cfg.failover,
            retain_generations: cfg.retain_generations,
            retry: cfg.retry,
            retry_stats,
            health,
            held_term: AtomicU64::new(0),
            gc_removed: Arc::new(AtomicU64::new(0)),
            spans: cfg.spans,
            trainer: Mutex::new(None),
        });
        // Warm recovery: a (re)started node adopts the fleet's latest
        // published generation before it serves a single query — no
        // retraining, and the (empty) cache is demoted to seeds exactly as
        // a live swap would.
        let recovered_generation = shared.sync()?;
        Ok(ClusterNode {
            shared,
            poller: None,
            recovered_generation,
        })
    }

    /// The node's name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// The node's optimizer service (optimize queries, report feedback).
    pub fn service(&self) -> &Arc<OptimizerService> {
        &self.shared.service
    }

    /// The model generation this node currently serves.
    pub fn generation(&self) -> u64 {
        self.shared.service.model_generation()
    }

    /// The lease term that minted the served generation (0 before any
    /// termed publish reached this node) — the cross-node provenance
    /// witness: survivors of a failover all serve the successor's term.
    pub fn served_term(&self) -> u64 {
        self.shared.service.model_term()
    }

    /// The generation recovered from the store at construction, if the
    /// store was non-empty — the "restart lands warm" witness.
    pub fn recovered_generation(&self) -> Option<u64> {
        self.recovered_generation
    }

    /// Store syncs that failed (manifest unreadable, checkpoint corrupt);
    /// the node keeps serving its current generation through them. With a
    /// retrying policy this counts *exhausted* operations — a fault
    /// absorbed by a retry is a recovery ([`Self::retry_stats`]), not a
    /// failure.
    pub fn sync_failures(&self) -> u64 {
        self.shared.obs.sync_failures.get()
    }

    /// This node's current health state (the consecutive-failure machine
    /// fed one verdict per tick, after retries).
    pub fn health_state(&self) -> HealthState {
        self.shared.health.state()
    }

    /// Full health counters (transitions, degraded/isolated entries,
    /// recoveries, last error).
    pub fn health(&self) -> HealthSnapshot {
        self.shared.health.snapshot()
    }

    /// Tick-path store-retry accounting: attempts, retries, faults
    /// recovered by a retry, and operations that exhausted the budget.
    pub fn retry_stats(&self) -> RetrySnapshot {
        self.shared.retry_stats.snapshot()
    }

    /// Whether this node currently leads (holds the lease and runs the
    /// trainer).
    pub fn is_leader(&self) -> bool {
        self.shared
            .trainer
            .lock()
            .expect("trainer slot poisoned")
            .is_some()
    }

    /// The lease term this node currently publishes under (0 when not
    /// leading).
    pub fn term(&self) -> u64 {
        self.shared.held_term.load(Ordering::Acquire)
    }

    /// How many times this node promoted itself to leader (construction-
    /// time acquisition included).
    pub fn promotions(&self) -> u64 {
        self.shared.obs.promotions.get()
    }

    /// Checkpoints collected by the retention GC under this node's
    /// leadership stints.
    pub fn gc_removed(&self) -> u64 {
        self.shared.gc_removed.load(Ordering::Relaxed)
    }

    /// The trainer handle while this node leads (request/wait/history/
    /// checkpoints). The handle is a clone; keep it short-lived — a
    /// demotion joins the trainer only once the last handle drops.
    ///
    /// # Panics
    /// Panics when this node is not currently the leader.
    pub fn trainer(&self) -> Arc<BackgroundTrainer> {
        self.try_trainer()
            .expect("trainer(): this node is not currently the leader")
    }

    /// [`Self::trainer`] without the panic: `None` when this node is not
    /// currently leading — for callers racing leadership churn (a node
    /// can demote between an `is_leader` check and the handle grab).
    pub fn try_trainer(&self) -> Option<Arc<BackgroundTrainer>> {
        self.shared
            .trainer
            .lock()
            .expect("trainer slot poisoned")
            .clone()
    }

    /// One explicit store pull; see [`NodeShared::sync`]. The leader
    /// normally never needs this (it publishes what it trains), but a
    /// recovering leader uses the same path at construction.
    pub fn sync(&self) -> io::Result<Option<u64>> {
        self.shared.sync()
    }

    /// Steps down voluntarily: releases the lease (clean handoff — the
    /// next candidate claims it without waiting out the TTL), stops the
    /// trainer with drain-then-stop semantics, and re-syncs. A no-op on a
    /// non-leader. The tick thread is quiesced around the release/demote
    /// pair so a concurrent renewal cannot re-mint the lease mid-resign;
    /// afterwards this node competes like any other candidate — the
    /// protocol may legitimately re-elect it.
    pub fn resign(&mut self) -> io::Result<bool> {
        if self.term() == 0 {
            return Ok(false);
        }
        let had_poller = self.poller.is_some();
        self.stop_polling();
        let result = (|| {
            let released = self.shared.store.release_lease(&self.shared.name)?;
            self.shared.demote();
            Ok(released)
        })();
        if had_poller {
            self.start_polling();
        }
        result
    }

    /// Spawns the background tick thread (idempotent): followers sync the
    /// manifest — once eagerly before the first wait — and candidates
    /// watch the lease; the leader renews it. Errors are counted
    /// ([`Self::sync_failures`]) and retried next interval.
    pub fn start_polling(&mut self) {
        if self.poller.is_some() {
            return;
        }
        let control = Arc::new(PollControl {
            stop: Mutex::new(false),
            cv: Condvar::new(),
        });
        let shared = Arc::clone(&self.shared);
        let thread_control = Arc::clone(&control);
        let handle = std::thread::Builder::new()
            .name(format!("neo-cluster-poll-{}", shared.name))
            .spawn(move || loop {
                // Tick first (the eager initial sync), wait after — and
                // the wait is a condvar, so a stop request interrupts it
                // immediately instead of sleeping out the interval.
                shared.tick();
                let stopped = thread_control.stop.lock().expect("poll control poisoned");
                let (stopped, _) = thread_control
                    .cv
                    .wait_timeout_while(stopped, shared.poll_interval, |stop| !*stop)
                    .expect("poll control poisoned");
                if *stopped {
                    return;
                }
            })
            .expect("spawn poller thread");
        self.poller = Some((control, handle));
    }

    /// Stops the background tick thread (if running) and joins it,
    /// propagating a poller panic with its thread name. The condvar stop
    /// signal returns the thread mid-wait, so this costs at most one
    /// in-flight tick, never a full poll interval.
    pub fn stop_polling(&mut self) {
        if let Some((control, handle)) = self.poller.take() {
            *control.stop.lock().expect("poll control poisoned") = true;
            control.cv.notify_all();
            join_named_or_ignore_during_unwind(handle);
        }
    }
}

impl Drop for ClusterNode {
    fn drop(&mut self) {
        // Tick thread first (it can promote/demote), then the trainer:
        // taking it out of the shared slot stops and joins it with
        // drain-then-stop semantics. The lease is *not* released — drop
        // is indistinguishable from a crash to the rest of the fleet, and
        // failover must work for crashes; call [`ClusterNode::resign`]
        // first for a clean handoff.
        self.stop_polling();
        let taken = self
            .shared
            .trainer
            .lock()
            .expect("trainer slot poisoned")
            .take();
        drop(taken);
    }
}
