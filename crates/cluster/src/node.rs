//! One node of the optimization fleet: an [`OptimizerService`] wired to
//! the shared [`CheckpointStore`].
//!
//! Every node serves queries from its own worker pool and forwards its
//! execution feedback into the fleet's shared experience sink. What a
//! node does with *models* depends on its role:
//!
//! * the **leader** runs the fleet's only [`BackgroundTrainer`] against
//!   the merged experience and publishes each trained generation to the
//!   store *before* serving it (a [`GenerationObserver`] with veto power
//!   — a generation the fleet cannot fetch never goes live anywhere);
//! * a **follower** polls the store's manifest ([`ClusterNode::sync`],
//!   optionally on a background thread) and adopts new generations
//!   through its service's swap hook
//!   ([`OptimizerService::publish_model_as`]) — the same swap-then-
//!   epoch-bump path a local publish takes, so cached plans demote to
//!   warm-start seeds identically.
//!
//! **Crash recovery is the same code path as a routine sync.** A node
//! constructed over a non-empty store immediately loads the manifest's
//! generation before serving anything — so a killed-and-restarted node
//! comes back warm at the fleet's current generation with zero
//! retraining, and a node that missed ten generations while partitioned
//! just jumps to the newest one (generations are cumulative snapshots,
//! not deltas).

use crate::store::CheckpointStore;
use neo::{checkpoint, ValueNet};
use neo_learn::{
    BackgroundTrainer, ExperienceSink, GenerationObserver, ReplayConfig, TrainerConfig,
};
use neo_serve::{join_named_or_ignore_during_unwind, OptimizerService, ServeConfig};
use neo_storage::Database;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-node configuration.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// Node name (thread names, diagnostics).
    pub name: String,
    /// The node-local serving configuration.
    pub serve: ServeConfig,
    /// Manifest poll interval for the follower's background poller.
    pub poll_interval_ms: u64,
    /// Spawn the background poller at construction (followers only;
    /// explicit [`ClusterNode::sync`] works either way).
    pub auto_poll: bool,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            name: "node".into(),
            serve: ServeConfig::default(),
            poll_interval_ms: 20,
            auto_poll: false,
        }
    }
}

/// The leader's persist-before-publish hook: each trained generation goes
/// to the shared store first; a store failure vetoes the publish.
struct StorePublisher {
    store: Arc<dyn CheckpointStore>,
}

impl GenerationObserver for StorePublisher {
    fn on_checkpoint(&self, generation: u64, framed: &[u8]) -> io::Result<()> {
        self.store.publish(generation, framed)
    }
}

/// State shared between a node and its background poller thread.
struct NodeShared {
    name: String,
    service: Arc<OptimizerService>,
    store: Arc<dyn CheckpointStore>,
    /// Architecture template for decoding checkpoints: `load` requires a
    /// network of the right shape, and every fleet generation shares the
    /// construction-time architecture.
    template: ValueNet,
    /// Background-poller interval.
    poll_interval: Duration,
    /// Manifest reads / checkpoint loads that failed (the node keeps
    /// serving its current generation through store hiccups).
    sync_failures: AtomicU64,
}

impl NodeShared {
    /// One pull from the store: adopt the manifest's generation if it is
    /// ahead of the locally served one. Returns the adopted generation,
    /// or `None` when already current (or the store is empty).
    fn sync(&self) -> io::Result<Option<u64>> {
        let Some(latest) = self.store.latest_generation()? else {
            return Ok(None);
        };
        if latest <= self.service.model_generation() {
            return Ok(None);
        }
        let framed = self.store.load(latest)?;
        let decoded = checkpoint::decode(&framed)?;
        let mut net = self.template.clone();
        net.load(&mut decoded.payload())?;
        // `publish_model_as` re-checks monotonicity under the slot lock, so
        // a concurrent manual sync racing the poller cannot double-apply or
        // regress; losing the race is not an error.
        Ok(self
            .service
            .publish_model_as(Arc::new(net), latest)
            .then_some(latest))
    }
}

/// One member of the fleet. Construct with [`ClusterNode::leader`] or
/// [`ClusterNode::follower`]; both recover to the store's latest
/// generation before serving.
pub struct ClusterNode {
    shared: Arc<NodeShared>,
    /// The fleet trainer (leader only).
    trainer: Option<BackgroundTrainer>,
    poller: Option<(Arc<AtomicBool>, JoinHandle<()>)>,
    recovered_generation: Option<u64>,
}

impl ClusterNode {
    /// Builds the fleet **leader**: serves queries, trains the fleet's
    /// model on the merged experience in `sink` (attach the same sink to
    /// every node's service), and publishes each generation to `store`
    /// before swapping it in. A leader constructed over a non-empty store
    /// first recovers to the latest published generation and mints
    /// subsequent generations after it.
    #[allow(clippy::too_many_arguments)] // the leader owns the full loop: serving + training + store
    pub fn leader(
        db: Arc<Database>,
        featurizer: Arc<neo::Featurizer>,
        net: Arc<ValueNet>,
        cfg: NodeConfig,
        trainer_cfg: TrainerConfig,
        replay: ReplayConfig,
        store: Arc<dyn CheckpointStore>,
        sink: Arc<ExperienceSink>,
    ) -> io::Result<Self> {
        let mut node = Self::build(db, featurizer, net, cfg, store, Arc::clone(&sink))?;
        let observer = Arc::new(StorePublisher {
            store: Arc::clone(&node.shared.store),
        });
        node.trainer = Some(BackgroundTrainer::spawn_with_observer(
            Arc::clone(&node.shared.service),
            sink,
            replay,
            trainer_cfg,
            Some(observer),
        ));
        Ok(node)
    }

    /// Builds a **follower**: serves queries, forwards execution feedback
    /// into the fleet sink, and adopts generations from the store
    /// (immediately at construction — crash recovery — and then via
    /// [`Self::sync`] or the background poller).
    pub fn follower(
        db: Arc<Database>,
        featurizer: Arc<neo::Featurizer>,
        net: Arc<ValueNet>,
        cfg: NodeConfig,
        store: Arc<dyn CheckpointStore>,
        sink: Arc<ExperienceSink>,
    ) -> io::Result<Self> {
        let auto_poll = cfg.auto_poll;
        let mut node = Self::build(db, featurizer, net, cfg, store, sink)?;
        if auto_poll {
            node.start_polling();
        }
        Ok(node)
    }

    fn build(
        db: Arc<Database>,
        featurizer: Arc<neo::Featurizer>,
        net: Arc<ValueNet>,
        cfg: NodeConfig,
        store: Arc<dyn CheckpointStore>,
        sink: Arc<ExperienceSink>,
    ) -> io::Result<Self> {
        let template = (*net).clone();
        let service = Arc::new(OptimizerService::new(db, featurizer, net, cfg.serve));
        assert!(
            service.set_feedback(sink as _),
            "fresh service already had feedback attached"
        );
        let shared = Arc::new(NodeShared {
            name: cfg.name,
            service,
            store,
            template,
            poll_interval: Duration::from_millis(cfg.poll_interval_ms.max(1)),
            sync_failures: AtomicU64::new(0),
        });
        // Warm recovery: a (re)started node adopts the fleet's latest
        // published generation before it serves a single query — no
        // retraining, and the (empty) cache is demoted to seeds exactly as
        // a live swap would.
        let recovered_generation = shared.sync()?;
        Ok(ClusterNode {
            shared,
            trainer: None,
            poller: None,
            recovered_generation,
        })
    }

    /// The node's name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// The node's optimizer service (optimize queries, report feedback).
    pub fn service(&self) -> &Arc<OptimizerService> {
        &self.shared.service
    }

    /// The model generation this node currently serves.
    pub fn generation(&self) -> u64 {
        self.shared.service.model_generation()
    }

    /// The generation recovered from the store at construction, if the
    /// store was non-empty — the "restart lands warm" witness.
    pub fn recovered_generation(&self) -> Option<u64> {
        self.recovered_generation
    }

    /// Store syncs that failed (manifest unreadable, checkpoint corrupt);
    /// the node keeps serving its current generation through them.
    pub fn sync_failures(&self) -> u64 {
        self.shared.sync_failures.load(Ordering::Relaxed)
    }

    /// Whether this node is the fleet leader (owns the trainer).
    pub fn is_leader(&self) -> bool {
        self.trainer.is_some()
    }

    /// The leader's trainer handle (request/wait/history/checkpoints).
    ///
    /// # Panics
    /// Panics on a follower.
    pub fn trainer(&self) -> &BackgroundTrainer {
        self.trainer
            .as_ref()
            .expect("trainer(): this node is a follower")
    }

    /// One explicit store pull; see [`NodeShared::sync`]. The leader
    /// normally never needs this (it publishes what it trains), but a
    /// recovering leader uses the same path at construction.
    pub fn sync(&self) -> io::Result<Option<u64>> {
        self.shared.sync()
    }

    /// Spawns the background manifest poller (idempotent). Errors are
    /// counted ([`Self::sync_failures`]) and retried next interval.
    pub fn start_polling(&mut self) {
        if self.poller.is_some() {
            return;
        }
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::clone(&self.shared);
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(format!("neo-cluster-poll-{}", shared.name))
            .spawn(move || {
                while !thread_stop.load(Ordering::Acquire) {
                    if shared.sync().is_err() {
                        shared.sync_failures.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::sleep(shared.poll_interval);
                }
            })
            .expect("spawn poller thread");
        self.poller = Some((stop, handle));
    }

    /// Stops the background poller (if running) and joins it, propagating
    /// a poller panic with its thread name.
    pub fn stop_polling(&mut self) {
        if let Some((stop, handle)) = self.poller.take() {
            stop.store(true, Ordering::Release);
            join_named_or_ignore_during_unwind(handle);
        }
    }
}

impl Drop for ClusterNode {
    fn drop(&mut self) {
        self.stop_polling();
        // The trainer (if any) stops and joins in its own Drop.
    }
}
