//! The `neo-gateway` binary: one fleet node served over TCP.
//!
//! Roles:
//!
//! * `standalone` — an [`OptimizerService`] with no cluster: serve,
//!   learn nothing, coordinate with nobody (demos, wire tests);
//! * `leader` — a [`ClusterNode`] leader over a shared
//!   [`FsCheckpointStore`] directory: acquires the (now multi-process
//!   safe) lease, trains on experience arriving over the wire, and
//!   publishes generations to the store;
//! * `follower` — a [`ClusterNode`] follower: adopts generations from
//!   the store and, when `--leader ADDR` is given, ships its local
//!   execution feedback to the leader's gateway in batches.
//!
//! Processes coordinate **only** through the store directory and
//! sockets — no shared memory, no pipes. Once serving, the binary
//! prints `NEO_GATEWAY_ADDR=<ip:port>` on stdout (the parent reads it
//! to learn the bound port) and runs until a `shutdown` frame arrives,
//! then drains in-flight connections and exits 0.
//!
//! ```text
//! neo-gateway --role leader --store /tmp/fleet --listen 127.0.0.1:0 \
//!             --scale 0.05 --seed 42 --workers 4
//! ```

use neo::{Featurization, Featurizer, NetConfig, ValueNet};
use neo_cluster::{CheckpointStore, ClusterNode, FsCheckpointStore, NodeConfig};
use neo_gateway::client::TcpExperienceTransport;
use neo_gateway::server::{Gateway, GatewayConfig};
use neo_learn::{ExperienceRelay, ExperienceSink, ReplayConfig, TrainerConfig};
use neo_serve::{AdminHooks, NoHooks, OptimizerService, ServeConfig};
use std::io::Write;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Parsed command line.
struct Args {
    role: String,
    store: Option<String>,
    listen: String,
    leader: Option<String>,
    scale: f64,
    seed: u64,
    workers: usize,
    name: String,
    lease_ttl_ms: u64,
    poll_ms: u64,
    ship_ms: u64,
    min_new_records: u64,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            role: "standalone".to_string(),
            store: None,
            listen: "127.0.0.1:0".to_string(),
            leader: None,
            scale: 0.02,
            seed: 42,
            workers: 2,
            name: String::new(),
            lease_ttl_ms: 2_000,
            poll_ms: 50,
            ship_ms: 100,
            min_new_records: 16,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let flag = argv[i].as_str();
            let value = |i: &mut usize| -> Result<String, String> {
                *i += 1;
                argv.get(*i)
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match flag {
                "--role" => args.role = value(&mut i)?,
                "--store" => args.store = Some(value(&mut i)?),
                "--listen" => args.listen = value(&mut i)?,
                "--leader" => args.leader = Some(value(&mut i)?),
                "--scale" => args.scale = parse(&value(&mut i)?, flag)?,
                "--seed" => args.seed = parse(&value(&mut i)?, flag)?,
                "--workers" => args.workers = parse(&value(&mut i)?, flag)?,
                "--name" => args.name = value(&mut i)?,
                "--lease-ttl-ms" => args.lease_ttl_ms = parse(&value(&mut i)?, flag)?,
                "--poll-ms" => args.poll_ms = parse(&value(&mut i)?, flag)?,
                "--ship-ms" => args.ship_ms = parse(&value(&mut i)?, flag)?,
                "--min-new-records" => args.min_new_records = parse(&value(&mut i)?, flag)?,
                other => return Err(format!("unknown flag {other}")),
            }
            i += 1;
        }
        if args.name.is_empty() {
            args.name = format!("{}-{}", args.role, std::process::id());
        }
        match args.role.as_str() {
            "standalone" => {}
            "leader" | "follower" if args.store.is_some() => {}
            "leader" | "follower" => return Err("--store is required for cluster roles".into()),
            other => return Err(format!("unknown role {other}")),
        }
        Ok(args)
    }
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad value for {flag}: {s}"))
}

/// Admin hooks over a cluster node: resign goes to the lease protocol.
struct NodeHooks {
    node: Mutex<ClusterNode>,
    name: String,
    role: &'static str,
}

impl AdminHooks for NodeHooks {
    fn node(&self) -> String {
        self.name.clone()
    }

    fn role(&self) -> String {
        let node = self.node.lock().unwrap_or_else(|p| p.into_inner());
        if node.is_leader() {
            "leader"
        } else {
            self.role
        }
        .to_string()
    }

    fn resign(&self) -> bool {
        let mut node = self.node.lock().unwrap_or_else(|p| p.into_inner());
        node.resign().unwrap_or(false)
    }
}

fn main() -> ExitCode {
    let args = match Args::parse() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("neo-gateway: {msg}");
            return ExitCode::from(2);
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("neo-gateway: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Args) -> std::io::Result<()> {
    // Deterministic node bring-up: same scale+seed ⇒ byte-identical
    // schema, featurizer, and generation-0 weights on every process.
    let db = Arc::new(neo_storage::datagen::imdb::generate(args.scale, args.seed));
    let featurizer = Arc::new(Featurizer::new(&db, Featurization::Histogram));
    let net = Arc::new(ValueNet::new(
        featurizer.query_dim(),
        featurizer.plan_channels(),
        NetConfig::default(),
        args.seed,
    ));
    let serve_cfg = ServeConfig {
        workers: args.workers,
        ..ServeConfig::default()
    };

    // Role wiring. The relay/node handles live to the end of `run` so
    // background threads stop after the gateway has drained.
    let service: Arc<OptimizerService>;
    let hooks: Arc<dyn AdminHooks>;
    let mut relay: Option<ExperienceRelay> = None;
    let mut experience: Option<Arc<ExperienceSink>> = None;

    match args.role.as_str() {
        "standalone" => {
            service = Arc::new(OptimizerService::new(db, featurizer, net, serve_cfg));
            hooks = Arc::new(NoHooks);
        }
        role @ ("leader" | "follower") => {
            let dir = args.store.as_deref().expect("validated in Args::parse");
            let store: Arc<dyn CheckpointStore> = Arc::new(FsCheckpointStore::open(dir)?);
            let sink = Arc::new(ExperienceSink::default());
            let node_cfg = NodeConfig {
                name: args.name.clone(),
                serve: serve_cfg,
                poll_interval_ms: args.poll_ms,
                auto_poll: true,
                lease_ttl_ms: args.lease_ttl_ms,
                ..NodeConfig::default()
            };
            let node = if role == "leader" {
                let trainer_cfg = TrainerConfig {
                    auto: true,
                    min_new_records: args.min_new_records,
                    seed: args.seed,
                    span_node: args.name.clone(),
                    ..TrainerConfig::default()
                };
                ClusterNode::leader(
                    db,
                    featurizer,
                    net,
                    node_cfg,
                    trainer_cfg,
                    ReplayConfig::default(),
                    store,
                    Arc::clone(&sink),
                )?
            } else {
                ClusterNode::follower(db, featurizer, net, node_cfg, store, Arc::clone(&sink))?
            };
            service = Arc::clone(node.service());
            if role == "leader" {
                // Wire-shipped experience lands in the trainer's sink.
                experience = Some(Arc::clone(&sink));
            } else if let Some(leader_addr) = &args.leader {
                relay = Some(ExperienceRelay::spawn(
                    Arc::clone(&sink),
                    Arc::new(TcpExperienceTransport::new(leader_addr.clone())),
                    Duration::from_millis(args.ship_ms.max(1)),
                ));
            }
            hooks = Arc::new(NodeHooks {
                node: Mutex::new(node),
                name: args.name.clone(),
                role: if role == "leader" {
                    "leader"
                } else {
                    "follower"
                },
            });
        }
        _ => unreachable!("validated in Args::parse"),
    }

    let gateway_cfg = GatewayConfig {
        listen: args.listen.clone(),
        workers: args.workers.max(2),
        node: args.name.clone(),
        ..GatewayConfig::default()
    };
    let mut gateway = Gateway::serve(service, hooks, experience, gateway_cfg)?;
    // The parent process parses this exact line to learn the port.
    println!("NEO_GATEWAY_ADDR={}", gateway.local_addr());
    std::io::stdout().flush()?;
    eprintln!(
        "neo-gateway: {} ({}) serving on {}",
        args.name,
        args.role,
        gateway.local_addr()
    );

    // Serve until a shutdown frame flips the flag; join = drained.
    gateway.join();
    // Final flush of any experience still staged locally, then stop the
    // background threads (relay first, so its last ship can still reach
    // a leader that is not us).
    if let Some(mut r) = relay.take() {
        r.stop();
    }
    eprintln!("neo-gateway: {} drained, exiting", args.name);
    Ok(())
}
