//! The gateway server: a non-blocking accept loop feeding connection
//! handlers into the existing [`WorkerPool`], with graceful shutdown
//! that drains in-flight connections.
//!
//! # Shutdown semantics
//!
//! Shutdown is triggered by a `shutdown` frame from any client or by
//! [`Gateway::shutdown`]. The accept loop stops admitting new
//! connections immediately; existing connections finish the request
//! they are processing (handlers poll the shutdown flag between reads,
//! bounded by the read timeout) and close; the accept thread then joins
//! the worker pool — which blocks until every handler has returned — so
//! [`Gateway::join`] returning means zero in-flight requests were
//! abandoned.
//!
//! # Robustness
//!
//! The accept loop never dies on a bad peer: malformed frames get a
//! typed [`Response::Error`] answer (or, when framing itself is broken,
//! the connection is dropped after one best-effort error frame), and
//! every per-connection panic would be confined to its worker — but
//! handlers are panic-free by construction: decode errors are values.

use crate::wire::{self, encode_response, parse_header, Request, Response, WireError, HEADER_LEN};
use neo_learn::ExperienceSink;
use neo_obs::{Counter, Gauge, LatencyHistogram, SpanContext};
use neo_query::Query;
use neo_serve::{dispatch, AdminHooks, ApiRequest, ApiResponse, OptimizerService, WorkerPool};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Gateway server knobs.
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Bind address; port 0 picks a free port (read it back from
    /// [`Gateway::local_addr`]).
    pub listen: String,
    /// Connection-handler workers — the concurrency cap on simultaneous
    /// connections (excess connections wait in the pool's queue).
    pub workers: usize,
    /// Node label for spans and diagnostics.
    pub node: String,
    /// Per-read poll interval: how quickly an idle handler notices the
    /// shutdown flag. Also the accept loop's sleep when idle.
    pub poll: Duration,
    /// How long a handler keeps retrying a *partially received* frame
    /// before declaring the peer stuck and dropping the connection.
    pub stuck_peer_patience: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            listen: "127.0.0.1:0".to_string(),
            workers: 4,
            node: "gateway".to_string(),
            poll: Duration::from_millis(25),
            stuck_peer_patience: Duration::from_secs(10),
        }
    }
}

/// Shared handler state.
struct GatewayShared {
    service: Arc<OptimizerService>,
    hooks: Arc<dyn AdminHooks>,
    /// Where shipped experience batches land when this node hosts the
    /// fleet's trainer (the leader). `None` routes batch records through
    /// the ordinary report path instead.
    experience: Option<Arc<ExperienceSink>>,
    shutdown: Arc<AtomicBool>,
    node: String,
    poll: Duration,
    stuck_peer_patience: Duration,
    // Socket-path observability, registered into the service's existing
    // MetricsRegistry so obs-report and the SLO engine see the wire path
    // with no new plumbing.
    connections: Counter,
    requests: Counter,
    wire_errors: Counter,
    active: Gauge,
    active_count: AtomicU64,
    request_hist: Arc<LatencyHistogram>,
}

/// A running gateway. Dropping it shuts down and joins the accept
/// thread (draining in-flight connections first).
pub struct Gateway {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Gateway {
    /// Binds and starts serving `service` at `cfg.listen`.
    pub fn serve(
        service: Arc<OptimizerService>,
        hooks: Arc<dyn AdminHooks>,
        experience: Option<Arc<ExperienceSink>>,
        cfg: GatewayConfig,
    ) -> io::Result<Gateway> {
        let listener = TcpListener::bind(&cfg.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let registry = Arc::clone(service.metrics());
        let shared = Arc::new(GatewayShared {
            connections: registry.counter("gateway_connections_total"),
            requests: registry.counter("gateway_requests_total"),
            wire_errors: registry.counter("gateway_wire_errors_total"),
            active: registry.gauge("gateway_active_connections"),
            active_count: AtomicU64::new(0),
            request_hist: registry.histogram("gateway_request_ms"),
            service,
            hooks,
            experience,
            shutdown: Arc::new(AtomicBool::new(false)),
            node: cfg.node.clone(),
            poll: cfg.poll,
            stuck_peer_patience: cfg.stuck_peer_patience,
        });
        let shutdown = Arc::clone(&shared.shutdown);
        let workers = cfg.workers.max(1);
        let accept_thread = std::thread::Builder::new()
            .name(format!("{}-accept", cfg.node))
            .spawn(move || accept_loop(listener, shared, workers))?;
        Ok(Gateway {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown (idempotent); does not wait. Pair with
    /// [`Gateway::join`] to wait for the drain.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// True once shutdown has been requested (by any path).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Blocks until the accept loop has exited and every in-flight
    /// connection has drained.
    pub fn join(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown();
        self.join();
    }
}

/// The non-blocking accept loop. Owns the listener and the worker pool;
/// dropping the pool at the end is the drain barrier.
fn accept_loop(listener: TcpListener, shared: Arc<GatewayShared>, workers: usize) {
    let pool = WorkerPool::new(workers);
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.connections.inc();
                let conn_shared = Arc::clone(&shared);
                pool.execute(move || handle_connection(stream, conn_shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.poll);
            }
            Err(_) => {
                // Transient accept failure (EMFILE, aborted handshake):
                // the loop must survive it.
                shared.wire_errors.inc();
                std::thread::sleep(shared.poll);
            }
        }
    }
    // Stop accepting, then drain: WorkerPool::drop closes the injector
    // and joins every worker, so in-flight connections finish first.
    drop(pool);
}

/// What one attempt to obtain the next frame concluded.
enum NextFrame {
    Frame(u8, Vec<u8>),
    /// Peer closed cleanly at a frame boundary.
    Eof,
    /// Shutdown observed while idle at a frame boundary.
    Drained,
    /// Framing violated; connection must drop (one error frame is sent).
    Broken(WireError),
    /// Transport failure or stuck peer; drop silently.
    Dead,
}

/// Blocking-with-timeout read of exactly `buf.len()` bytes.
///
/// `started` distinguishes "idle at a frame boundary" (where shutdown
/// may end the connection) from "mid-frame" (where the request counts
/// as in-flight and gets `patience` to finish arriving).
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    started: bool,
    shared: &GatewayShared,
) -> Result<bool, NextFrame> {
    let mut filled = 0usize;
    let deadline = Instant::now() + shared.stuck_peer_patience;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && !started {
                    Err(NextFrame::Eof)
                } else {
                    Err(NextFrame::Dead) // truncated mid-frame
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                let idle = filled == 0 && !started;
                if idle && shared.shutdown.load(Ordering::Acquire) {
                    return Err(NextFrame::Drained);
                }
                if !idle && Instant::now() > deadline {
                    return Err(NextFrame::Dead); // stuck peer
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Err(NextFrame::Dead),
        }
    }
    Ok(true)
}

/// Reads the next frame, polling the shutdown flag while idle.
fn next_frame(stream: &mut TcpStream, shared: &GatewayShared) -> NextFrame {
    let mut header = [0u8; HEADER_LEN];
    if let Err(outcome) = read_full(stream, &mut header[..1], false, shared) {
        return outcome;
    }
    if let Err(outcome) = read_full(stream, &mut header[1..], true, shared) {
        return outcome;
    }
    let (kind_byte, len) = match parse_header(&header) {
        Ok(ok) => ok,
        Err(we) => return NextFrame::Broken(we),
    };
    let mut payload = vec![0u8; len as usize];
    if let Err(outcome) = read_full(stream, &mut payload, true, shared) {
        return outcome;
    }
    NextFrame::Frame(kind_byte, payload)
}

/// One connection: a loop of frames until EOF, shutdown, or a framing
/// violation. Never panics — every failure path is a value.
fn handle_connection(mut stream: TcpStream, shared: Arc<GatewayShared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.poll));
    shared
        .active
        .set(shared.active_count.fetch_add(1, Ordering::AcqRel) + 1);
    loop {
        match next_frame(&mut stream, &shared) {
            NextFrame::Frame(kind_byte, payload) => {
                let started = Instant::now();
                let (response, stop) = handle_frame(kind_byte, &payload, &shared);
                shared.requests.inc();
                if matches!(response, Response::Error { .. }) {
                    shared.wire_errors.inc();
                }
                let ok = stream.write_all(&encode_response(&response)).is_ok();
                shared
                    .request_hist
                    .record_ms(started.elapsed().as_secs_f64() * 1e3);
                if stop {
                    shared.shutdown.store(true, Ordering::Release);
                }
                if !ok || stop {
                    break;
                }
            }
            NextFrame::Broken(we) => {
                // Framing is gone; one typed error frame, then hang up
                // (there is no resync point in a length-prefixed stream).
                shared.wire_errors.inc();
                let _ = stream.write_all(&encode_response(&Response::Error {
                    code: we.code,
                    message: we.message,
                }));
                break;
            }
            NextFrame::Eof | NextFrame::Drained | NextFrame::Dead => break,
        }
    }
    let _ = stream.flush();
    shared.active.set(
        shared
            .active_count
            .fetch_sub(1, Ordering::AcqRel)
            .saturating_sub(1),
    );
}

/// Decodes and executes one frame. Returns the response and whether the
/// server should begin shutdown afterwards.
fn handle_frame(kind_byte: u8, payload: &[u8], shared: &GatewayShared) -> (Response, bool) {
    let request = match wire::decode_request(kind_byte, payload) {
        Ok(req) => req,
        Err(we) => {
            return (
                Response::Error {
                    code: we.code,
                    message: we.message,
                },
                false,
            )
        }
    };
    match request {
        Request::Shutdown => (
            Response::Ack {
                accepted: true,
                count: 1,
            },
            true,
        ),
        Request::Experience(records) => {
            let count = records.len() as u64;
            match &shared.experience {
                Some(sink) => {
                    for rec in records {
                        sink.push(rec);
                    }
                }
                None => {
                    // No trainer here: fold into the ordinary report
                    // path so the records still reach local feedback.
                    for rec in records {
                        let _ = dispatch(
                            &shared.service,
                            shared.hooks.as_ref(),
                            ApiRequest::ReportExecution {
                                query: rec.query,
                                plan: rec.plan,
                                latency_ms: rec.latency_ms,
                            },
                        );
                    }
                }
            }
            (
                Response::Ack {
                    accepted: true,
                    count,
                },
                false,
            )
        }
        Request::Optimize { caller, query } => (handle_optimize(caller, query, shared), false),
        other => {
            let api = match other {
                Request::Report {
                    query,
                    plan,
                    latency_ms,
                } => ApiRequest::ReportExecution {
                    query,
                    plan,
                    latency_ms,
                },
                Request::Stats => ApiRequest::Stats,
                Request::Health => ApiRequest::Health,
                Request::Resign => ApiRequest::Resign,
                Request::Trace { trace } => ApiRequest::Trace { trace },
                Request::Optimize { .. } | Request::Shutdown | Request::Experience(_) => {
                    unreachable!("handled above")
                }
            };
            (
                api_to_wire(dispatch(&shared.service, shared.hooks.as_ref(), api)),
                false,
            )
        }
    }
}

/// The optimize verb, with cross-process trace continuation: when the
/// caller shipped a span context, the whole server-side handling is
/// recorded as a direct (always-kept) span family under the *caller's*
/// trace id — `rpc.optimize` with `optimize`/`encode` children — in the
/// service's span ring, where the admin `trace` verb can replay it as a
/// waterfall.
fn handle_optimize(caller: Option<SpanContext>, query: Query, shared: &GatewayShared) -> Response {
    let ring = shared.service.span_ring();
    let mut rpc = match caller {
        Some(ctx) => ring.child_of(ctx, "rpc.optimize", &shared.node),
        None => neo_obs::SpanGuard::noop(),
    };
    rpc.attr("query_id", query.id.clone());
    let opt_span = rpc.child("optimize");
    let api_response = dispatch(
        &shared.service,
        shared.hooks.as_ref(),
        ApiRequest::Optimize { query },
    );
    opt_span.end();
    let enc_span = rpc.child("encode");
    let response = api_to_wire(api_response);
    enc_span.end();
    rpc.end();
    response
}

/// Maps a core-API response onto the wire response set.
fn api_to_wire(api: ApiResponse) -> Response {
    match api {
        ApiResponse::Optimize(reply) => Response::Optimize(reply),
        ApiResponse::Ack { accepted } => Response::Ack { accepted, count: 1 },
        ApiResponse::Json(s) => Response::Json(s),
    }
}

/// Convenience for raw-socket tests: sends `bytes` and reads back one
/// response frame.
pub fn roundtrip_raw(addr: SocketAddr, bytes: &[u8]) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    stream.write_all(bytes)?;
    stream.flush()?;
    match wire::read_frame(&mut stream)? {
        Some((kind_byte, payload)) => wire::decode_response(kind_byte, &payload)
            .map_err(|we| io::Error::new(io::ErrorKind::InvalidData, we)),
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a response frame",
        )),
    }
}
