#![warn(missing_docs)]
//! # neo-gateway — real network serving for the optimizer fleet
//!
//! Everything below this crate runs Neo's fleet inside one process:
//! leader, followers, and "clients" share `Arc`s. This crate is the
//! serving boundary that makes them genuinely separate OS processes
//! (ISSUE 10): a zero-dependency, length-prefixed TCP front-end over
//! the transport-agnostic core API ([`neo_serve::dispatch`]).
//!
//! * [`wire`] — the frame format and binary codecs (spec in the module
//!   docs): `optimize`, `report-execution`, experience batches, and
//!   admin (`stats`/`health`/`resign`/`trace`/`shutdown`), with a
//!   bounded read limit and typed error responses — malformed input is
//!   a *value*, never a panic;
//! * [`server`] — [`server::Gateway`]: a non-blocking accept loop
//!   feeding connections into the existing [`neo_serve::WorkerPool`],
//!   per-connection metrics and a wire-path latency histogram in the
//!   service's [`neo_obs::MetricsRegistry`], cross-process trace
//!   continuation (a caller's [`neo_obs::SpanContext`] roots an
//!   `rpc.optimize` waterfall inside the server's span ring), and
//!   graceful shutdown that drains in-flight connections;
//! * [`client`] — the blocking [`client::GatewayClient`], plus
//!   [`client::TcpExperienceTransport`], the wire implementation of
//!   [`neo_learn::ExperienceTransport`] a follower's relay ships
//!   experience through;
//! * the `neo-gateway` **binary** — leader/follower/standalone roles
//!   coordinating only via an [`neo_cluster::FsCheckpointStore`]
//!   directory and sockets; prints `NEO_GATEWAY_ADDR=<ip:port>` on
//!   stdout once serving.
//!
//! ```no_run
//! use neo::{Featurization, Featurizer, NetConfig, ValueNet};
//! use neo_gateway::client::GatewayClient;
//! use neo_gateway::server::{Gateway, GatewayConfig};
//! use neo_serve::{NoHooks, OptimizerService, ServeConfig};
//! use std::sync::Arc;
//!
//! let db = Arc::new(neo_storage::datagen::imdb::generate(0.02, 42));
//! let workload = neo_query::workload::job::generate(&db, 42);
//! let featurizer = Arc::new(Featurizer::new(&db, Featurization::Histogram));
//! let net = Arc::new(ValueNet::new(
//!     featurizer.query_dim(),
//!     featurizer.plan_channels(),
//!     NetConfig::default(),
//!     42,
//! ));
//! let service = Arc::new(OptimizerService::new(db, featurizer, net, ServeConfig::default()));
//! let gateway = Gateway::serve(service, Arc::new(NoHooks), None, GatewayConfig::default())
//!     .expect("bind");
//! let mut client = GatewayClient::connect(gateway.local_addr()).expect("connect");
//! let reply = client.optimize(workload.queries[0].clone(), None).expect("optimize");
//! println!("plan: {}", reply.plan.describe());
//! ```

pub mod client;
pub mod server;
pub mod wire;

pub use client::{GatewayClient, TcpExperienceTransport};
pub use server::{Gateway, GatewayConfig};
pub use wire::{Request, Response, WireError, MAX_FRAME_LEN};
