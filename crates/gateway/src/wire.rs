//! The gateway wire format: length-prefixed binary frames over TCP.
//!
//! # Frame layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"NEOG"
//! 4       1     version (currently 1)
//! 5       1     kind    (request/response discriminant, below)
//! 6       4     payload length, u32 little-endian (bounded)
//! 10      len   payload
//! ```
//!
//! Integers are little-endian; `f64` travels as its IEEE-754 bit
//! pattern; strings as `u32 length + UTF-8 bytes`; sequences as
//! `u32 count + elements`; options as a `u8` presence flag. Plans are a
//! recursive pre-order encoding with a decode-side depth bound.
//!
//! # Robustness contract (ISSUE 10 satellite)
//!
//! Decoding NEVER panics and NEVER trusts a length it hasn't checked
//! against the bytes actually present: every read is bounds-checked,
//! payload lengths are capped by [`MAX_FRAME_LEN`] *before* any
//! allocation, sequence counts are sanity-checked against the remaining
//! bytes, and plan recursion is depth-limited. Malformed input comes
//! back as a typed [`WireError`] that the server answers with an
//! [`Response::Error`] frame instead of dying.

use neo_learn::ExperienceRecord;
use neo_obs::SpanContext;
use neo_query::{
    Aggregate, CmpOp, JoinEdge, JoinOp, PlanNode, Predicate, Query, QueryFingerprint, ScanType,
};
use neo_serve::OptimizeReply;
use std::io::{self, Read};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"NEOG";

/// Wire protocol version.
pub const VERSION: u8 = 1;

/// Frame header size (magic + version + kind + payload length).
pub const HEADER_LEN: usize = 10;

/// Hard cap on a frame's payload length. Anything larger is rejected
/// before allocation — the bounded-read limit at the trust boundary.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Decode-side recursion bound for plan trees (a JOB plan is < 20 deep;
/// 512 leaves headroom without letting crafted input exhaust the stack).
pub const MAX_PLAN_DEPTH: usize = 512;

/// Request frame kinds.
pub mod kind {
    /// Optimize one query.
    pub const OPTIMIZE: u8 = 0x01;
    /// Report one observed execution.
    pub const REPORT: u8 = 0x02;
    /// Full stats document.
    pub const STATS: u8 = 0x03;
    /// Liveness probe.
    pub const HEALTH: u8 = 0x04;
    /// Resign leadership.
    pub const RESIGN: u8 = 0x05;
    /// One trace's span waterfall.
    pub const TRACE: u8 = 0x06;
    /// Graceful server shutdown (drain in-flight connections, exit).
    pub const SHUTDOWN: u8 = 0x07;
    /// A batch of experience records (follower → leader shipping).
    pub const EXPERIENCE: u8 = 0x08;
    /// Response: an optimize reply.
    pub const R_OPTIMIZE: u8 = 0x81;
    /// Response: accepted / refused.
    pub const R_ACK: u8 = 0x82;
    /// Response: a rendered JSON document.
    pub const R_JSON: u8 = 0x83;
    /// Response: a typed error.
    pub const R_ERROR: u8 = 0xFF;
}

/// Typed wire-level error codes (carried in [`Response::Error`]).
pub mod errcode {
    /// Frame did not start with [`super::MAGIC`].
    pub const BAD_MAGIC: u8 = 1;
    /// Unsupported protocol version.
    pub const BAD_VERSION: u8 = 2;
    /// Unknown frame kind.
    pub const UNKNOWN_KIND: u8 = 3;
    /// Payload length exceeds [`super::MAX_FRAME_LEN`].
    pub const OVERSIZED: u8 = 4;
    /// Payload truncated or structurally invalid.
    pub const MALFORMED: u8 = 5;
    /// The server failed internally while handling a valid request.
    pub const INTERNAL: u8 = 6;
}

/// A typed decoding failure: which class, and a human-readable hint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// One of [`errcode`]'s constants.
    pub code: u8,
    /// What was wrong (for the error frame's message).
    pub message: String,
}

impl WireError {
    fn malformed(msg: impl Into<String>) -> Self {
        WireError {
            code: errcode::MALFORMED,
            message: msg.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire error {}: {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

/// Everything a client can send.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Optimize one query, optionally continuing the caller's trace.
    Optimize {
        /// The caller's span context (trace propagation across the
        /// socket); `None` when the caller isn't tracing.
        caller: Option<SpanContext>,
        /// The query.
        query: Query,
    },
    /// Report one observed execution.
    Report {
        /// The executed query.
        query: Query,
        /// The plan that ran.
        plan: PlanNode,
        /// Observed latency, milliseconds.
        latency_ms: f64,
    },
    /// Full stats document.
    Stats,
    /// Liveness probe.
    Health,
    /// Resign leadership.
    Resign,
    /// One trace's span waterfall.
    Trace {
        /// Raw trace id.
        trace: u64,
    },
    /// Graceful shutdown.
    Shutdown,
    /// Experience shipped follower → leader.
    Experience(Vec<ExperienceRecord>),
}

/// Everything a server can answer.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Optimize`].
    Optimize(OptimizeReply),
    /// Answer to report/resign/shutdown/experience; for experience the
    /// ack means "all records accepted".
    Ack {
        /// Accepted?
        accepted: bool,
        /// How many items the verb applied to (1 for scalar verbs).
        count: u64,
    },
    /// A rendered JSON document.
    Json(String),
    /// A typed error.
    Error {
        /// One of [`errcode`]'s constants.
        code: u8,
        /// Explanation.
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Primitive codec
// ---------------------------------------------------------------------------

/// Bounds-checked cursor over a received payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::malformed(format!(
                "truncated payload: wanted {n} bytes for {what}, {} left",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn u128(&mut self, what: &str) -> Result<u128, WireError> {
        let b = self.take(16, what)?;
        Ok(u128::from_le_bytes(b.try_into().expect("16-byte slice")))
    }

    fn i64(&mut self, what: &str) -> Result<i64, WireError> {
        Ok(self.u64(what)? as i64)
    }

    fn f64(&mut self, what: &str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// `u32 count`, sanity-bounded: each element needs at least
    /// `min_elem_bytes`, so a count the remaining bytes cannot possibly
    /// hold is rejected before any allocation.
    fn count(&mut self, min_elem_bytes: usize, what: &str) -> Result<usize, WireError> {
        let n = self.u32(what)? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(WireError::malformed(format!(
                "implausible {what} count {n} for {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    fn str(&mut self, what: &str) -> Result<String, WireError> {
        let len = self.count(1, what)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::malformed(format!("{what}: invalid UTF-8")))
    }

    fn finish(self, what: &str) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::malformed(format!(
                "{what}: {} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Growing encode buffer.
#[derive(Default)]
struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
}

// ---------------------------------------------------------------------------
// Domain codecs
// ---------------------------------------------------------------------------

fn encode_query(w: &mut Writer, q: &Query) {
    w.str(&q.id);
    w.str(&q.family);
    w.u32(q.tables.len() as u32);
    for &t in &q.tables {
        w.u32(t as u32);
    }
    w.u32(q.joins.len() as u32);
    for j in &q.joins {
        w.u32(j.left_table as u32);
        w.u32(j.left_col as u32);
        w.u32(j.right_table as u32);
        w.u32(j.right_col as u32);
    }
    w.u32(q.predicates.len() as u32);
    for p in &q.predicates {
        encode_predicate(w, p);
    }
    match &q.agg {
        Aggregate::CountStar => w.u8(0),
        Aggregate::Sum { table, col } => {
            w.u8(1);
            w.u32(*table as u32);
            w.u32(*col as u32);
        }
    }
}

fn decode_query(r: &mut Reader) -> Result<Query, WireError> {
    let id = r.str("query.id")?;
    let family = r.str("query.family")?;
    let n = r.count(4, "query.tables")?;
    let mut tables = Vec::with_capacity(n);
    for _ in 0..n {
        tables.push(r.u32("query.table")? as usize);
    }
    let n = r.count(16, "query.joins")?;
    let mut joins = Vec::with_capacity(n);
    for _ in 0..n {
        joins.push(JoinEdge {
            left_table: r.u32("join.left_table")? as usize,
            left_col: r.u32("join.left_col")? as usize,
            right_table: r.u32("join.right_table")? as usize,
            right_col: r.u32("join.right_col")? as usize,
        });
    }
    let n = r.count(2, "query.predicates")?;
    let mut predicates = Vec::with_capacity(n);
    for _ in 0..n {
        predicates.push(decode_predicate(r)?);
    }
    let agg = match r.u8("query.agg tag")? {
        0 => Aggregate::CountStar,
        1 => Aggregate::Sum {
            table: r.u32("agg.table")? as usize,
            col: r.u32("agg.col")? as usize,
        },
        t => return Err(WireError::malformed(format!("unknown aggregate tag {t}"))),
    };
    Ok(Query {
        id,
        family,
        tables,
        joins,
        predicates,
        agg,
    })
}

fn encode_predicate(w: &mut Writer, p: &Predicate) {
    match p {
        Predicate::IntCmp {
            table,
            col,
            op,
            value,
        } => {
            w.u8(0);
            w.u32(*table as u32);
            w.u32(*col as u32);
            w.u8(match op {
                CmpOp::Eq => 0,
                CmpOp::Lt => 1,
                CmpOp::Le => 2,
                CmpOp::Gt => 3,
                CmpOp::Ge => 4,
            });
            w.i64(*value);
        }
        Predicate::IntBetween { table, col, lo, hi } => {
            w.u8(1);
            w.u32(*table as u32);
            w.u32(*col as u32);
            w.i64(*lo);
            w.i64(*hi);
        }
        Predicate::StrEq { table, col, value } => {
            w.u8(2);
            w.u32(*table as u32);
            w.u32(*col as u32);
            w.str(value);
        }
        Predicate::StrContains { table, col, needle } => {
            w.u8(3);
            w.u32(*table as u32);
            w.u32(*col as u32);
            w.str(needle);
        }
    }
}

fn decode_predicate(r: &mut Reader) -> Result<Predicate, WireError> {
    let tag = r.u8("predicate tag")?;
    let table = r.u32("predicate.table")? as usize;
    let col = r.u32("predicate.col")? as usize;
    Ok(match tag {
        0 => {
            let op = match r.u8("cmp op")? {
                0 => CmpOp::Eq,
                1 => CmpOp::Lt,
                2 => CmpOp::Le,
                3 => CmpOp::Gt,
                4 => CmpOp::Ge,
                o => return Err(WireError::malformed(format!("unknown cmp op {o}"))),
            };
            Predicate::IntCmp {
                table,
                col,
                op,
                value: r.i64("cmp value")?,
            }
        }
        1 => Predicate::IntBetween {
            table,
            col,
            lo: r.i64("between lo")?,
            hi: r.i64("between hi")?,
        },
        2 => Predicate::StrEq {
            table,
            col,
            value: r.str("str-eq value")?,
        },
        3 => Predicate::StrContains {
            table,
            col,
            needle: r.str("contains needle")?,
        },
        t => return Err(WireError::malformed(format!("unknown predicate tag {t}"))),
    })
}

fn encode_plan(w: &mut Writer, plan: &PlanNode) {
    match plan {
        PlanNode::Scan { rel, scan } => {
            w.u8(0);
            w.u32(*rel as u32);
            w.u8(match scan {
                ScanType::Unspecified => 0,
                ScanType::Table => 1,
                ScanType::Index => 2,
            });
        }
        PlanNode::Join { op, left, right } => {
            w.u8(1);
            w.u8(match op {
                JoinOp::Hash => 0,
                JoinOp::Merge => 1,
                JoinOp::Loop => 2,
            });
            encode_plan(w, left);
            encode_plan(w, right);
        }
    }
}

fn decode_plan(r: &mut Reader, depth: usize) -> Result<PlanNode, WireError> {
    if depth > MAX_PLAN_DEPTH {
        return Err(WireError::malformed(format!(
            "plan nesting exceeds {MAX_PLAN_DEPTH}"
        )));
    }
    match r.u8("plan tag")? {
        0 => Ok(PlanNode::Scan {
            rel: r.u32("scan.rel")? as usize,
            scan: match r.u8("scan type")? {
                0 => ScanType::Unspecified,
                1 => ScanType::Table,
                2 => ScanType::Index,
                t => return Err(WireError::malformed(format!("unknown scan type {t}"))),
            },
        }),
        1 => {
            let op = match r.u8("join op")? {
                0 => JoinOp::Hash,
                1 => JoinOp::Merge,
                2 => JoinOp::Loop,
                o => return Err(WireError::malformed(format!("unknown join op {o}"))),
            };
            let left = Box::new(decode_plan(r, depth + 1)?);
            let right = Box::new(decode_plan(r, depth + 1)?);
            Ok(PlanNode::Join { op, left, right })
        }
        t => Err(WireError::malformed(format!("unknown plan tag {t}"))),
    }
}

fn encode_opt_f64(w: &mut Writer, v: Option<f64>) {
    match v {
        Some(x) => {
            w.u8(1);
            w.f64(x);
        }
        None => w.u8(0),
    }
}

fn decode_opt_f64(r: &mut Reader, what: &str) -> Result<Option<f64>, WireError> {
    match r.u8(what)? {
        0 => Ok(None),
        1 => Ok(Some(r.f64(what)?)),
        t => Err(WireError::malformed(format!("{what}: bad option flag {t}"))),
    }
}

fn encode_experience(w: &mut Writer, rec: &ExperienceRecord) {
    w.u128(rec.fingerprint.0);
    encode_query(w, &rec.query);
    encode_plan(w, &rec.plan);
    w.f64(rec.latency_ms);
    encode_opt_f64(w, rec.predicted_ms);
}

fn decode_experience(r: &mut Reader) -> Result<ExperienceRecord, WireError> {
    Ok(ExperienceRecord {
        fingerprint: QueryFingerprint(r.u128("experience.fingerprint")?),
        query: decode_query(r)?,
        plan: decode_plan(r, 0)?,
        latency_ms: r.f64("experience.latency_ms")?,
        predicted_ms: decode_opt_f64(r, "experience.predicted_ms")?,
    })
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

fn frame(kind: u8, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Encodes one request as a complete frame.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut w = Writer::default();
    let kind = match req {
        Request::Optimize { caller, query } => {
            let (t, s) = caller.map_or((0, 0), |c| (c.trace.0, c.span.0));
            w.u64(t);
            w.u64(s);
            encode_query(&mut w, query);
            kind::OPTIMIZE
        }
        Request::Report {
            query,
            plan,
            latency_ms,
        } => {
            encode_query(&mut w, query);
            encode_plan(&mut w, plan);
            w.f64(*latency_ms);
            kind::REPORT
        }
        Request::Stats => kind::STATS,
        Request::Health => kind::HEALTH,
        Request::Resign => kind::RESIGN,
        Request::Trace { trace } => {
            w.u64(*trace);
            kind::TRACE
        }
        Request::Shutdown => kind::SHUTDOWN,
        Request::Experience(records) => {
            w.u32(records.len() as u32);
            for rec in records {
                encode_experience(&mut w, rec);
            }
            kind::EXPERIENCE
        }
    };
    frame(kind, w.0)
}

/// Decodes a request payload for a validated header `kind`.
pub fn decode_request(kind_byte: u8, payload: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(payload);
    let req = match kind_byte {
        kind::OPTIMIZE => {
            let trace = r.u64("caller trace id")?;
            let span = r.u64("caller span id")?;
            let caller = (trace != 0 && span != 0).then_some(SpanContext {
                trace: neo_obs::TraceId(trace),
                span: neo_obs::SpanId(span),
            });
            Request::Optimize {
                caller,
                query: decode_query(&mut r)?,
            }
        }
        kind::REPORT => Request::Report {
            query: decode_query(&mut r)?,
            plan: decode_plan(&mut r, 0)?,
            latency_ms: r.f64("report.latency_ms")?,
        },
        kind::STATS => Request::Stats,
        kind::HEALTH => Request::Health,
        kind::RESIGN => Request::Resign,
        kind::TRACE => Request::Trace {
            trace: r.u64("trace id")?,
        },
        kind::SHUTDOWN => Request::Shutdown,
        kind::EXPERIENCE => {
            let n = r.count(16 + 2 + 2 + 8 + 1, "experience records")?;
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                records.push(decode_experience(&mut r)?);
            }
            Request::Experience(records)
        }
        k => {
            return Err(WireError {
                code: errcode::UNKNOWN_KIND,
                message: format!("unknown request kind 0x{k:02x}"),
            })
        }
    };
    r.finish("request")?;
    Ok(req)
}

/// Encodes one response as a complete frame.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut w = Writer::default();
    let kind = match resp {
        Response::Optimize(reply) => {
            w.str(&reply.query_id);
            w.u128(reply.fingerprint.0);
            encode_plan(&mut w, &reply.plan);
            w.u8(reply.cache_hit as u8);
            w.u64(reply.model_generation);
            w.f64(reply.optimize_ms);
            encode_opt_f64(&mut w, reply.predicted_ms);
            kind::R_OPTIMIZE
        }
        Response::Ack { accepted, count } => {
            w.u8(*accepted as u8);
            w.u64(*count);
            kind::R_ACK
        }
        Response::Json(s) => {
            w.str(s);
            kind::R_JSON
        }
        Response::Error { code, message } => {
            w.u8(*code);
            w.str(message);
            kind::R_ERROR
        }
    };
    frame(kind, w.0)
}

/// Decodes a response payload for a validated header `kind`.
pub fn decode_response(kind_byte: u8, payload: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader::new(payload);
    let resp = match kind_byte {
        kind::R_OPTIMIZE => Response::Optimize(OptimizeReply {
            query_id: r.str("reply.query_id")?,
            fingerprint: QueryFingerprint(r.u128("reply.fingerprint")?),
            plan: decode_plan(&mut r, 0)?,
            cache_hit: r.u8("reply.cache_hit")? != 0,
            model_generation: r.u64("reply.model_generation")?,
            optimize_ms: r.f64("reply.optimize_ms")?,
            predicted_ms: decode_opt_f64(&mut r, "reply.predicted_ms")?,
        }),
        kind::R_ACK => Response::Ack {
            accepted: r.u8("ack.accepted")? != 0,
            count: r.u64("ack.count")?,
        },
        kind::R_JSON => Response::Json(r.str("json body")?),
        kind::R_ERROR => Response::Error {
            code: r.u8("error code")?,
            message: r.str("error message")?,
        },
        k => {
            return Err(WireError {
                code: errcode::UNKNOWN_KIND,
                message: format!("unknown response kind 0x{k:02x}"),
            })
        }
    };
    r.finish("response")?;
    Ok(resp)
}

// ---------------------------------------------------------------------------
// Frame parsing (buffer + stream)
// ---------------------------------------------------------------------------

/// Validates a 10-byte header, returning `(kind, payload_len)`.
pub fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u8, u32), WireError> {
    if header[0..4] != MAGIC {
        return Err(WireError {
            code: errcode::BAD_MAGIC,
            message: format!("bad magic {:02x?}", &header[0..4]),
        });
    }
    if header[4] != VERSION {
        return Err(WireError {
            code: errcode::BAD_VERSION,
            message: format!("unsupported version {}", header[4]),
        });
    }
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
    if len > MAX_FRAME_LEN {
        return Err(WireError {
            code: errcode::OVERSIZED,
            message: format!("payload length {len} exceeds cap {MAX_FRAME_LEN}"),
        });
    }
    Ok((header[5], len))
}

/// Pure frame parser over a byte buffer — what the proptest fuzzes with
/// arbitrary prefixes. Returns:
///
/// * `Ok(None)` — the buffer holds a valid but incomplete frame prefix
///   (more bytes needed);
/// * `Ok(Some((kind, payload, consumed)))` — one complete well-framed
///   unit (the payload may still fail [`decode_request`]);
/// * `Err` — the prefix can never extend to a valid frame.
#[allow(clippy::type_complexity)]
pub fn parse_frame(buf: &[u8]) -> Result<Option<(u8, &[u8], usize)>, WireError> {
    // Reject bad magic/version as early as the bytes allow: a garbage
    // stream is detected from its first byte, not after 10 arrive.
    let early = buf.len().min(4);
    if buf[..early] != MAGIC[..early] {
        return Err(WireError {
            code: errcode::BAD_MAGIC,
            message: format!("bad magic prefix {:02x?}", &buf[..early]),
        });
    }
    if buf.len() >= 5 && buf[4] != VERSION {
        return Err(WireError {
            code: errcode::BAD_VERSION,
            message: format!("unsupported version {}", buf[4]),
        });
    }
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let header: &[u8; HEADER_LEN] = buf[..HEADER_LEN].try_into().expect("checked length");
    let (kind, len) = parse_header(header)?;
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((kind, &buf[HEADER_LEN..total], total)))
}

/// Reads one frame from a blocking stream. `Ok(None)` is clean EOF at a
/// frame boundary. Protocol violations surface as `WireError` wrapped in
/// [`FrameReadError::Protocol`]; transport problems as `Io`.
pub fn read_frame(stream: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, FrameReadError> {
    let mut header = [0u8; HEADER_LEN];
    match stream.read(&mut header[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(FrameReadError::Io(e)),
    }
    stream
        .read_exact(&mut header[1..])
        .map_err(FrameReadError::Io)?;
    let (kind, len) = parse_header(&header).map_err(FrameReadError::Protocol)?;
    let mut payload = vec![0u8; len as usize];
    stream
        .read_exact(&mut payload)
        .map_err(FrameReadError::Io)?;
    Ok(Some((kind, payload)))
}

/// Why [`read_frame`] failed.
#[derive(Debug)]
pub enum FrameReadError {
    /// The transport failed (timeout, reset, truncation mid-frame).
    Io(io::Error),
    /// The bytes violate the protocol (bad magic/version/length).
    Protocol(WireError),
}

impl From<FrameReadError> for io::Error {
    fn from(e: FrameReadError) -> io::Error {
        match e {
            FrameReadError::Io(e) => e,
            FrameReadError::Protocol(we) => io::Error::new(io::ErrorKind::InvalidData, we),
        }
    }
}
