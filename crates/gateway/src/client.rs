//! The blocking gateway client: one TCP connection, one request in
//! flight at a time (frames are answered in order, so a pipelined
//! client is possible — the bench uses several connections instead).

use crate::wire::{self, encode_request, Request, Response};
use neo_learn::{ExperienceRecord, ExperienceTransport};
use neo_obs::SpanContext;
use neo_query::{PlanNode, Query};
use neo_serve::OptimizeReply;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

/// Default client-side response timeout.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(60);

/// A connected gateway client.
pub struct GatewayClient {
    stream: TcpStream,
}

impl GatewayClient {
    /// Connects with the default timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with_timeout(addr, DEFAULT_TIMEOUT)
    }

    /// Connects; `timeout` bounds every subsequent response wait.
    pub fn connect_with_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        Ok(GatewayClient { stream })
    }

    /// Sends one request frame and reads back one response frame. A
    /// server-sent [`Response::Error`] is returned as a value, not an
    /// `Err` — transport failures are the only `Err`s.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        self.stream.write_all(&encode_request(request))?;
        self.stream.flush()?;
        match wire::read_frame(&mut self.stream)? {
            Some((kind_byte, payload)) => wire::decode_response(kind_byte, &payload)
                .map_err(|we| io::Error::new(io::ErrorKind::InvalidData, we)),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )),
        }
    }

    /// Optimizes one query; `caller` propagates the client's trace
    /// across the socket (the server records an `rpc.optimize` waterfall
    /// under that trace id, retrievable via [`Self::trace_waterfall`]).
    pub fn optimize(
        &mut self,
        query: Query,
        caller: Option<SpanContext>,
    ) -> io::Result<OptimizeReply> {
        match self.call(&Request::Optimize { caller, query })? {
            Response::Optimize(reply) => Ok(reply),
            other => Err(unexpected(other)),
        }
    }

    /// Reports one observed execution; returns whether it was accepted.
    pub fn report_execution(
        &mut self,
        query: Query,
        plan: PlanNode,
        latency_ms: f64,
    ) -> io::Result<bool> {
        match self.call(&Request::Report {
            query,
            plan,
            latency_ms,
        })? {
            Response::Ack { accepted, .. } => Ok(accepted),
            other => Err(unexpected(other)),
        }
    }

    /// The server's stats document (rendered JSON).
    pub fn stats(&mut self) -> io::Result<String> {
        self.expect_json(&Request::Stats)
    }

    /// The server's health document (rendered JSON).
    pub fn health(&mut self) -> io::Result<String> {
        self.expect_json(&Request::Health)
    }

    /// The span waterfall the server recorded under `trace` (JSON).
    pub fn trace_waterfall(&mut self, trace: u64) -> io::Result<String> {
        self.expect_json(&Request::Trace { trace })
    }

    /// Asks the server's node to resign leadership.
    pub fn resign(&mut self) -> io::Result<bool> {
        match self.call(&Request::Resign)? {
            Response::Ack { accepted, .. } => Ok(accepted),
            other => Err(unexpected(other)),
        }
    }

    /// Requests graceful server shutdown (drain, then exit).
    pub fn shutdown_server(&mut self) -> io::Result<bool> {
        match self.call(&Request::Shutdown)? {
            Response::Ack { accepted, .. } => Ok(accepted),
            other => Err(unexpected(other)),
        }
    }

    fn expect_json(&mut self, request: &Request) -> io::Result<String> {
        match self.call(request)? {
            Response::Json(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(resp: Response) -> io::Error {
    match resp {
        Response::Error { code, message } => io::Error::new(
            io::ErrorKind::InvalidData,
            format!("server error {code}: {message}"),
        ),
        other => io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected response variant: {other:?}"),
        ),
    }
}

/// The TCP [`ExperienceTransport`]: ships a follower's experience
/// batches to the leader's gateway. Reconnects lazily — a dead leader
/// surfaces as a transport `Err`, which the relay absorbs by requeueing
/// the batch for the next tick.
pub struct TcpExperienceTransport {
    addr: String,
    conn: Mutex<Option<GatewayClient>>,
}

impl TcpExperienceTransport {
    /// A transport shipping to the gateway at `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Self {
        TcpExperienceTransport {
            addr: addr.into(),
            conn: Mutex::new(None),
        }
    }
}

impl ExperienceTransport for TcpExperienceTransport {
    fn ship(&self, records: &[ExperienceRecord]) -> io::Result<usize> {
        let mut guard = self.conn.lock().unwrap_or_else(|p| p.into_inner());
        if guard.is_none() {
            *guard = Some(GatewayClient::connect(&*self.addr)?);
        }
        let client = guard.as_mut().expect("connection just established");
        let result = client.call(&Request::Experience(records.to_vec()));
        match result {
            Ok(Response::Ack { accepted, count }) if accepted => Ok(count as usize),
            Ok(other) => {
                *guard = None; // protocol confusion: start a fresh connection next time
                Err(unexpected(other))
            }
            Err(e) => {
                *guard = None; // broken pipe etc.: reconnect on the next ship
                Err(e)
            }
        }
    }
}
