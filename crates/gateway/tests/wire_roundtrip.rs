//! Wire-format round-trips for every frame kind, plus the frame
//! parser's no-panic robustness contract (ISSUE 10 satellites): a
//! proptest feeds arbitrary byte prefixes to [`neo_gateway::wire::
//! parse_frame`] and arbitrary payloads to the request decoder — typed
//! errors or incompleteness, never a panic — and a live server answers
//! oversized/truncated/garbage frames with typed error responses
//! without killing its accept loop.

use neo_gateway::wire::{
    self, decode_request, decode_response, encode_request, encode_response, errcode, parse_frame,
    Request, Response, HEADER_LEN, MAGIC, MAX_FRAME_LEN, VERSION,
};
use neo_learn::ExperienceRecord;
use neo_obs::{SpanContext, SpanId, TraceId};
use neo_query::{Aggregate, CmpOp, JoinEdge, JoinOp, PlanNode, Predicate, Query, ScanType};
use neo_serve::OptimizeReply;
use proptest::prelude::*;

fn sample_query() -> Query {
    Query {
        id: "16b".into(),
        family: "16".into(),
        tables: vec![0, 3, 7],
        joins: vec![
            JoinEdge {
                left_table: 0,
                left_col: 1,
                right_table: 3,
                right_col: 0,
            },
            JoinEdge {
                left_table: 3,
                left_col: 2,
                right_table: 7,
                right_col: 0,
            },
        ],
        predicates: vec![
            Predicate::IntCmp {
                table: 0,
                col: 2,
                op: CmpOp::Ge,
                value: 1990,
            },
            Predicate::IntBetween {
                table: 3,
                col: 1,
                lo: -5,
                hi: 900,
            },
            Predicate::StrEq {
                table: 7,
                col: 0,
                value: "Germany".into(),
            },
            Predicate::StrContains {
                table: 7,
                col: 1,
                needle: "löve".into(),
            },
        ],
        agg: Aggregate::Sum { table: 0, col: 4 },
    }
}

fn sample_plan() -> PlanNode {
    PlanNode::Join {
        op: JoinOp::Merge,
        left: Box::new(PlanNode::Join {
            op: JoinOp::Hash,
            left: Box::new(PlanNode::Scan {
                rel: 0,
                scan: ScanType::Index,
            }),
            right: Box::new(PlanNode::Scan {
                rel: 3,
                scan: ScanType::Table,
            }),
        }),
        right: Box::new(PlanNode::Scan {
            rel: 7,
            scan: ScanType::Unspecified,
        }),
    }
}

/// Round-trips one request through encode → parse_frame → decode.
fn roundtrip_request(req: &Request) -> Request {
    let bytes = encode_request(req);
    let (kind, payload, consumed) = parse_frame(&bytes)
        .expect("self-encoded frame must parse")
        .expect("self-encoded frame must be complete");
    assert_eq!(consumed, bytes.len(), "no trailing bytes");
    decode_request(kind, payload).expect("self-encoded payload must decode")
}

fn roundtrip_response(resp: &Response) -> Response {
    let bytes = encode_response(resp);
    let (kind, payload, _) = parse_frame(&bytes).unwrap().unwrap();
    decode_response(kind, payload).expect("self-encoded response must decode")
}

#[test]
fn optimize_request_round_trips() {
    for caller in [
        None,
        Some(SpanContext {
            trace: TraceId(0xDEAD_BEEF),
            span: SpanId(0xFEED_FACE),
        }),
    ] {
        let req = Request::Optimize {
            caller,
            query: sample_query(),
        };
        assert_eq!(roundtrip_request(&req), req);
    }
}

#[test]
fn report_request_round_trips() {
    let req = Request::Report {
        query: sample_query(),
        plan: sample_plan(),
        latency_ms: 12.75,
    };
    assert_eq!(roundtrip_request(&req), req);
}

#[test]
fn admin_requests_round_trip() {
    for req in [
        Request::Stats,
        Request::Health,
        Request::Resign,
        Request::Trace { trace: u64::MAX },
        Request::Shutdown,
    ] {
        assert_eq!(roundtrip_request(&req), req);
    }
}

#[test]
fn experience_batch_round_trips() {
    let query = sample_query();
    let records: Vec<ExperienceRecord> = (0..5)
        .map(|i| ExperienceRecord {
            fingerprint: neo_query::fingerprint(&query),
            query: query.clone(),
            plan: sample_plan(),
            latency_ms: 1.5 * (i as f64 + 1.0),
            predicted_ms: (i % 2 == 0).then_some(2.25 * i as f64),
        })
        .collect();
    let req = Request::Experience(records);
    assert_eq!(roundtrip_request(&req), req);
    // Empty batch too.
    let req = Request::Experience(Vec::new());
    assert_eq!(roundtrip_request(&req), req);
}

#[test]
fn responses_round_trip() {
    let reply = OptimizeReply {
        query_id: "16b".into(),
        fingerprint: neo_query::fingerprint(&sample_query()),
        plan: sample_plan(),
        cache_hit: true,
        model_generation: 17,
        optimize_ms: 0.625,
        predicted_ms: Some(42.0),
    };
    for resp in [
        Response::Optimize(reply),
        Response::Ack {
            accepted: false,
            count: 9,
        },
        Response::Json("{\"ok\": true}".into()),
        Response::Error {
            code: errcode::MALFORMED,
            message: "truncated payload".into(),
        },
    ] {
        assert_eq!(roundtrip_response(&resp), resp);
    }
}

// ---------------------------------------------------------------------------
// Adversarial framing
// ---------------------------------------------------------------------------

#[test]
fn bad_magic_is_rejected_from_the_first_byte() {
    let err = parse_frame(b"GARBAGE___").unwrap_err();
    assert_eq!(err.code, errcode::BAD_MAGIC);
    // Even a single wrong byte is enough.
    let err = parse_frame(b"X").unwrap_err();
    assert_eq!(err.code, errcode::BAD_MAGIC);
}

#[test]
fn bad_version_is_rejected() {
    let mut frame = encode_request(&Request::Stats);
    frame[4] = VERSION + 1;
    assert_eq!(parse_frame(&frame).unwrap_err().code, errcode::BAD_VERSION);
}

#[test]
fn oversized_length_is_rejected_before_allocation() {
    let mut frame: Vec<u8> = MAGIC.to_vec();
    frame.push(VERSION);
    frame.push(0x01);
    frame.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
    assert_eq!(parse_frame(&frame).unwrap_err().code, errcode::OVERSIZED);
}

#[test]
fn incomplete_frames_ask_for_more_bytes() {
    let frame = encode_request(&Request::Optimize {
        caller: None,
        query: sample_query(),
    });
    for cut in [0, 1, 4, HEADER_LEN - 1, HEADER_LEN, frame.len() - 1] {
        assert_eq!(
            parse_frame(&frame[..cut]).unwrap(),
            None,
            "prefix of {cut} bytes must be incomplete, not an error"
        );
    }
}

#[test]
fn unknown_kind_and_truncated_payload_are_typed_errors() {
    let err = decode_request(0x7E, &[]).unwrap_err();
    assert_eq!(err.code, errcode::UNKNOWN_KIND);
    let full = encode_request(&Request::Report {
        query: sample_query(),
        plan: sample_plan(),
        latency_ms: 1.0,
    });
    let payload = &full[HEADER_LEN..];
    for cut in 0..payload.len() {
        let err = decode_request(0x02, &payload[..cut]).unwrap_err();
        assert_eq!(err.code, errcode::MALFORMED, "cut at {cut}");
    }
}

#[test]
fn deep_plan_nesting_is_depth_limited() {
    // A run of join tags, each expecting two children, is a structurally
    // valid prefix that nests unboundedly deep. Splice it in place of a
    // valid Report frame's plan bytes.
    let mut payload = Vec::new();
    let query_frame = encode_request(&Request::Report {
        query: sample_query(),
        plan: PlanNode::Scan {
            rel: 0,
            scan: ScanType::Table,
        },
        latency_ms: 1.0,
    });
    // Locate the plan bytes: scan encodes as [0, rel u32, scan u8] and
    // sits 9 + 8 bytes before the end (latency f64 follows).
    let plan_off = query_frame.len() - 8 - 6;
    payload.extend_from_slice(&query_frame[HEADER_LEN..plan_off]);
    for _ in 0..2_000 {
        payload.push(1); // join tag
        payload.push(0); // hash op
    }
    let err = decode_request(0x02, &payload).unwrap_err();
    assert_eq!(err.code, errcode::MALFORMED);
    assert!(err.message.contains("nesting"), "got: {}", err.message);
}

// ---------------------------------------------------------------------------
// Proptest: arbitrary byte prefixes never panic the parser or decoder
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn parse_frame_never_panics_on_arbitrary_bytes(
        bytes in collection::vec(any::<u8>(), 0..128)
    ) {
        // Any outcome is fine; panicking or allocating absurdly is not.
        let _ = parse_frame(&bytes);
    }

    #[test]
    fn decoders_never_panic_on_arbitrary_payloads(
        kind in any::<u8>(),
        payload in collection::vec(any::<u8>(), 0..96)
    ) {
        let _ = decode_request(kind, &payload);
        let _ = decode_response(kind, &payload);
    }

    #[test]
    fn valid_frame_with_corrupt_payload_decodes_to_typed_error_or_value(
        corrupt in collection::vec(any::<u8>(), 0..64)
    ) {
        // A structurally valid *frame* whose payload is noise must come
        // back as Ok(request) or a typed WireError — never a panic.
        let mut frame: Vec<u8> = MAGIC.to_vec();
        frame.push(VERSION);
        frame.push(0x01); // optimize
        frame.extend_from_slice(&(corrupt.len() as u32).to_le_bytes());
        frame.extend_from_slice(&corrupt);
        let parsed = parse_frame(&frame).expect("framing is valid");
        let (kind, payload, _) = parsed.expect("frame is complete");
        if let Err(e) = decode_request(kind, payload) {
            prop_assert!(e.code == errcode::MALFORMED || e.code == errcode::UNKNOWN_KIND);
        }
    }

    #[test]
    fn truncations_of_a_valid_frame_are_incomplete_or_malformed(
        seed in any::<u64>()
    ) {
        let req = Request::Trace { trace: seed };
        let frame = encode_request(&req);
        for cut in 0..frame.len() {
            match parse_frame(&frame[..cut]) {
                Ok(None) => {}                       // incomplete: fine
                Ok(Some(_)) => prop_assert!(false, "truncation parsed as complete"),
                Err(e) => prop_assert!(e.code != 0), // typed error: fine
            }
        }
        // The whole frame round-trips.
        let (kind, payload, _) = parse_frame(&frame).unwrap().unwrap();
        prop_assert_eq!(decode_request(kind, payload).unwrap(), req);
    }
}

// `wire::` is exercised via the re-exports above; keep the module import
// honest even if re-exports change.
#[test]
fn max_frame_len_is_enforced_by_read_frame_too() {
    use std::io::Cursor;
    let mut bytes: Vec<u8> = MAGIC.to_vec();
    bytes.push(VERSION);
    bytes.push(0x01);
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    bytes.extend_from_slice(&[0u8; 64]);
    let mut cursor = Cursor::new(bytes);
    match wire::read_frame(&mut cursor) {
        Err(wire::FrameReadError::Protocol(e)) => assert_eq!(e.code, errcode::OVERSIZED),
        other => panic!("expected protocol error, got {other:?}"),
    }
}
