//! Adversarial frames against a *live* gateway (ISSUE 10 satellite):
//! oversized, truncated, and garbage input must come back as typed
//! error responses — and must never take down the accept loop. One
//! in-process server absorbs every attack, then proves it is still
//! healthy by optimizing a real query.

use neo::{Featurization, Featurizer, NetConfig, ValueNet};
use neo_gateway::server::{roundtrip_raw, Gateway, GatewayConfig};
use neo_gateway::wire::{self, errcode, kind, MAGIC, MAX_FRAME_LEN, VERSION};
use neo_gateway::{GatewayClient, Request, Response};
use neo_query::Workload;
use neo_serve::{NoHooks, OptimizerService, ServeConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn tiny_gateway() -> (Gateway, Workload) {
    let db = Arc::new(neo_storage::datagen::imdb::generate(0.02, 7));
    let workload = neo_query::workload::job::generate(&db, 7);
    let featurizer = Arc::new(Featurizer::new(&db, Featurization::Histogram));
    let net = Arc::new(ValueNet::new(
        featurizer.query_dim(),
        featurizer.plan_channels(),
        NetConfig::default(),
        7,
    ));
    let service = Arc::new(OptimizerService::new(
        db,
        featurizer,
        net,
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    ));
    let gateway = Gateway::serve(service, Arc::new(NoHooks), None, GatewayConfig::default())
        .expect("bind loopback");
    (gateway, workload)
}

fn frame(kind_byte: u8, payload: &[u8]) -> Vec<u8> {
    let mut bytes: Vec<u8> = MAGIC.to_vec();
    bytes.push(VERSION);
    bytes.push(kind_byte);
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

fn expect_error(resp: Response, want_code: u8, what: &str) {
    match resp {
        Response::Error { code, .. } => assert_eq!(code, want_code, "{what}"),
        other => panic!("{what}: expected a typed error, got {other:?}"),
    }
}

#[test]
fn hostile_frames_get_typed_errors_and_the_server_survives() {
    let (gateway, workload) = tiny_gateway();
    let addr = gateway.local_addr();

    // 1. Garbage magic.
    let resp = roundtrip_raw(addr, b"TRASHTRASHTRASHTRASH").expect("error frame");
    expect_error(resp, errcode::BAD_MAGIC, "garbage magic");

    // 2. Wrong protocol version.
    let mut bad_version = frame(kind::STATS, &[]);
    bad_version[4] = 9;
    let resp = roundtrip_raw(addr, &bad_version).expect("error frame");
    expect_error(resp, errcode::BAD_VERSION, "bad version");

    // 3. Oversized declared length: rejected from the header alone —
    //    the server must answer without waiting for 16 MiB to arrive.
    let mut oversized: Vec<u8> = MAGIC.to_vec();
    oversized.push(VERSION);
    oversized.push(kind::OPTIMIZE);
    oversized.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
    let resp = roundtrip_raw(addr, &oversized).expect("error frame");
    expect_error(resp, errcode::OVERSIZED, "oversized length");

    // 4. Unknown kind byte with a well-formed header.
    let resp = roundtrip_raw(addr, &frame(0x6F, b"whatever")).expect("error frame");
    expect_error(resp, errcode::UNKNOWN_KIND, "unknown kind");

    // 5. Truncated payload of a known kind (optimize with noise bytes).
    let resp = roundtrip_raw(addr, &frame(kind::OPTIMIZE, &[1, 2, 3])).expect("error frame");
    expect_error(resp, errcode::MALFORMED, "truncated optimize payload");

    // 6. Half a frame, then hang up mid-header: server must just drop
    //    the connection without wedging.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&MAGIC[..2]).expect("partial write");
        drop(stream);
    }

    // 7. A declared payload that never arrives: the gateway's stuck-peer
    //    patience applies, but closing our end releases it immediately.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(&frame(kind::TRACE, &[0u8; 8])[..HEADER_AND_HALF])
            .expect("partial write");
        drop(stream);
    }

    // After all of that, the accept loop is alive and the service is
    // functional: a real optimize round-trips on a fresh connection.
    let mut client = GatewayClient::connect(addr).expect("connect after attacks");
    let query = workload.queries[0].clone();
    let reply = client.optimize(query, None).expect("optimize still works");
    assert!(reply.optimize_ms >= 0.0);

    // Metrics recorded the carnage: several wire errors, many requests.
    let stats = client.stats().expect("stats");
    neo_obs::validate(&stats).expect("stats is valid JSON");
    assert!(
        stats.contains("gateway_wire_errors_total"),
        "wire error counter exported: {stats}"
    );
    drop(client);
}

/// Ten bytes of header plus half the declared trace payload.
const HEADER_AND_HALF: usize = wire::HEADER_LEN + 4;

#[test]
fn error_frame_then_hangup_on_unrecoverable_framing() {
    let (gateway, _) = tiny_gateway();
    // After a framing-level error (bad magic) the server answers once and
    // hangs up: the stream is no longer trustworthy.
    let mut stream = TcpStream::connect(gateway.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(b"NOPE------").expect("write garbage");
    let (kind_byte, payload) = wire::read_frame(&mut stream)
        .expect("one error frame")
        .expect("frame, not EOF");
    match wire::decode_response(kind_byte, &payload).expect("decodable") {
        Response::Error { code, .. } => assert_eq!(code, errcode::BAD_MAGIC),
        other => panic!("expected error, got {other:?}"),
    }
    // ...then EOF.
    let mut rest = Vec::new();
    let n = stream.read_to_end(&mut rest).unwrap_or(0);
    assert_eq!(n, 0, "server should hang up after a framing error");
}

#[test]
fn malformed_payload_keeps_the_connection_open() {
    let (gateway, _) = tiny_gateway();
    // A payload-level error (the frame is fine, the bytes inside are
    // not) is answered with a typed error and the SAME connection keeps
    // working — unlike a framing-level error, which hangs up.
    let mut stream = TcpStream::connect(gateway.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // Trace wants exactly 8 payload bytes; send 4.
    stream
        .write_all(&frame(kind::TRACE, &[0u8; 4]))
        .expect("write short trace");
    let (kind_byte, payload) = wire::read_frame(&mut stream)
        .expect("error frame")
        .expect("frame");
    match wire::decode_response(kind_byte, &payload).expect("decodable") {
        Response::Error { code, .. } => assert_eq!(code, errcode::MALFORMED),
        other => panic!("expected error, got {other:?}"),
    }
    // Same stream, valid request: still served.
    stream
        .write_all(&wire::encode_request(&Request::Health))
        .expect("write health");
    let (kind_byte, payload) = wire::read_frame(&mut stream)
        .expect("health frame")
        .expect("frame");
    match wire::decode_response(kind_byte, &payload).expect("decodable") {
        Response::Json(doc) => {
            neo_obs::validate(&doc).expect("health is valid JSON");
        }
        other => panic!("expected health JSON, got {other:?}"),
    }
}
