//! Three-process fleet smoke (ISSUE 10 acceptance): a leader process, a
//! follower process, and this test as the client — coordinating ONLY
//! through a shared checkpoint directory and sockets.
//!
//! The flow exercised end to end:
//!
//! 1. leader binds, acquires the multi-process lease, prints its addr;
//! 2. follower binds, adopts generation 0, relays experience to the
//!    leader's gateway over TCP;
//! 3. the client optimizes against the leader with a caller-supplied
//!    trace id and then pulls the `rpc.optimize` span waterfall that
//!    the SERVER recorded under that id;
//! 4. executions reported to the FOLLOWER flow over the relay into the
//!    leader's sink, its background trainer mints generation ≥ 1;
//! 5. both processes shut down gracefully over the wire and exit 0.

use neo_gateway::GatewayClient;
use neo_obs::{SpanContext, SpanId, TraceId};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Self-cleaning scratch directory for the shared checkpoint store.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("neo-loopback-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A spawned `neo-gateway` process plus the address it printed.
struct Node {
    child: Child,
    addr: String,
}

fn spawn_node(role: &str, store: &Path, name: &str, leader_addr: Option<&str>) -> Node {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_neo-gateway"));
    cmd.args(["--role", role])
        .args(["--store", store.to_str().unwrap()])
        .args(["--listen", "127.0.0.1:0"])
        .args(["--name", name])
        .args(["--scale", "0.02"])
        .args(["--seed", "42"])
        .args(["--workers", "2"])
        .args(["--poll-ms", "20"])
        .args(["--lease-ttl-ms", "2000"])
        .args(["--ship-ms", "50"])
        .args(["--min-new-records", "8"])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if let Some(addr) = leader_addr {
        cmd.args(["--leader", addr]);
    }
    let mut child = cmd.spawn().expect("spawn neo-gateway");
    // The binary prints NEO_GATEWAY_ADDR=<ip:port> once it is serving;
    // reading that line doubles as the startup barrier.
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("gateway exited before announcing its address")
            .expect("read child stdout");
        if let Some(addr) = line.strip_prefix("NEO_GATEWAY_ADDR=") {
            break addr.to_string();
        }
    };
    Node { child, addr }
}

/// Waits for exit with a deadline; kills and panics on timeout.
fn wait_clean_exit(node: &mut Node, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match node.child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "{what} exited non-zero: {status}");
                return;
            }
            None if Instant::now() > deadline => {
                let _ = node.child.kill();
                panic!("{what} did not exit within the drain deadline");
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// Pulls the integer value following `"key":` out of a rendered JSON
/// document (the docs here are flat enough for a scan to be exact).
fn json_u64(doc: &str, key: &str) -> Option<u64> {
    let at = doc.find(&format!("\"{key}\""))?;
    let rest = &doc[at..];
    let colon = rest.find(':')?;
    let digits: String = rest[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[test]
fn three_process_fleet_over_loopback() {
    let store = TempDir::new("fleet");
    let mut leader = spawn_node("leader", &store.0, "leader-a", None);
    let mut follower = spawn_node("follower", &store.0, "follower-b", Some(&leader.addr));

    // The same scale+seed the processes used: identical workload here.
    let db = neo_storage::datagen::imdb::generate(0.02, 42);
    let workload = neo_query::workload::job::generate(&db, 42);

    // --- Client → leader: optimize with a caller trace ----------------
    let mut to_leader = GatewayClient::connect(&*leader.addr).expect("connect leader");
    let caller = SpanContext {
        trace: TraceId(0x00C0_FFEE),
        span: SpanId(1),
    };
    let query = workload.queries[0].clone();
    let reply = to_leader
        .optimize(query.clone(), Some(caller))
        .expect("optimize via leader");
    assert_eq!(reply.query_id, query.id);

    // The trace id we minted CLIENT-side resolves to a span waterfall
    // recorded INSIDE the server process.
    let waterfall = to_leader
        .trace_waterfall(0x00C0_FFEE)
        .expect("trace waterfall");
    neo_obs::validate(&waterfall).expect("waterfall is valid JSON");
    assert!(
        waterfall.contains("rpc.optimize"),
        "server-side rpc span under the client's trace id: {waterfall}"
    );
    let span_count = waterfall.matches("\"name\"").count();
    assert!(
        span_count >= 2,
        "expected a waterfall (rpc.optimize + children), got {span_count} span(s): {waterfall}"
    );

    // Feedback straight to the leader is accepted.
    assert!(to_leader
        .report_execution(query.clone(), reply.plan.clone(), 12.5)
        .expect("report to leader"));

    // Stats carry the gateway's own wire metrics.
    let stats = to_leader.stats().expect("leader stats");
    neo_obs::validate(&stats).expect("stats is valid JSON");
    for metric in [
        "gateway_connections_total",
        "gateway_requests_total",
        "gateway_request_ms",
    ] {
        assert!(stats.contains(metric), "{metric} missing from: {stats}");
    }
    assert!(
        json_u64(&stats, "generation").is_some(),
        "stats carries the model generation: {stats}"
    );

    // --- Client → follower: health + experience relay ------------------
    let mut to_follower = GatewayClient::connect(&*follower.addr).expect("connect follower");
    let health = to_follower.health().expect("follower health");
    assert!(
        health.contains("\"follower\""),
        "follower reports its role: {health}"
    );

    // Executions reported to the follower cross the wire twice: client →
    // follower (report frames), follower → leader (experience batches).
    // Enough of them trip the leader's trainer: generation reaches ≥ 1
    // in the LEADER process, observable over its socket.
    for (i, q) in workload.queries.iter().take(16).enumerate() {
        let r = to_follower
            .optimize(q.clone(), None)
            .expect("optimize via follower");
        assert!(to_follower
            .report_execution(q.clone(), r.plan, 5.0 + i as f64)
            .expect("report to follower"));
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    let generation = loop {
        let stats = to_leader.stats().expect("poll leader stats");
        if let Some(g) = json_u64(&stats, "generation") {
            if g >= 1 {
                break g;
            }
        }
        assert!(
            Instant::now() < deadline,
            "leader never trained on relayed experience: {stats}"
        );
        std::thread::sleep(Duration::from_millis(100));
    };
    assert!(generation >= 1);

    // --- Graceful shutdown over the wire -------------------------------
    assert!(to_follower.shutdown_server().expect("shutdown follower"));
    wait_clean_exit(&mut follower, "follower");
    assert!(to_leader.shutdown_server().expect("shutdown leader"));
    wait_clean_exit(&mut leader, "leader");
}

#[test]
fn standalone_round_trip() {
    // The standalone role needs no store: spawn, optimize, shut down.
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_neo-gateway"));
    cmd.args(["--role", "standalone", "--listen", "127.0.0.1:0"])
        .args(["--scale", "0.02", "--seed", "7", "--workers", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    let mut child = cmd.spawn().expect("spawn standalone");
    let stdout = child.stdout.take().expect("piped stdout");
    let addr = BufReader::new(stdout)
        .lines()
        .map(|l| l.expect("read stdout"))
        .find_map(|l| l.strip_prefix("NEO_GATEWAY_ADDR=").map(str::to_string))
        .expect("address line");
    let db = neo_storage::datagen::imdb::generate(0.02, 7);
    let workload = neo_query::workload::job::generate(&db, 7);
    let mut client = GatewayClient::connect(&*addr).expect("connect");
    let reply = client
        .optimize(workload.queries[0].clone(), None)
        .expect("optimize");
    assert_eq!(reply.query_id, workload.queries[0].id);
    assert!(client.shutdown_server().expect("shutdown"));
    let mut node = Node { child, addr };
    wait_clean_exit(&mut node, "standalone");
}
