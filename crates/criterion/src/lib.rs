#![warn(missing_docs)]
//! Vendored, API-compatible subset of the `criterion` benchmarking crate.
//!
//! The build environment has no network access to a crates registry, so this
//! workspace ships a minimal timing harness covering the surface used by
//! `crates/bench/benches/micro.rs`: [`Criterion::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], the builder knobs
//! (`sample_size`, `measurement_time`, `warm_up_time`), and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up for `warm_up_time`, the
//! per-iteration cost is estimated, and then `sample_size` samples are taken
//! (each a batch of iterations sized so the whole measurement fits in
//! `measurement_time`). The median per-iteration time is reported. This is
//! deliberately simpler than upstream criterion (no outlier analysis or
//! HTML reports) but produces comparable medians and honors CLI name
//! filters (`cargo bench -- <filter>`).

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted, not acted upon —
/// the shim always times routine-only, per batch of one input).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Per-benchmark timing driver handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher<'c> {
    cfg: &'c Config,
    /// Collected per-iteration nanosecond estimates (one per sample).
    samples_ns: Vec<f64>,
}

impl Bencher<'_> {
    /// Times `routine`, called in calibrated batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: estimate the per-iteration cost.
        let warm_deadline = Instant::now() + self.cfg.warm_up_time;
        let mut iters_done = 0u64;
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(routine());
            iters_done += 1;
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done as f64;

        let samples = self.cfg.sample_size.max(2);
        let budget = self.cfg.measurement_time.as_secs_f64() / samples as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let ns = start.elapsed().as_secs_f64() * 1e9 / batch as f64;
            self.samples_ns.push(ns);
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_deadline = Instant::now() + self.cfg.warm_up_time;
        let mut spent = Duration::ZERO;
        let mut iters_done = 0u64;
        loop {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            spent += start.elapsed();
            iters_done += 1;
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let per_iter = spent.as_secs_f64() / iters_done as f64;

        let samples = self.cfg.sample_size.max(2);
        let budget = self.cfg.measurement_time.as_secs_f64() / samples as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 100_000);
        for _ in 0..samples {
            let mut ns_total = 0.0;
            for _ in 0..batch {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                ns_total += start.elapsed().as_secs_f64() * 1e9;
            }
            self.samples_ns.push(ns_total / batch as f64);
        }
    }
}

#[derive(Clone, Debug)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

/// Benchmark registry + configuration (mirrors `criterion::Criterion`).
pub struct Criterion {
    cfg: Config,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as the first free
        // argument; `--bench`/`--exact` style flags are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            cfg: Config::default(),
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of measurement samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints its median per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            cfg: &self.cfg,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        let mut ns = b.samples_ns;
        if ns.is_empty() {
            println!("{id:<50} (no samples)");
            return self;
        }
        ns.sort_by(f64::total_cmp);
        let median = ns[ns.len() / 2];
        let lo = ns[0];
        let hi = ns[ns.len() - 1];
        println!(
            "{id:<50} time: [{} {} {}]",
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi)
        );
        self
    }

    /// Upstream-API shim: final summary hook (no-op).
    pub fn final_summary(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group: either `criterion_group!(name, fn1, fn2)` or
/// the long form with `name = …; config = …; targets = …`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Criterion {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        c.filter = None; // the test harness's own args are not bench filters
        c
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = tiny();
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_input() {
        let mut c = tiny();
        let mut setups = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert!(setups > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = tiny();
        c.filter = Some("matmul".into());
        let mut runs = 0u64;
        c.bench_function("unrelated", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.5), "12.50 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_000_000.0), "2.00 ms");
        assert_eq!(fmt_ns(3_200_000_000.0), "3.200 s");
    }
}
