//! Property-based tests for the neural-network substrate: algebraic
//! identities of the tensor kernels and gradient-flow invariants of the
//! layers.

use neo_nn::{Matrix, Mlp, TreeConv, TreeTopology, NO_CHILD};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..Default::default() })]

    /// (A·B)·C == A·(B·C) up to floating-point tolerance.
    #[test]
    fn matmul_is_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// A·(B + C) == A·B + A·C.
    #[test]
    fn matmul_distributes_over_addition(a in matrix(3, 3), b in matrix(3, 2), c in matrix(3, 2)) {
        let mut bc = b.clone();
        bc.add_assign(&c);
        let left = a.matmul(&bc);
        let mut right = a.matmul(&b);
        right.add_assign(&a.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// matmul_tn(A, B) == matmul(transpose(A), B) checked elementwise.
    #[test]
    fn matmul_tn_is_transpose_matmul(a in matrix(4, 3), b in matrix(4, 2)) {
        let fast = a.matmul_tn(&b);
        // Build the explicit transpose.
        let mut at = Matrix::zeros(3, 4);
        for r in 0..4 {
            for c in 0..3 {
                at.set(c, r, a.get(r, c));
            }
        }
        let slow = at.matmul(&b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// An MLP forward pass never produces NaN/Inf on bounded inputs.
    #[test]
    fn mlp_outputs_are_finite(x in matrix(4, 6), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&[6, 12, 3], true, false, &mut rng);
        let y = mlp.forward_inference(&x);
        prop_assert!(y.data().iter().all(|v| v.is_finite()));
    }

    /// Tree convolution output depends only on each node's (self, left,
    /// right) triple: nodes with identical triples get identical outputs.
    #[test]
    fn tree_conv_is_local(seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let conv = TreeConv::new(4, 6, &mut rng);
        // Two trees with identical leaf feature patterns.
        let topo = TreeTopology {
            left: vec![1, NO_CHILD, NO_CHILD, 4, NO_CHILD, NO_CHILD],
            right: vec![2, NO_CHILD, NO_CHILD, 5, NO_CHILD, NO_CHILD],
            tree_of: vec![0, 0, 0, 1, 1, 1],
            num_trees: 2,
        };
        let mut feats = Matrix::zeros(6, 4);
        for (i, row) in [[1.0, 0.0, 0.0, 0.5], [0.0, 1.0, 0.0, 0.0], [0.0, 0.0, 1.0, 0.0],
                         [1.0, 0.0, 0.0, 0.5], [0.0, 1.0, 0.0, 0.0], [0.0, 0.0, 1.0, 0.0]]
            .iter()
            .enumerate()
        {
            feats.row_mut(i).copy_from_slice(row);
        }
        let y = conv.forward_inference(&feats, &topo);
        for c in 0..6 {
            prop_assert!((y.get(0, c) - y.get(3, c)).abs() < 1e-6);
            prop_assert!((y.get(1, c) - y.get(4, c)).abs() < 1e-6);
        }
    }

    /// Gradient accumulation: two backward passes double the gradient.
    #[test]
    fn linear_gradients_accumulate_linearly(x in matrix(2, 3), seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lin = neo_nn::Linear::new(3, 2, &mut rng);
        let dy = Matrix::from_vec(2, 2, vec![1.0; 4]);
        let _ = lin.forward(&x);
        let _ = lin.backward(&dy);
        let g1: Vec<f32> = lin.w.grad.data().to_vec();
        let _ = lin.forward(&x);
        let _ = lin.backward(&dy);
        for (a, b) in lin.w.grad.data().iter().zip(&g1) {
            prop_assert!((a - 2.0 * b).abs() < 1e-4);
        }
    }
}

/// Trainer-side clone guarantee (PR 3's background trainer): cloning a
/// module deep-copies its parameters, so training the clone never aliases
/// into — or perturbs — the original. `Matrix` is `Vec`-backed, which makes
/// this true by construction; this test pins it against a future switch to
/// shared storage.
#[test]
fn cloned_module_parameters_do_not_alias() {
    let mut rng = StdRng::seed_from_u64(42);
    let mlp = Mlp::new(&[4, 8, 2], true, false, &mut rng);
    let mut copy = mlp.clone();

    let x = Matrix::from_vec(3, 4, (0..12).map(|i| i as f32 * 0.1).collect());
    let before = mlp.forward_inference(&x);

    // Mutate every parameter of the clone.
    for p in copy.params_mut() {
        let rows = p.value.rows();
        let cols = p.value.cols();
        for r in 0..rows {
            for c in 0..cols {
                let v = p.value.get(r, c);
                p.value.set(r, c, v + 1.0);
            }
        }
    }

    // The original's parameters and outputs are bit-identical.
    let after = mlp.forward_inference(&x);
    assert_eq!(before.data(), after.data(), "clone mutation leaked");
    // And the clone genuinely moved.
    let moved = copy.forward_inference(&x);
    assert_ne!(moved.data(), after.data());
}

/// Checkpoint round-trip for a cloned-and-trained module: parameters
/// written from a clone restore bit-identically into a fresh module of the
/// same architecture (the background trainer's persistence path).
#[test]
fn checkpoint_roundtrip_from_a_clone() {
    let mut rng = StdRng::seed_from_u64(7);
    let original = Mlp::new(&[3, 6, 1], true, false, &mut rng);
    let mut clone = original.clone();
    // "Train" the clone: nudge every parameter off the original.
    for p in clone.params_mut() {
        let (rows, cols) = (p.value.rows(), p.value.cols());
        for r in 0..rows {
            for c in 0..cols {
                let v = p.value.get(r, c);
                p.value.set(r, c, v * 0.75 + 0.01);
            }
        }
    }

    let mut buf = Vec::new();
    {
        let refs: Vec<&neo_nn::Param> = clone.params_mut().into_iter().map(|p| &*p).collect();
        neo_nn::write_params(&mut buf, &refs).unwrap();
    }
    // Read into a differently-seeded fresh module.
    let mut rng2 = StdRng::seed_from_u64(1234);
    let mut fresh = Mlp::new(&[3, 6, 1], true, false, &mut rng2);
    let x = Matrix::from_vec(2, 3, vec![0.3, -0.1, 0.7, 1.0, 0.0, -0.5]);
    assert_ne!(
        fresh.forward_inference(&x).data(),
        clone.forward_inference(&x).data()
    );
    neo_nn::read_params(&mut &buf[..], &mut fresh.params_mut()).unwrap();
    assert_eq!(
        fresh.forward_inference(&x).data(),
        clone.forward_inference(&x).data()
    );
    // The original never moved.
    let o1 = original.forward_inference(&x);
    assert_ne!(o1.data(), clone.forward_inference(&x).data());
}
