//! Property-based tests for the neural-network substrate: algebraic
//! identities of the tensor kernels and gradient-flow invariants of the
//! layers.

use neo_nn::{Matrix, Mlp, TreeConv, TreeTopology, NO_CHILD};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..Default::default() })]

    /// (A·B)·C == A·(B·C) up to floating-point tolerance.
    #[test]
    fn matmul_is_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// A·(B + C) == A·B + A·C.
    #[test]
    fn matmul_distributes_over_addition(a in matrix(3, 3), b in matrix(3, 2), c in matrix(3, 2)) {
        let mut bc = b.clone();
        bc.add_assign(&c);
        let left = a.matmul(&bc);
        let mut right = a.matmul(&b);
        right.add_assign(&a.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// matmul_tn(A, B) == matmul(transpose(A), B) checked elementwise.
    #[test]
    fn matmul_tn_is_transpose_matmul(a in matrix(4, 3), b in matrix(4, 2)) {
        let fast = a.matmul_tn(&b);
        // Build the explicit transpose.
        let mut at = Matrix::zeros(3, 4);
        for r in 0..4 {
            for c in 0..3 {
                at.set(c, r, a.get(r, c));
            }
        }
        let slow = at.matmul(&b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// An MLP forward pass never produces NaN/Inf on bounded inputs.
    #[test]
    fn mlp_outputs_are_finite(x in matrix(4, 6), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&[6, 12, 3], true, false, &mut rng);
        let y = mlp.forward_inference(&x);
        prop_assert!(y.data().iter().all(|v| v.is_finite()));
    }

    /// Tree convolution output depends only on each node's (self, left,
    /// right) triple: nodes with identical triples get identical outputs.
    #[test]
    fn tree_conv_is_local(seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let conv = TreeConv::new(4, 6, &mut rng);
        // Two trees with identical leaf feature patterns.
        let topo = TreeTopology {
            left: vec![1, NO_CHILD, NO_CHILD, 4, NO_CHILD, NO_CHILD],
            right: vec![2, NO_CHILD, NO_CHILD, 5, NO_CHILD, NO_CHILD],
            tree_of: vec![0, 0, 0, 1, 1, 1],
            num_trees: 2,
        };
        let mut feats = Matrix::zeros(6, 4);
        for (i, row) in [[1.0, 0.0, 0.0, 0.5], [0.0, 1.0, 0.0, 0.0], [0.0, 0.0, 1.0, 0.0],
                         [1.0, 0.0, 0.0, 0.5], [0.0, 1.0, 0.0, 0.0], [0.0, 0.0, 1.0, 0.0]]
            .iter()
            .enumerate()
        {
            feats.row_mut(i).copy_from_slice(row);
        }
        let y = conv.forward_inference(&feats, &topo);
        for c in 0..6 {
            prop_assert!((y.get(0, c) - y.get(3, c)).abs() < 1e-6);
            prop_assert!((y.get(1, c) - y.get(4, c)).abs() < 1e-6);
        }
    }

    /// Gradient accumulation: two backward passes double the gradient.
    #[test]
    fn linear_gradients_accumulate_linearly(x in matrix(2, 3), seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lin = neo_nn::Linear::new(3, 2, &mut rng);
        let dy = Matrix::from_vec(2, 2, vec![1.0; 4]);
        let _ = lin.forward(&x);
        let _ = lin.backward(&dy);
        let g1: Vec<f32> = lin.w.grad.data().to_vec();
        let _ = lin.forward(&x);
        let _ = lin.backward(&dy);
        for (a, b) in lin.w.grad.data().iter().zip(&g1) {
            prop_assert!((a - 2.0 * b).abs() < 1e-4);
        }
    }
}
