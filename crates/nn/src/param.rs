//! Trainable parameter: a value matrix plus its gradient accumulator and
//! Adam moment estimates.

use crate::tensor::Matrix;

/// A trainable tensor. Layers own `Param`s; the [`crate::adam::Adam`]
/// optimizer updates them in place.
#[derive(Clone, Debug)]
pub struct Param {
    /// Current value of the parameter.
    pub value: Matrix,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Matrix,
    /// Adam first-moment estimate.
    pub(crate) m: Matrix,
    /// Adam second-moment estimate.
    pub(crate) v: Matrix,
}

impl Param {
    /// Wraps an initial value, allocating zeroed gradient and moment buffers.
    pub fn new(value: Matrix) -> Self {
        let (r, c) = (value.rows(), value.cols());
        Param {
            value,
            grad: Matrix::zeros(r, c),
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
        }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar parameters.
    pub fn count(&self) -> usize {
        self.value.len()
    }
}

/// Global-norm gradient clipping over a set of parameters.
///
/// Rescales all gradients by `max_norm / total_norm` when the combined
/// L2 norm exceeds `max_norm`. Returns the pre-clip norm.
pub fn clip_grad_norm(params: &mut [&mut Param], max_norm: f32) -> f32 {
    let total: f32 = params
        .iter()
        .map(|p| {
            let n = p.grad.frobenius_norm();
            n * n
        })
        .sum::<f32>()
        .sqrt();
    if total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        for p in params.iter_mut() {
            p.grad.scale(scale);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Matrix::zeros(2, 2));
        p.grad.data_mut()[0] = 5.0;
        p.zero_grad();
        assert!(p.grad.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn clip_rescales_when_over() {
        let mut p = Param::new(Matrix::zeros(1, 2));
        p.grad.data_mut().copy_from_slice(&[3.0, 4.0]); // norm 5
        let pre = clip_grad_norm(&mut [&mut p], 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let post = p.grad.frobenius_norm();
        assert!((post - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_noop_when_under() {
        let mut p = Param::new(Matrix::zeros(1, 2));
        p.grad.data_mut().copy_from_slice(&[0.3, 0.4]);
        clip_grad_norm(&mut [&mut p], 1.0);
        assert_eq!(p.grad.data(), &[0.3, 0.4]);
    }
}
