//! Minimal binary (de)serialization for parameters — enough to checkpoint
//! a trained value network to disk and reload it (model persistence, an
//! adoption requirement the paper's system also had: trained models are
//! reused across sessions).
//!
//! Format: a little-endian stream of `[rows: u32][cols: u32][data: f32...]`
//! records preceded by a magic header and a record count. Only parameter
//! *values* are stored (optimizer moments are training state, not model).

use crate::param::Param;
use crate::tensor::Matrix;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"NEONET01";

/// Writes a set of parameters to `w`.
pub fn write_params(w: &mut impl Write, params: &[&Param]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in params {
        let m = &p.value;
        w.write_all(&(m.rows() as u32).to_le_bytes())?;
        w.write_all(&(m.cols() as u32).to_le_bytes())?;
        for v in m.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads parameter values from `r` into `params`, in order.
///
/// Fails when the magic/count/shapes don't match the receiving network —
/// loading a checkpoint into a differently-configured model is an error,
/// not a silent corruption.
pub fn read_params(r: &mut impl Read, params: &mut [&mut Param]) -> io::Result<()> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad magic: not a neo-nn checkpoint",
        ));
    }
    let mut count = [0u8; 4];
    r.read_exact(&mut count)?;
    let count = u32::from_le_bytes(count) as usize;
    if count != params.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "checkpoint has {count} tensors, model expects {}",
                params.len()
            ),
        ));
    }
    for p in params.iter_mut() {
        let mut dims = [0u8; 8];
        r.read_exact(&mut dims)?;
        let rows = u32::from_le_bytes(dims[0..4].try_into().unwrap()) as usize;
        let cols = u32::from_le_bytes(dims[4..8].try_into().unwrap()) as usize;
        if rows != p.value.rows() || cols != p.value.cols() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "shape mismatch: checkpoint {rows}x{cols}, model {}x{}",
                    p.value.rows(),
                    p.value.cols()
                ),
            ));
        }
        let mut buf = vec![0u8; rows * cols * 4];
        r.read_exact(&mut buf)?;
        let data: Vec<f32> = buf
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        p.value = Matrix::from_vec(rows, cols, data);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_values() {
        let a = Param::new(Matrix::from_vec(
            2,
            3,
            vec![1.0, -2.0, 3.5, 0.0, 7.25, -0.125],
        ));
        let b = Param::new(Matrix::from_vec(1, 2, vec![9.0, -9.0]));
        let mut buf = Vec::new();
        write_params(&mut buf, &[&a, &b]).unwrap();

        let mut a2 = Param::new(Matrix::zeros(2, 3));
        let mut b2 = Param::new(Matrix::zeros(1, 2));
        read_params(&mut &buf[..], &mut [&mut a2, &mut b2]).unwrap();
        assert_eq!(a2.value.data(), a.value.data());
        assert_eq!(b2.value.data(), b.value.data());
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let a = Param::new(Matrix::zeros(2, 2));
        let mut buf = Vec::new();
        write_params(&mut buf, &[&a]).unwrap();
        let mut wrong = Param::new(Matrix::zeros(3, 2));
        let err = read_params(&mut &buf[..], &mut [&mut wrong]).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"));
    }

    #[test]
    fn count_mismatch_is_an_error() {
        let a = Param::new(Matrix::zeros(1, 1));
        let mut buf = Vec::new();
        write_params(&mut buf, &[&a]).unwrap();
        let mut x = Param::new(Matrix::zeros(1, 1));
        let mut y = Param::new(Matrix::zeros(1, 1));
        assert!(read_params(&mut &buf[..], &mut [&mut x, &mut y]).is_err());
    }

    #[test]
    fn bad_magic_is_an_error() {
        let buf = b"NOTMAGIC\x00\x00\x00\x00".to_vec();
        let mut x = Param::new(Matrix::zeros(1, 1));
        assert!(read_params(&mut &buf[..], &mut [&mut x]).is_err());
    }
}
