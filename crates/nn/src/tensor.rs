//! A minimal dense 2-D tensor (`Matrix`) with the handful of BLAS-like
//! kernels the value network needs.
//!
//! Everything in this crate is CPU-only `f32`, row-major, and deliberately
//! free of `unsafe`. The matmul path is sparsity-adaptive: a strided sample
//! of the left operand dispatches either to a row-streaming `i-k-j` kernel
//! whose per-element zero skip devours Neo's one-hot plan encodings, or to
//! a cache-blocked microkernel for dense operands — the right operand is
//! packed into fixed-width column panels ([`NR`] wide, up to [`KC`] deep)
//! held in a stack buffer, and an [`MR`]`x`[`NR`] register tile accumulates
//! each output block, a shape the autovectorizer turns into broadcast-FMA
//! SIMD loops.
//!
//! [`Matrix::resize`] repurposes a matrix in place without giving up its
//! allocation, which is what the inference scratch buffers
//! ([`crate::scratch::Scratch`]) lean on for the zero-allocation steady
//! state; [`realloc_events`] counts the times any resize actually had to
//! grow, so tests can assert the steady state is allocation-free.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counts [`Matrix::resize`] calls that had to grow their allocation.
static REALLOC_EVENTS: AtomicUsize = AtomicUsize::new(0);

/// Number of [`Matrix::resize`] calls so far that could not reuse the
/// existing allocation. Stable between warmed-up inference calls — the
/// zero-allocation regression tests assert exactly that.
pub fn realloc_events() -> usize {
    REALLOC_EVENTS.load(Ordering::Relaxed)
}

/// A row-major dense matrix of `f32`.
#[derive(Clone, Default, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// An all-zeros matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/buffer mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds a single-row matrix from a slice.
    pub fn from_row(row: &[f32]) -> Self {
        Matrix::from_vec(1, row.len(), row.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Allocated capacity of the backing buffer, in elements.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Immutable view of the flat row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Reshapes this matrix to `rows x cols`, zero-filled, reusing the
    /// existing allocation whenever it is large enough. This is the
    /// workhorse of the inference scratch buffers: after a warm-up pass has
    /// grown every buffer to its steady-state size, `resize` never touches
    /// the allocator again (tracked by [`realloc_events`]).
    pub fn resize(&mut self, rows: usize, cols: usize) {
        let len = rows * cols;
        if len > self.data.capacity() {
            REALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(len, 0.0);
    }

    /// `self = self + other`, elementwise.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self = self + alpha * other`, elementwise.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&mut self, s: f32) {
        self.data.iter_mut().for_each(|v| *v *= s);
    }

    /// `C = self * rhs` (standard matmul).
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul inner dims");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        matmul_into(self, rhs, &mut out, false);
        out
    }

    /// `out += self * rhs`, writing into a pre-allocated output (avoids a
    /// fresh allocation in hot loops). When `accumulate` is false the output
    /// is overwritten.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix, accumulate: bool) {
        assert_eq!(self.cols, rhs.rows, "matmul inner dims");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, rhs.cols),
            "matmul output shape"
        );
        matmul_into(self, rhs, out, accumulate);
    }

    /// `out (+)= self * rhs[rhs_row_start .. rhs_row_start + self.cols]`:
    /// multiply against a row band of `rhs` without materializing it. The
    /// packed-children tree convolution multiplies the parent/left/right
    /// thirds of one filterbank this way.
    pub fn matmul_into_rows(
        &self,
        rhs: &Matrix,
        rhs_row_start: usize,
        out: &mut Matrix,
        accumulate: bool,
    ) {
        assert!(rhs_row_start + self.cols <= rhs.rows, "matmul row band");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, rhs.cols),
            "matmul output shape"
        );
        matmul_into_offset(self, rhs, rhs_row_start, out, accumulate);
    }

    /// `C = self^T * rhs`. Used for weight gradients (`dW = X^T dY`).
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "matmul_tn inner dims");
        let (m, k, n) = (self.cols, self.rows, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        // C[i][j] = sum_t A[t][i] * B[t][j]; stream over rows of A and B.
        for t in 0..k {
            let arow = self.row(t);
            let brow = rhs.row(t);
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let crow = &mut out.data[i * n..(i + 1) * n];
                for (c, &b) in crow.iter_mut().zip(brow) {
                    *c += a * b;
                }
            }
        }
        out
    }

    /// `C = self * rhs^T`. Used for input gradients (`dX = dY W^T`).
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_nt inner dims");
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let arow = self.row(i);
            let orow = &mut out.data[i * n..(i + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &rhs.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// Adds a bias row-vector to every row.
    pub fn add_row_broadcast(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1);
        assert_eq!(bias.cols, self.cols);
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (v, b) in row.iter_mut().zip(&bias.data) {
                *v += b;
            }
        }
    }

    /// Column-wise sum, producing a `1 x cols` matrix. Used for bias grads.
    pub fn col_sum(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for (o, v) in out.data.iter_mut().zip(row) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm (root of the sum of squared elements).
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

/// Microkernel tile height: rows of `A` processed per inner call.
const MR: usize = 4;
/// Packed panel width: columns of `B`/`C` per panel (two 8-lane vectors).
const NR: usize = 16;
/// Depth blocking: `B` panel rows packed per pass (keeps the panel in L1:
/// `KC * NR * 4` bytes = 16 KiB).
const KC: usize = 256;

/// Zero fraction of `a`, estimated from a strided sample. Cheap relative
/// to the `O(mkn)` multiply it steers.
fn zero_fraction(a: &Matrix) -> f32 {
    let len = a.data.len();
    if len == 0 {
        return 0.0;
    }
    // A stride sharing a factor with the column count would sample the
    // same few columns over and over (e.g. stride 64 on a 64-column
    // matrix samples only column 0) and bias the estimate; bump until
    // coprime so the sample sweeps across columns.
    let mut stride = (len / 1024).max(1);
    while gcd(stride, a.cols.max(1)) != 1 {
        stride += 1;
    }
    let mut zeros = 0usize;
    let mut samples = 0usize;
    let mut i = 0;
    while i < len {
        samples += 1;
        if a.data[i] == 0.0 {
            zeros += 1;
        }
        i += stride;
    }
    zeros as f32 / samples as f32
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Above this zero fraction of the left operand, the row-streaming kernel
/// with its per-element zero skip beats the packed microkernel (measured on
/// value-net shapes: one-hot gathers are ~70–95% zeros and skip almost all
/// panel work, while post-activation matrices are fully dense).
const SPARSE_DISPATCH_THRESHOLD: f32 = 0.10;

fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix, accumulate: bool) {
    matmul_into_offset(a, b, 0, out, accumulate);
}

/// As [`matmul_into`], but reading `B` starting at row `b_row_off` — the
/// row-range multiply behind the packed-children tree convolution (the
/// parent/left/right thirds of one filterbank are row bands of `W`).
fn matmul_into_offset(
    a: &Matrix,
    b: &Matrix,
    b_row_off: usize,
    out: &mut Matrix,
    accumulate: bool,
) {
    debug_assert!(b_row_off + a.cols <= b.rows, "B row band out of range");
    if zero_fraction(a) > SPARSE_DISPATCH_THRESHOLD {
        matmul_into_rowstream(a, b, b_row_off, out, accumulate);
    } else {
        matmul_into_blocked(a, b, b_row_off, out, accumulate);
    }
}

/// The `i-k-j` row-streaming kernel: the inner loop runs a full contiguous
/// output row, and any zero element of `A` skips its entire `B` row.
fn matmul_into_rowstream(
    a: &Matrix,
    b: &Matrix,
    b_row_off: usize,
    out: &mut Matrix,
    accumulate: bool,
) {
    let (m, k, n) = (a.rows, a.cols, b.cols);
    if !accumulate {
        out.fill_zero();
    }
    for i in 0..m {
        let arow = &a.data[i * k..(i + 1) * k];
        let orow = &mut out.data[i * n..(i + 1) * n];
        for (t, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let t = t + b_row_off;
            let brow = &b.data[t * n..(t + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

fn matmul_into_blocked(
    a: &Matrix,
    b: &Matrix,
    b_row_off: usize,
    out: &mut Matrix,
    accumulate: bool,
) {
    let (m, k, n) = (a.rows, a.cols, b.cols);
    if !accumulate {
        out.fill_zero();
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // Panel buffer on the stack: no allocator traffic, hot in cache.
    let mut packed = [0.0f32; KC * NR];
    let mut kb = 0;
    while kb < k {
        let kc = (k - kb).min(KC);
        let mut jb = 0;
        while jb < n {
            let nr = (n - jb).min(NR);
            // Pack B[kb.., jb..] k-major with the panel zero-padded to NR
            // columns, so the accumulator loop below has a fixed width.
            for t in 0..kc {
                let src =
                    &b.data[(b_row_off + kb + t) * n + jb..(b_row_off + kb + t) * n + jb + nr];
                let dst = &mut packed[t * NR..(t + 1) * NR];
                dst[..nr].copy_from_slice(src);
                dst[nr..].iter_mut().for_each(|v| *v = 0.0);
            }
            let mut i = 0;
            while i + MR <= m {
                micro_tile::<MR>(a, &packed, out, i, kb, kc, jb, nr);
                i += MR;
            }
            match m - i {
                3 => micro_tile::<3>(a, &packed, out, i, kb, kc, jb, nr),
                2 => micro_tile::<2>(a, &packed, out, i, kb, kc, jb, nr),
                1 => micro_tile::<1>(a, &packed, out, i, kb, kc, jb, nr),
                _ => {}
            }
            jb += NR;
        }
        kb += KC;
    }
}

/// Register tile: accumulates `ROWS x NR` outputs over one packed depth
/// block. The `[ROWS][NR]` accumulator lives in vector registers; each
/// depth step is a broadcast-multiply-add over the packed panel row, which
/// the autovectorizer lowers to SIMD FMAs. No zero-skip here: the sparse
/// dispatch in [`matmul_into`] routes sparse operands to the row-streaming
/// kernel, so this path stays branch-free for the vectorizer.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // a GEMM microkernel's natural arity
fn micro_tile<const ROWS: usize>(
    a: &Matrix,
    packed: &[f32; KC * NR],
    out: &mut Matrix,
    i: usize,
    kb: usize,
    kc: usize,
    jb: usize,
    nr: usize,
) {
    let k = a.cols;
    let n = out.cols;
    let mut acc = [[0.0f32; NR]; ROWS];
    for t in 0..kc {
        let prow = &packed[t * NR..(t + 1) * NR];
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = a.data[(i + r) * k + kb + t];
            for (o, &p) in accr.iter_mut().zip(prow) {
                *o += av * p;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let orow = &mut out.data[(i + r) * n + jb..(i + r) * n + jb + nr];
        for (o, &v) in orow.iter_mut().zip(&accr[..nr]) {
            *o += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = m(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i).data(), a.data());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[1.0, 0.5, -1.0, 2.0, 0.0, 3.0]);
        let c = a.matmul_tn(&b);
        // A^T is 2x3, B is 3x2 => C is 2x2.
        let at = m(2, 3, &[1.0, 3.0, 5.0, 2.0, 4.0, 6.0]);
        assert_eq!(c.data(), at.matmul(&b).data());
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(
            4,
            3,
            &[1.0, 0.0, 1.0, 2.0, 1.0, 0.0, 0.5, 0.5, 0.5, -1.0, 1.0, -1.0],
        );
        let c = a.matmul_nt(&b);
        let bt = m(
            3,
            4,
            &[1.0, 2.0, 0.5, -1.0, 0.0, 1.0, 0.5, 1.0, 1.0, 0.0, 0.5, -1.0],
        );
        assert_eq!(c.data(), a.matmul(&bt).data());
    }

    #[test]
    fn matmul_into_accumulates() {
        let a = m(1, 2, &[1.0, 1.0]);
        let b = m(2, 1, &[2.0, 3.0]);
        let mut out = Matrix::from_vec(1, 1, vec![10.0]);
        a.matmul_into(&b, &mut out, true);
        assert_eq!(out.data(), &[15.0]);
        a.matmul_into(&b, &mut out, false);
        assert_eq!(out.data(), &[5.0]);
    }

    #[test]
    fn bias_broadcast_and_col_sum() {
        let mut a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(1, 2, &[10.0, 20.0]);
        a.add_row_broadcast(&b);
        assert_eq!(a.data(), &[11.0, 22.0, 13.0, 24.0]);
        let s = a.col_sum();
        assert_eq!(s.data(), &[24.0, 46.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[1.0, 1.0, 1.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[3.0, 4.0, 5.0]);
        a.scale(0.5);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn frobenius_norm_of_unit() {
        let a = m(1, 4, &[1.0, 1.0, 1.0, 1.0]);
        assert!((a.frobenius_norm() - 2.0).abs() < 1e-6);
    }

    /// Reference i-k-j matmul to validate the blocked microkernel.
    fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            for t in 0..k {
                let av = a.get(i, t);
                for j in 0..n {
                    let v = out.get(i, j) + av * b.get(t, j);
                    out.set(i, j, v);
                }
            }
        }
        out
    }

    /// The blocked kernel must agree with the naive kernel on shapes that
    /// exercise every remainder path: row tails (m % MR), panel tails
    /// (n % NR), and multiple depth blocks (k > KC).
    #[test]
    fn blocked_matmul_matches_naive_on_awkward_shapes() {
        let mut state = 0x12345u64;
        let mut next = || {
            // SplitMix-style scramble: deterministic pseudo-random f32s.
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 16, 16),
            (5, 17, 33),
            (7, 300, 19),
            (2, 513, 3),
        ] {
            for sparsity in [0.0f32, 0.8] {
                let a = Matrix::from_vec(
                    m,
                    k,
                    (0..m * k)
                        .map(|_| if next() + 0.5 < sparsity { 0.0 } else { next() })
                        .collect(),
                );
                let b = Matrix::from_vec(k, n, (0..k * n).map(|_| next()).collect());
                let slow = matmul_naive(&a, &b);
                // Both kernels must agree with the reference regardless of
                // which one the sparsity dispatch would pick.
                for kernel in [matmul_into_blocked, matmul_into_rowstream] {
                    let mut fast = Matrix::zeros(m, n);
                    kernel(&a, &b, 0, &mut fast, false);
                    for (x, y) in fast.data().iter().zip(slow.data()) {
                        assert!(
                            (x - y).abs() < 1e-3,
                            "({m},{k},{n}) s={sparsity}: {x} vs {y}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn matmul_row_band_matches_full() {
        // A row-band multiply against the middle third of B must equal a
        // full multiply against that third extracted explicitly.
        let a = m(3, 2, &[1.0, 2.0, -1.0, 0.5, 3.0, 0.0]);
        let b = m(
            6,
            2,
            &[9.0, 9.0, 9.0, 9.0, 1.0, 2.0, 3.0, 4.0, 9.0, 9.0, 9.0, 9.0],
        );
        let band = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let mut got = Matrix::zeros(3, 2);
        a.matmul_into_rows(&b, 2, &mut got, false);
        assert_eq!(got.data(), a.matmul(&band).data());
        // And accumulation adds on top.
        a.matmul_into_rows(&b, 2, &mut got, true);
        let mut twice = a.matmul(&band);
        twice.scale(2.0);
        assert_eq!(got.data(), twice.data());
    }

    #[test]
    fn resize_reuses_capacity() {
        let mut a = Matrix::zeros(8, 8);
        a.data_mut().iter_mut().for_each(|v| *v = 7.0);
        // REALLOC_EVENTS is process-global and other tests resize matrices
        // concurrently, so assert reuse via this matrix's own capacity and
        // only check the counter monotonically.
        let cap = a.capacity();
        let before = realloc_events();
        a.resize(4, 6);
        assert_eq!((a.rows(), a.cols()), (4, 6));
        assert!(a.data().iter().all(|&v| v == 0.0), "resize must zero-fill");
        a.resize(8, 8);
        assert_eq!(
            a.capacity(),
            cap,
            "shrink+regrow within capacity reallocated"
        );
        a.resize(32, 32);
        assert!(a.capacity() >= 32 * 32);
        assert!(realloc_events() > before, "growth must be counted");
    }
}
