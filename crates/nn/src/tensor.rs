//! A minimal dense 2-D tensor (`Matrix`) with the handful of BLAS-like
//! kernels the value network needs.
//!
//! Everything in this crate is CPU-only `f32`, row-major, and deliberately
//! free of `unsafe`. The matmul kernel uses an `i-k-j` loop order so the
//! inner loop streams over contiguous rows of both the right operand and the
//! output, which is the main thing that matters for the small-to-medium
//! matrices (tens to a few hundred columns) the Neo value network produces.

use std::fmt;

/// A row-major dense matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// An all-zeros matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/buffer mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds a single-row matrix from a slice.
    pub fn from_row(row: &[f32]) -> Self {
        Matrix::from_vec(1, row.len(), row.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// `self = self + other`, elementwise.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self = self + alpha * other`, elementwise.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&mut self, s: f32) {
        self.data.iter_mut().for_each(|v| *v *= s);
    }

    /// `C = self * rhs` (standard matmul).
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul inner dims");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        matmul_into(self, rhs, &mut out, false);
        out
    }

    /// `out += self * rhs`, writing into a pre-allocated output (avoids a
    /// fresh allocation in hot loops). When `accumulate` is false the output
    /// is overwritten.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix, accumulate: bool) {
        assert_eq!(self.cols, rhs.rows, "matmul inner dims");
        assert_eq!((out.rows, out.cols), (self.rows, rhs.cols), "matmul output shape");
        matmul_into(self, rhs, out, accumulate);
    }

    /// `C = self^T * rhs`. Used for weight gradients (`dW = X^T dY`).
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "matmul_tn inner dims");
        let (m, k, n) = (self.cols, self.rows, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        // C[i][j] = sum_t A[t][i] * B[t][j]; stream over rows of A and B.
        for t in 0..k {
            let arow = self.row(t);
            let brow = rhs.row(t);
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let crow = &mut out.data[i * n..(i + 1) * n];
                for (c, &b) in crow.iter_mut().zip(brow) {
                    *c += a * b;
                }
            }
        }
        out
    }

    /// `C = self * rhs^T`. Used for input gradients (`dX = dY W^T`).
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_nt inner dims");
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let arow = self.row(i);
            let orow = &mut out.data[i * n..(i + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &rhs.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// Adds a bias row-vector to every row.
    pub fn add_row_broadcast(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1);
        assert_eq!(bias.cols, self.cols);
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (v, b) in row.iter_mut().zip(&bias.data) {
                *v += b;
            }
        }
    }

    /// Column-wise sum, producing a `1 x cols` matrix. Used for bias grads.
    pub fn col_sum(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for (o, v) in out.data.iter_mut().zip(row) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm (root of the sum of squared elements).
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix, accumulate: bool) {
    let (m, k, n) = (a.rows, a.cols, b.cols);
    if !accumulate {
        out.fill_zero();
    }
    for i in 0..m {
        let arow = &a.data[i * k..(i + 1) * k];
        let orow = &mut out.data[i * n..(i + 1) * n];
        for (t, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue; // sparse one-hot inputs are common in Neo encodings
            }
            let brow = &b.data[t * n..(t + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = m(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i).data(), a.data());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[1.0, 0.5, -1.0, 2.0, 0.0, 3.0]);
        let c = a.matmul_tn(&b);
        // A^T is 2x3, B is 3x2 => C is 2x2.
        let at = m(2, 3, &[1.0, 3.0, 5.0, 2.0, 4.0, 6.0]);
        assert_eq!(c.data(), at.matmul(&b).data());
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(4, 3, &[1.0, 0.0, 1.0, 2.0, 1.0, 0.0, 0.5, 0.5, 0.5, -1.0, 1.0, -1.0]);
        let c = a.matmul_nt(&b);
        let bt = m(3, 4, &[1.0, 2.0, 0.5, -1.0, 0.0, 1.0, 0.5, 1.0, 1.0, 0.0, 0.5, -1.0]);
        assert_eq!(c.data(), a.matmul(&bt).data());
    }

    #[test]
    fn matmul_into_accumulates() {
        let a = m(1, 2, &[1.0, 1.0]);
        let b = m(2, 1, &[2.0, 3.0]);
        let mut out = Matrix::from_vec(1, 1, vec![10.0]);
        a.matmul_into(&b, &mut out, true);
        assert_eq!(out.data(), &[15.0]);
        a.matmul_into(&b, &mut out, false);
        assert_eq!(out.data(), &[5.0]);
    }

    #[test]
    fn bias_broadcast_and_col_sum() {
        let mut a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(1, 2, &[10.0, 20.0]);
        a.add_row_broadcast(&b);
        assert_eq!(a.data(), &[11.0, 22.0, 13.0, 24.0]);
        let s = a.col_sum();
        assert_eq!(s.data(), &[24.0, 46.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[1.0, 1.0, 1.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[3.0, 4.0, 5.0]);
        a.scale(0.5);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn frobenius_norm_of_unit() {
        let a = m(1, 4, &[1.0, 1.0, 1.0, 1.0]);
        assert!((a.frobenius_norm() - 2.0).abs() < 1e-6);
    }
}
