//! Layer normalization (Ba, Kiros & Hinton 2016), used by the paper to
//! stabilize value-network training (§6.1).
//!
//! Normalizes each row (sample) to zero mean / unit variance across its
//! features, then applies a learned per-feature gain and bias.

use crate::param::Param;
use crate::tensor::Matrix;

/// Layer normalization over the feature (column) dimension.
#[derive(Clone, Debug)]
pub struct LayerNorm {
    /// Learned per-feature gain, shape `1 x dim`.
    pub gain: Param,
    /// Learned per-feature bias, shape `1 x dim`.
    pub bias: Param,
    eps: f32,
    /// Cached (normalized input, 1/std per row) from the forward pass.
    cache: Option<(Matrix, Vec<f32>)>,
}

impl LayerNorm {
    /// Creates a layer norm over `dim` features (gain = 1, bias = 0).
    pub fn new(dim: usize) -> Self {
        let gain = Param::new(Matrix::from_vec(1, dim, vec![1.0; dim]));
        let bias = Param::new(Matrix::zeros(1, dim));
        LayerNorm {
            gain,
            bias,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Forward pass with caching for backprop.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let (out, xhat, inv_std) = self.normalize(x);
        self.cache = Some((xhat, inv_std));
        out
    }

    /// Forward pass without caching (inference only).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        self.normalize(x).0
    }

    /// Allocation-free inference: normalizes each row of `x` in place and
    /// applies gain/bias. Numerically identical to
    /// [`Self::forward_inference`].
    pub fn forward_inference_inplace(&self, x: &mut Matrix) {
        let d = x.cols();
        assert_eq!(d, self.gain.value.cols(), "LayerNorm dim mismatch");
        let gain = self.gain.value.data();
        let bias = self.bias.value.data();
        let eps = self.eps;
        for r in 0..x.rows() {
            let row = x.row_mut(r);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + eps).sqrt();
            for (c, v) in row.iter_mut().enumerate() {
                *v = gain[c] * ((*v - mean) * inv_std) + bias[c];
            }
        }
    }

    fn normalize(&self, x: &Matrix) -> (Matrix, Matrix, Vec<f32>) {
        let (n, d) = (x.rows(), x.cols());
        assert_eq!(d, self.gain.value.cols(), "LayerNorm dim mismatch");
        let mut out = Matrix::zeros(n, d);
        let mut xhat = Matrix::zeros(n, d);
        let mut inv_stds = Vec::with_capacity(n);
        let gain = self.gain.value.data();
        let bias = self.bias.value.data();
        for r in 0..n {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds.push(inv_std);
            let xh = xhat.row_mut(r);
            for (c, &v) in row.iter().enumerate() {
                xh[c] = (v - mean) * inv_std;
            }
            let o = out.row_mut(r);
            let xh = xhat.row(r);
            for c in 0..d {
                o[c] = gain[c] * xh[c] + bias[c];
            }
        }
        (out, xhat, inv_stds)
    }

    /// Backward pass. Accumulates gain/bias gradients and returns `dx`.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let (xhat, inv_stds) = self
            .cache
            .take()
            .expect("LayerNorm::backward before forward");
        let (n, d) = (dy.rows(), dy.cols());
        assert_eq!((xhat.rows(), xhat.cols()), (n, d));
        let gain = self.gain.value.data().to_vec();
        let mut dx = Matrix::zeros(n, d);
        {
            // Parameter gradients: dgain = sum_r dy*xhat, dbias = sum_r dy.
            let dgain = self.gain.grad.data_mut();
            let dbias = self.bias.grad.data_mut();
            for r in 0..n {
                let dyr = dy.row(r);
                let xr = xhat.row(r);
                for c in 0..d {
                    dgain[c] += dyr[c] * xr[c];
                    dbias[c] += dyr[c];
                }
            }
        }
        // Input gradient (standard layer-norm backward):
        // dx = (1/std) * (dxhat - mean(dxhat) - xhat * mean(dxhat*xhat))
        for (r, &inv_std) in inv_stds.iter().enumerate().take(n) {
            let dyr = dy.row(r);
            let xr = xhat.row(r);
            let mut dxhat = vec![0.0f32; d];
            for c in 0..d {
                dxhat[c] = dyr[c] * gain[c];
            }
            let mean_dxhat = dxhat.iter().sum::<f32>() / d as f32;
            let mean_dxhat_x = dxhat.iter().zip(xr).map(|(a, b)| a * b).sum::<f32>() / d as f32;
            let dxr = dx.row_mut(r);
            for c in 0..d {
                dxr[c] = inv_std * (dxhat[c] - mean_dxhat - xr[c] * mean_dxhat_x);
            }
        }
        dx
    }

    /// Mutable references to the trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gain, &mut self.bias]
    }

    /// Clears parameter gradients.
    pub fn zero_grad(&mut self) {
        self.gain.zero_grad();
        self.bias.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_rows_are_normalized() {
        let mut ln = LayerNorm::new(4);
        let x = Matrix::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, -1.0, 0.0, 1.0, 10.0]);
        let y = ln.forward(&x);
        for r in 0..2 {
            let row = y.row(r);
            let mean = row.iter().sum::<f32>() / 4.0;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn gain_bias_applied() {
        let mut ln = LayerNorm::new(2);
        ln.gain.value.data_mut().copy_from_slice(&[2.0, 2.0]);
        ln.bias.value.data_mut().copy_from_slice(&[1.0, 1.0]);
        let x = Matrix::from_row(&[0.0, 2.0]);
        let y = ln.forward(&x);
        // normalized row is [-1, 1] -> gain 2, bias 1 -> [-1, 3]
        assert!((y.data()[0] + 1.0).abs() < 1e-3);
        assert!((y.data()[1] - 3.0).abs() < 1e-3);
    }

    /// Finite-difference gradient check for the input gradient.
    #[test]
    fn numerical_gradient_check_input() {
        let dim = 5;
        let x0 = Matrix::from_row(&[0.5, -1.2, 2.0, 0.1, -0.4]);
        // Loss = sum of outputs (so dy = ones).
        let mut ln = LayerNorm::new(dim);
        ln.gain
            .value
            .data_mut()
            .copy_from_slice(&[1.1, 0.9, 1.3, 0.7, 1.0]);
        let _ = ln.forward(&x0);
        let dx = ln.backward(&Matrix::from_row(&[1.0; 5]));

        let f = |x: &Matrix, ln: &LayerNorm| -> f32 { ln.forward_inference(x).data().iter().sum() };
        let eps = 1e-2f32;
        for c in 0..dim {
            let mut xp = x0.clone();
            xp.data_mut()[c] += eps;
            let mut xm = x0.clone();
            xm.data_mut()[c] -= eps;
            let numeric = (f(&xp, &ln) - f(&xm, &ln)) / (2.0 * eps);
            let analytic = dx.data()[c];
            assert!(
                (analytic - numeric).abs() < 2e-2,
                "c={c} analytic={analytic} numeric={numeric}"
            );
        }
    }

    /// Finite-difference gradient check for gain/bias gradients.
    #[test]
    fn numerical_gradient_check_params() {
        let x0 = Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.0, 0.0, -0.5]);
        let mut ln = LayerNorm::new(3);
        let _ = ln.forward(&x0);
        let _ = ln.backward(&Matrix::from_vec(2, 3, vec![1.0; 6]));
        let analytic_dgain = ln.gain.grad.data().to_vec();

        let eps = 1e-2f32;
        for (c, &analytic) in analytic_dgain.iter().enumerate() {
            let mut ln2 = LayerNorm::new(3);
            ln2.gain.value.data_mut()[c] += eps;
            let fp: f32 = ln2.forward_inference(&x0).data().iter().sum();
            let mut ln3 = LayerNorm::new(3);
            ln3.gain.value.data_mut()[c] -= eps;
            let fm: f32 = ln3.forward_inference(&x0).data().iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 2e-2,
                "c={c} analytic={analytic} numeric={numeric}"
            );
        }
    }
}
