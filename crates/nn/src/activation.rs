//! Activation functions. The paper uses the "leaky" variant of rectified
//! linear units throughout (§6.1).

use crate::tensor::Matrix;

/// Leaky ReLU with a configurable negative slope (default 0.01).
#[derive(Clone, Debug)]
pub struct LeakyRelu {
    /// Slope applied to negative inputs.
    pub slope: f32,
    cache: Option<Matrix>,
}

impl Default for LeakyRelu {
    fn default() -> Self {
        LeakyRelu {
            slope: 0.01,
            cache: None,
        }
    }
}

impl LeakyRelu {
    /// Creates a leaky ReLU with the given negative slope.
    pub fn new(slope: f32) -> Self {
        LeakyRelu { slope, cache: None }
    }

    /// Forward pass, caching the input for the backward pass.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        self.cache = Some(x.clone());
        self.apply(x)
    }

    /// Forward pass without caching (inference only).
    pub fn apply(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        self.apply_inplace(&mut out);
        out
    }

    /// Allocation-free inference: rectifies `x` in place.
    pub fn apply_inplace(&self, x: &mut Matrix) {
        let s = self.slope;
        for v in x.data_mut() {
            if *v < 0.0 {
                *v *= s;
            }
        }
    }

    /// Backward pass: multiplies the upstream gradient by the local slope.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let x = self
            .cache
            .take()
            .expect("LeakyRelu::backward before forward");
        assert_eq!((x.rows(), x.cols()), (dy.rows(), dy.cols()));
        let mut dx = dy.clone();
        let s = self.slope;
        for (g, &xv) in dx.data_mut().iter_mut().zip(x.data()) {
            if xv < 0.0 {
                *g *= s;
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_positive_passthrough_negative_scaled() {
        let mut act = LeakyRelu::new(0.1);
        let x = Matrix::from_row(&[-2.0, 0.0, 3.0]);
        let y = act.forward(&x);
        assert_eq!(y.data(), &[-0.2, 0.0, 3.0]);
    }

    #[test]
    fn backward_scales_gradient_on_negative_side() {
        let mut act = LeakyRelu::new(0.1);
        let x = Matrix::from_row(&[-1.0, 2.0]);
        let _ = act.forward(&x);
        let dx = act.backward(&Matrix::from_row(&[1.0, 1.0]));
        assert_eq!(dx.data(), &[0.1, 1.0]);
    }

    #[test]
    fn numerical_gradient_check() {
        let slope = 0.01f32;
        let xs = [-0.7f32, -0.1, 0.2, 1.5];
        for &x0 in &xs {
            let mut act = LeakyRelu::new(slope);
            let _ = act.forward(&Matrix::from_row(&[x0]));
            let analytic = act.backward(&Matrix::from_row(&[1.0])).data()[0];
            let eps = 1e-3;
            let f = |x: f32| if x < 0.0 { slope * x } else { x };
            let numeric = (f(x0 + eps) - f(x0 - eps)) / (2.0 * eps);
            assert!((analytic - numeric).abs() < 1e-3, "x={x0}");
        }
    }
}
