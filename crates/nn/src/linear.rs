//! Fully-connected (dense) layer.

use crate::init::he_uniform;
use crate::param::Param;
use crate::tensor::Matrix;
use rand::rngs::StdRng;

/// A dense layer computing `y = x W + b` with `W: in_dim x out_dim`.
#[derive(Clone, Debug)]
pub struct Linear {
    /// Weight matrix, shape `in_dim x out_dim`.
    pub w: Param,
    /// Bias row vector, shape `1 x out_dim`.
    pub b: Param,
    cache_input: Option<Matrix>,
}

impl Linear {
    /// He-initialized dense layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        Linear {
            w: Param::new(he_uniform(in_dim, out_dim, in_dim, rng)),
            b: Param::new(Matrix::zeros(1, out_dim)),
            cache_input: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.value.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.value.cols()
    }

    /// Forward pass, caching the input for backprop.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        self.cache_input = Some(x.clone());
        self.forward_inference(x)
    }

    /// Forward pass without caching (inference only).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w.value);
        y.add_row_broadcast(&self.b.value);
        y
    }

    /// Allocation-free inference: writes `x W + b` into `y`, which is
    /// resized (reusing its buffer) to `x.rows() x out_dim`.
    pub fn forward_into(&self, x: &Matrix, y: &mut Matrix) {
        y.resize(x.rows(), self.out_dim());
        // `resize` just zero-filled `y`: accumulating is overwriting, and
        // skips the kernel's own redundant zeroing pass.
        x.matmul_into(&self.w.value, y, true);
        y.add_row_broadcast(&self.b.value);
    }

    /// Backward pass: accumulates `dW = x^T dy`, `db = colsum(dy)` and
    /// returns `dx = dy W^T`.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let x = self
            .cache_input
            .take()
            .expect("Linear::backward before forward");
        let dw = x.matmul_tn(dy);
        self.w.grad.add_assign(&dw);
        self.b.grad.add_assign(&dy.col_sum());
        dy.matmul_nt(&self.w.value)
    }

    /// Mutable references to the trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    /// Clears parameter gradients.
    pub fn zero_grad(&mut self) {
        self.w.zero_grad();
        self.b.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lin = Linear::new(3, 5, &mut rng);
        let x = Matrix::zeros(4, 3);
        let y = lin.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 5));
    }

    #[test]
    fn forward_known_values() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lin = Linear::new(2, 1, &mut rng);
        lin.w.value.data_mut().copy_from_slice(&[2.0, 3.0]);
        lin.b.value.data_mut().copy_from_slice(&[1.0]);
        let y = lin.forward(&Matrix::from_row(&[1.0, 1.0]));
        assert_eq!(y.data(), &[6.0]);
    }

    /// Finite-difference gradient check for weights, bias, and input.
    #[test]
    fn numerical_gradient_check() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut lin = Linear::new(3, 2, &mut rng);
        let x = Matrix::from_vec(2, 3, vec![0.1, -0.5, 0.7, 1.2, 0.3, -0.9]);
        let _ = lin.forward(&x);
        // Loss = sum of outputs => dy = ones.
        let dy = Matrix::from_vec(2, 2, vec![1.0; 4]);
        let dx = lin.backward(&dy);

        let loss =
            |lin: &Linear, x: &Matrix| -> f32 { lin.forward_inference(x).data().iter().sum() };
        let eps = 1e-3f32;

        // Weight grads.
        for i in 0..lin.w.value.len() {
            let mut lp = lin.clone();
            lp.w.value.data_mut()[i] += eps;
            let mut lm = lin.clone();
            lm.w.value.data_mut()[i] -= eps;
            let numeric = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps);
            let analytic = lin.w.grad.data()[i];
            assert!(
                (analytic - numeric).abs() < 1e-2,
                "w[{i}]: {analytic} vs {numeric}"
            );
        }
        // Bias grads.
        for i in 0..lin.b.value.len() {
            let mut lp = lin.clone();
            lp.b.value.data_mut()[i] += eps;
            let mut lm = lin.clone();
            lm.b.value.data_mut()[i] -= eps;
            let numeric = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps);
            let analytic = lin.b.grad.data()[i];
            assert!(
                (analytic - numeric).abs() < 1e-2,
                "b[{i}]: {analytic} vs {numeric}"
            );
        }
        // Input grads.
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let numeric = (loss(&lin, &xp) - loss(&lin, &xm)) / (2.0 * eps);
            let analytic = dx.data()[i];
            assert!(
                (analytic - numeric).abs() < 1e-2,
                "x[{i}]: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn gradients_accumulate_across_backwards() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lin = Linear::new(2, 1, &mut rng);
        let x = Matrix::from_row(&[1.0, 2.0]);
        let dy = Matrix::from_row(&[1.0]);
        let _ = lin.forward(&x);
        let _ = lin.backward(&dy);
        let g1 = lin.w.grad.data().to_vec();
        let _ = lin.forward(&x);
        let _ = lin.backward(&dy);
        let g2 = lin.w.grad.data().to_vec();
        assert!((g2[0] - 2.0 * g1[0]).abs() < 1e-6);
    }
}
