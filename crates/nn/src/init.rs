//! Weight initialization schemes.

use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Kaiming/He uniform initialization for leaky-ReLU networks.
///
/// Samples from `U(-bound, bound)` with `bound = sqrt(6 / fan_in)`, the
/// standard choice for rectifier activations.
pub fn he_uniform(rows: usize, cols: usize, fan_in: usize, rng: &mut StdRng) -> Matrix {
    let bound = (6.0 / fan_in.max(1) as f32).sqrt();
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-bound..bound))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Xavier/Glorot uniform initialization: `U(-b, b)` with
/// `b = sqrt(6 / (fan_in + fan_out))`. Used for the output layer.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let bound = (6.0 / (rows + cols).max(1) as f32).sqrt();
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-bound..bound))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn he_uniform_within_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = he_uniform(64, 32, 64, &mut rng);
        let bound = (6.0f32 / 64.0).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= bound));
        // Not degenerate: should have both signs.
        assert!(w.data().iter().any(|&v| v > 0.0));
        assert!(w.data().iter().any(|&v| v < 0.0));
    }

    #[test]
    fn xavier_uniform_within_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = xavier_uniform(16, 16, &mut rng);
        let bound = (6.0f32 / 32.0).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        assert_eq!(
            he_uniform(4, 4, 4, &mut a).data(),
            he_uniform(4, 4, 4, &mut b).data()
        );
    }
}
