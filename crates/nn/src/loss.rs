//! Loss functions. The paper trains the value network with a simple L2
//! loss, `(M(P_i) - min{C(P_f) | P_i ⊂ P_f})²` (§4).

use crate::tensor::Matrix;

/// Mean squared error over a batch of scalar predictions.
///
/// Returns `(loss, d_loss/d_pred)` where the gradient is scaled by `2/n`
/// (derivative of the mean of squared errors).
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!((pred.rows(), pred.cols()), (target.rows(), target.cols()));
    let n = pred.len().max(1) as f32;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    let mut loss = 0.0f32;
    for ((g, &p), &t) in grad
        .data_mut()
        .iter_mut()
        .zip(pred.data())
        .zip(target.data())
    {
        let d = p - t;
        loss += d * d;
        *g = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// Huber loss (smooth L1) — useful when bootstrapped latencies contain
/// heavy-tailed outliers; exposed as an alternative to the paper's L2.
pub fn huber(pred: &Matrix, target: &Matrix, delta: f32) -> (f32, Matrix) {
    assert_eq!((pred.rows(), pred.cols()), (target.rows(), target.cols()));
    let n = pred.len().max(1) as f32;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    let mut loss = 0.0f32;
    for ((g, &p), &t) in grad
        .data_mut()
        .iter_mut()
        .zip(pred.data())
        .zip(target.data())
    {
        let d = p - t;
        if d.abs() <= delta {
            loss += 0.5 * d * d;
            *g = d / n;
        } else {
            loss += delta * (d.abs() - 0.5 * delta);
            *g = delta * d.signum() / n;
        }
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_when_equal() {
        let p = Matrix::from_row(&[1.0, 2.0]);
        let (l, g) = mse(&p, &p);
        assert_eq!(l, 0.0);
        assert!(g.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn mse_known_value_and_gradient() {
        let p = Matrix::from_row(&[3.0]);
        let t = Matrix::from_row(&[1.0]);
        let (l, g) = mse(&p, &t);
        assert_eq!(l, 4.0);
        assert_eq!(g.data(), &[4.0]); // 2*(3-1)/1
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let p = Matrix::from_row(&[0.5, -1.0, 2.0]);
        let t = Matrix::from_row(&[0.0, 0.0, 0.0]);
        let (_, g) = mse(&p, &t);
        let eps = 1e-3;
        for i in 0..3 {
            let mut pp = p.clone();
            pp.data_mut()[i] += eps;
            let mut pm = p.clone();
            pm.data_mut()[i] -= eps;
            let numeric = (mse(&pp, &t).0 - mse(&pm, &t).0) / (2.0 * eps);
            assert!((g.data()[i] - numeric).abs() < 1e-2);
        }
    }

    #[test]
    fn huber_quadratic_inside_linear_outside() {
        let t = Matrix::from_row(&[0.0]);
        let (l_small, g_small) = huber(&Matrix::from_row(&[0.5]), &t, 1.0);
        assert!((l_small - 0.125).abs() < 1e-6);
        assert!((g_small.data()[0] - 0.5).abs() < 1e-6);
        let (l_big, g_big) = huber(&Matrix::from_row(&[3.0]), &t, 1.0);
        assert!((l_big - 2.5).abs() < 1e-6);
        assert!((g_big.data()[0] - 1.0).abs() < 1e-6);
    }
}
