//! The Adam optimizer (Kingma & Ba, ICLR 2015), as used by the paper for
//! value-network training (§6.1).

use crate::param::Param;

/// Adam optimizer with bias-corrected moment estimates.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate (`alpha`).
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Timestep (number of `step` calls so far).
    t: u64,
}

impl Adam {
    /// Creates an Adam optimizer with the conventional defaults
    /// (`beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Current timestep.
    pub fn timestep(&self) -> u64 {
        self.t
    }

    /// Applies one update to every parameter using its accumulated gradient,
    /// then leaves gradients untouched (call [`Param::zero_grad`] before the
    /// next backward pass).
    pub fn step(&mut self, params: &mut [&mut Param]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in params.iter_mut() {
            let g = p.grad.data().to_vec();
            let m = p.m.data_mut();
            for (mi, gi) in m.iter_mut().zip(&g) {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
            }
            let v = p.v.data_mut();
            for (vi, gi) in v.iter_mut().zip(&g) {
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let (mdata, vdata) = (p.m.data().to_vec(), p.v.data().to_vec());
            let w = p.value.data_mut();
            for ((wi, mi), vi) in w.iter_mut().zip(&mdata).zip(&vdata) {
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                *wi -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Matrix;

    /// Adam should descend a simple quadratic f(w) = w^2.
    #[test]
    fn adam_minimizes_quadratic() {
        let mut p = Param::new(Matrix::from_vec(1, 1, vec![5.0]));
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let w = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * w;
            opt.step(&mut [&mut p]);
            p.zero_grad();
        }
        assert!(p.value.data()[0].abs() < 0.05, "w = {}", p.value.data()[0]);
    }

    #[test]
    fn first_step_magnitude_is_lr() {
        // With bias correction, the very first Adam step has magnitude ~lr.
        let mut p = Param::new(Matrix::from_vec(1, 1, vec![1.0]));
        let mut opt = Adam::new(0.01);
        p.grad.data_mut()[0] = 123.0; // arbitrary gradient scale
        opt.step(&mut [&mut p]);
        let delta = (1.0 - p.value.data()[0]).abs();
        assert!((delta - 0.01).abs() < 1e-4, "delta = {delta}");
    }

    #[test]
    fn timestep_advances() {
        let mut p = Param::new(Matrix::zeros(1, 1));
        let mut opt = Adam::new(0.01);
        assert_eq!(opt.timestep(), 0);
        opt.step(&mut [&mut p]);
        opt.step(&mut [&mut p]);
        assert_eq!(opt.timestep(), 2);
    }
}
