#![warn(missing_docs)]
//! # neo-nn — neural-network substrate for the Neo reproduction
//!
//! A small, dependency-light (CPU, `f32`) neural network library implementing
//! exactly what the Neo value network (Marcus et al., VLDB 2019, §4 and
//! Appendix A) needs:
//!
//! * dense [`linear::Linear`] layers,
//! * ["leaky" rectified linear units](activation::LeakyRelu) (§6.1),
//! * [layer normalization](layernorm::LayerNorm) (§6.1),
//! * [tree convolution](treeconv::TreeConv) over execution-plan trees and
//!   [dynamic max pooling](treeconv::DynamicPooling) (§4.1),
//! * the [Adam](adam::Adam) optimizer (§6.1),
//! * [L2 loss](loss::mse) (§4),
//!
//! with full backpropagation, verified by finite-difference gradient checks
//! in each module's tests.
//!
//! The paper used PyTorch; this crate substitutes a from-scratch
//! implementation so the whole system is self-contained Rust (see
//! DESIGN.md §1).

pub mod activation;
pub mod adam;
pub mod init;
pub mod layernorm;
pub mod linear;
pub mod loss;
pub mod network;
pub mod param;
pub mod scratch;
pub mod serialize;
pub mod tensor;
pub mod treeconv;

pub use activation::LeakyRelu;
pub use adam::Adam;
pub use layernorm::LayerNorm;
pub use linear::Linear;
pub use network::Mlp;
pub use param::{clip_grad_norm, Param};
pub use scratch::{Scratch, ScratchPool};
pub use serialize::{read_params, write_params};
pub use tensor::{realloc_events, Matrix};
pub use treeconv::{DynamicPooling, TreeConv, TreeTopology, NO_CHILD};
