//! A small sequential multi-layer perceptron container: stacks of
//! `Linear -> LayerNorm -> LeakyReLU` blocks with a plain linear output.
//!
//! The Neo value network (in the `neo` crate) composes two of these MLPs
//! with the tree-convolution stack from [`crate::treeconv`].

use crate::activation::LeakyRelu;
use crate::layernorm::LayerNorm;
use crate::linear::Linear;
use crate::param::Param;
use crate::tensor::Matrix;
use rand::rngs::StdRng;

/// One MLP block: dense layer, optional layer norm, optional activation.
#[derive(Clone, Debug)]
struct Block {
    lin: Linear,
    norm: Option<LayerNorm>,
    act: Option<LeakyRelu>,
}

/// A sequential feed-forward network.
///
/// # Examples
///
/// ```
/// use neo_nn::{Mlp, Matrix, Adam, loss::mse};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut mlp = Mlp::new(&[2, 8, 1], true, false, &mut rng);
/// let mut opt = Adam::new(1e-2);
/// let x = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
/// let t = Matrix::from_vec(4, 1, vec![0., 1., 1., 0.]); // XOR
/// for _ in 0..500 {
///     let pred = mlp.forward(&x);
///     let (_, grad) = mse(&pred, &t);
///     mlp.zero_grad();
///     mlp.backward(&grad);
///     opt.step(&mut mlp.params_mut());
/// }
/// let (final_loss, _) = mse(&mlp.forward_inference(&x), &t);
/// assert!(final_loss < 0.1);
/// ```
#[derive(Clone, Debug)]
pub struct Mlp {
    blocks: Vec<Block>,
}

impl Mlp {
    /// Builds an MLP through the given layer `sizes` (e.g. `[64,128,64,32]`
    /// builds three dense layers). Hidden layers get layer norm (when
    /// `layer_norm`) and leaky-ReLU activations; the final layer is linear
    /// unless `final_activation` is set.
    ///
    /// # Panics
    /// Panics if fewer than two sizes are given.
    pub fn new(
        sizes: &[usize],
        layer_norm: bool,
        final_activation: bool,
        rng: &mut StdRng,
    ) -> Self {
        assert!(
            sizes.len() >= 2,
            "Mlp needs at least input and output sizes"
        );
        let mut blocks = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let last = i == sizes.len() - 2;
            let activate = !last || final_activation;
            blocks.push(Block {
                lin: Linear::new(sizes[i], sizes[i + 1], rng),
                norm: if activate && layer_norm {
                    Some(LayerNorm::new(sizes[i + 1]))
                } else {
                    None
                },
                act: if activate {
                    Some(LeakyRelu::default())
                } else {
                    None
                },
            });
        }
        Mlp { blocks }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.blocks[0].lin.in_dim()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.blocks.last().unwrap().lin.out_dim()
    }

    /// Forward pass with caching for backprop.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for b in &mut self.blocks {
            h = b.lin.forward(&h);
            if let Some(n) = &mut b.norm {
                h = n.forward(&h);
            }
            if let Some(a) = &mut b.act {
                h = a.forward(&h);
            }
        }
        h
    }

    /// Forward pass without caching (inference only).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for b in &self.blocks {
            h = b.lin.forward_inference(&h);
            if let Some(n) = &b.norm {
                h = n.forward_inference(&h);
            }
            if let Some(a) = &b.act {
                h = a.apply(&h);
            }
        }
        h
    }

    /// Allocation-free inference: ping-pongs between `tmp` and `out` so the
    /// final block always lands in `out`. Both buffers are resized in place
    /// (reusing their allocations); `x` is untouched.
    pub fn forward_inference_into(&self, x: &Matrix, tmp: &mut Matrix, out: &mut Matrix) {
        // Choose the starting buffer so the last write hits `out`.
        let (mut dst, mut other): (&mut Matrix, &mut Matrix) = if self.blocks.len() % 2 == 1 {
            (out, tmp)
        } else {
            (tmp, out)
        };
        for (i, b) in self.blocks.iter().enumerate() {
            let src: &Matrix = if i == 0 { x } else { other };
            b.lin.forward_into(src, dst);
            if let Some(n) = &b.norm {
                n.forward_inference_inplace(dst);
            }
            if let Some(a) = &b.act {
                a.apply_inplace(dst);
            }
            std::mem::swap(&mut dst, &mut other);
        }
        // After the final swap the result buffer is `other` == `out`.
    }

    /// Read-only view of the layer stack as `(linear, norm?, activation?)`
    /// triples — introspection for serialization tooling and the bench
    /// harness's baseline reimplementation.
    pub fn layers(
        &self,
    ) -> impl Iterator<Item = (&Linear, Option<&LayerNorm>, Option<&LeakyRelu>)> {
        self.blocks
            .iter()
            .map(|b| (&b.lin, b.norm.as_ref(), b.act.as_ref()))
    }

    /// Backward pass: returns the gradient w.r.t. the input.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let mut g = dy.clone();
        for b in self.blocks.iter_mut().rev() {
            if let Some(a) = &mut b.act {
                g = a.backward(&g);
            }
            if let Some(n) = &mut b.norm {
                g = n.backward(&g);
            }
            g = b.lin.backward(&g);
        }
        g
    }

    /// Mutable references to every trainable parameter.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        for b in &mut self.blocks {
            out.extend(b.lin.params_mut());
            if let Some(n) = &mut b.norm {
                out.extend(n.params_mut());
            }
        }
        out
    }

    /// Clears all parameter gradients.
    pub fn zero_grad(&mut self) {
        for b in &mut self.blocks {
            b.lin.zero_grad();
            if let Some(n) = &mut b.norm {
                n.zero_grad();
            }
        }
    }

    /// Total scalar parameter count.
    pub fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adam::Adam;
    use crate::loss::mse;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn shapes_flow_through() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut mlp = Mlp::new(&[6, 12, 4], true, false, &mut rng);
        let y = mlp.forward(&Matrix::zeros(3, 6));
        assert_eq!((y.rows(), y.cols()), (3, 4));
        assert_eq!(mlp.in_dim(), 6);
        assert_eq!(mlp.out_dim(), 4);
    }

    /// End-to-end training sanity check: an MLP should fit y = x0 + 2*x1.
    #[test]
    fn mlp_learns_linear_function() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut mlp = Mlp::new(&[2, 16, 1], false, false, &mut rng);
        let mut opt = Adam::new(0.01);
        let mut final_loss = f32::MAX;
        for _ in 0..400 {
            let mut xs = Vec::new();
            let mut ts = Vec::new();
            for _ in 0..16 {
                let a: f32 = rng.gen_range(-1.0..1.0);
                let b: f32 = rng.gen_range(-1.0..1.0);
                xs.extend_from_slice(&[a, b]);
                ts.push(a + 2.0 * b);
            }
            let x = Matrix::from_vec(16, 2, xs);
            let t = Matrix::from_vec(16, 1, ts);
            let pred = mlp.forward(&x);
            let (l, dl) = mse(&pred, &t);
            final_loss = l;
            mlp.zero_grad();
            let _ = mlp.backward(&dl);
            opt.step(&mut mlp.params_mut());
        }
        assert!(final_loss < 0.01, "loss = {final_loss}");
    }

    /// Full finite-difference check through a deep MLP with layer norm.
    /// The seed is chosen so no pre-activation sits within `eps` of a
    /// leaky-ReLU kink (a kink inside the central-difference window makes
    /// the numeric estimate meaningless).
    #[test]
    fn numerical_gradient_check_deep() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut mlp = Mlp::new(&[4, 8, 8, 1], true, false, &mut rng);
        let x = Matrix::from_vec(2, 4, vec![0.2, -0.4, 0.9, 0.1, -0.7, 0.3, 0.5, -0.2]);
        let y = mlp.forward(&x);
        mlp.zero_grad();
        let dy = Matrix::from_vec(y.rows(), y.cols(), vec![1.0; y.len()]);
        let dx = mlp.backward(&dy);

        let loss = |mlp: &Mlp, x: &Matrix| -> f32 { mlp.forward_inference(x).data().iter().sum() };
        let eps = 1e-2f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let numeric = (loss(&mlp, &xp) - loss(&mlp, &xm)) / (2.0 * eps);
            assert!(
                (dx.data()[i] - numeric).abs() < 5e-2,
                "dx[{i}]: {} vs {numeric}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn inference_matches_training_forward() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut mlp = Mlp::new(&[3, 7, 2], true, false, &mut rng);
        let x = Matrix::from_vec(2, 3, vec![0.1, 0.2, 0.3, -0.1, -0.2, -0.3]);
        let a = mlp.forward(&x);
        let b = mlp.forward_inference(&x);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn param_count_reasonable() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut mlp = Mlp::new(&[10, 20, 1], false, false, &mut rng);
        // 10*20 + 20 + 20*1 + 1 = 241
        assert_eq!(mlp.param_count(), 241);
    }
}
