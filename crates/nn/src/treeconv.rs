//! Tree convolution (Mou et al., AAAI 2016) and dynamic pooling, the core
//! structural components of Neo's value network (paper §4.1, Appendix A).
//!
//! A batch of execution-plan trees (a *forest* — partial plans may have
//! several roots) is flattened into a node-feature matrix plus a
//! [`TreeTopology`] giving each node's left/right child indices and owning
//! tree. Each convolution filter is a triple of weight vectors
//! `(e_p, e_l, e_r)`; applying a filterbank to node `i` computes
//!
//! ```text
//! y_i = W^T [x_i ; x_left(i) ; x_right(i)] + b
//! ```
//!
//! with missing children treated as all-zero vectors (the paper "attaches
//! nodes with all zeros to each leaf node"). The output tree is structurally
//! isomorphic to the input, so layers stack; each layer widens the receptive
//! field by one generation. Dynamic pooling then takes the element-wise max
//! over every node of a tree, flattening variable-shaped trees into fixed
//! vectors.

use crate::init::he_uniform;
use crate::param::Param;
use crate::tensor::Matrix;
use rand::rngs::StdRng;

/// Sentinel index meaning "no child at this position".
pub const NO_CHILD: u32 = u32::MAX;

/// Structure of a batch of trees: per-node child pointers and tree ids.
///
/// The feature matrix is stored separately (one row per node) so that
/// successive convolution layers can share a single topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeTopology {
    /// Index of each node's left child, or [`NO_CHILD`].
    pub left: Vec<u32>,
    /// Index of each node's right child, or [`NO_CHILD`].
    pub right: Vec<u32>,
    /// Which tree each node belongs to (trees numbered `0..num_trees`).
    pub tree_of: Vec<u32>,
    /// Number of distinct trees in the batch.
    pub num_trees: usize,
}

impl TreeTopology {
    /// Number of nodes across all trees.
    pub fn num_nodes(&self) -> usize {
        self.left.len()
    }

    /// Checks internal consistency: equal-length arrays, child indices in
    /// range, tree ids in range, and every tree non-empty.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.left.len();
        if self.right.len() != n || self.tree_of.len() != n {
            return Err("left/right/tree_of length mismatch".into());
        }
        for (i, (&l, &r)) in self.left.iter().zip(&self.right).enumerate() {
            if l != NO_CHILD && l as usize >= n {
                return Err(format!("node {i}: left child {l} out of range"));
            }
            if r != NO_CHILD && r as usize >= n {
                return Err(format!("node {i}: right child {r} out of range"));
            }
        }
        let mut seen = vec![false; self.num_trees];
        for &t in &self.tree_of {
            let t = t as usize;
            if t >= self.num_trees {
                return Err(format!("tree id {t} out of range"));
            }
            seen[t] = true;
        }
        if !seen.iter().all(|&s| s) {
            return Err("some tree has no nodes".into());
        }
        Ok(())
    }
}

/// One tree-convolution layer: a filterbank of shape `3*cin x cout`.
#[derive(Clone, Debug)]
pub struct TreeConv {
    /// Filterbank weights: rows `0..cin` are `e_p`, `cin..2cin` are `e_l`,
    /// `2cin..3cin` are `e_r`, for every output channel.
    pub w: Param,
    /// Bias, shape `1 x cout`.
    pub b: Param,
    cin: usize,
    cache_gather: Option<Matrix>,
}

impl TreeConv {
    /// He-initialized tree convolution mapping `cin` to `cout` channels.
    pub fn new(cin: usize, cout: usize, rng: &mut StdRng) -> Self {
        TreeConv {
            w: Param::new(he_uniform(3 * cin, cout, 3 * cin, rng)),
            b: Param::new(Matrix::zeros(1, cout)),
            cin,
            cache_gather: None,
        }
    }

    /// Input channel count.
    pub fn cin(&self) -> usize {
        self.cin
    }

    /// Output channel count.
    pub fn cout(&self) -> usize {
        self.w.value.cols()
    }

    /// Builds the gathered `(x_p ; x_l ; x_r)` matrix, `n x 3cin`.
    fn gather(&self, x: &Matrix, topo: &TreeTopology) -> Matrix {
        let n = topo.num_nodes();
        let c = self.cin;
        assert_eq!(x.rows(), n, "feature/topology node count mismatch");
        assert_eq!(x.cols(), c, "TreeConv input channels");
        let mut g = Matrix::zeros(n, 3 * c);
        for i in 0..n {
            let grow = g.row_mut(i);
            grow[0..c].copy_from_slice(x.row(i));
            // Children copied after; can't hold two &mut rows of g at once,
            // so re-borrow below.
        }
        for i in 0..n {
            let l = topo.left[i];
            if l != NO_CHILD {
                let src = x.row(l as usize).to_vec();
                g.row_mut(i)[c..2 * c].copy_from_slice(&src);
            }
            let r = topo.right[i];
            if r != NO_CHILD {
                let src = x.row(r as usize).to_vec();
                g.row_mut(i)[2 * c..3 * c].copy_from_slice(&src);
            }
        }
        g
    }

    /// Forward pass (training): caches the gathered matrix for backprop.
    pub fn forward(&mut self, x: &Matrix, topo: &TreeTopology) -> Matrix {
        let g = self.gather(x, topo);
        let mut y = g.matmul(&self.w.value);
        y.add_row_broadcast(&self.b.value);
        self.cache_gather = Some(g);
        y
    }

    /// Forward pass without caching (inference only).
    pub fn forward_inference(&self, x: &Matrix, topo: &TreeTopology) -> Matrix {
        let mut pack = Matrix::zeros(0, 0);
        let mut side = Matrix::zeros(0, 0);
        let mut y = Matrix::zeros(0, 0);
        self.forward_into(x, topo, &mut pack, &mut side, &mut y);
        y
    }

    /// Allocation-free packed-children inference.
    ///
    /// Instead of materializing the `n x 3cin` gathered matrix (two thirds
    /// of which are zero-padding wherever children are missing — roughly
    /// half of all forest nodes are leaves), this splits the filterbank
    /// into its parent/left/right row bands and computes
    ///
    /// ```text
    /// y  = x · W_p + b            (every node)
    /// y[i] += x[left(i)]  · W_l   (only nodes with a left child)
    /// y[i] += x[right(i)] · W_r   (only nodes with a right child)
    /// ```
    ///
    /// The child terms multiply a *packed* matrix of just the referenced
    /// child rows against the corresponding row band of `W`
    /// ([`Matrix::matmul_into_rows`]), so missing children cost nothing.
    /// `pack` and `side` are caller-owned scratch buffers, resized in
    /// place.
    pub fn forward_into(
        &self,
        x: &Matrix,
        topo: &TreeTopology,
        pack: &mut Matrix,
        side: &mut Matrix,
        y: &mut Matrix,
    ) {
        let n = topo.num_nodes();
        let c = self.cin;
        assert_eq!(x.rows(), n, "feature/topology node count mismatch");
        assert_eq!(x.cols(), c, "TreeConv input channels");
        y.resize(n, self.cout());
        // `resize` just zero-filled `y`, so accumulating is overwriting —
        // and skips the kernel's own redundant zeroing pass.
        x.matmul_into_rows(&self.w.value, 0, y, true);
        y.add_row_broadcast(&self.b.value);
        Self::add_packed_children_bands(&self.w.value, [c, 2 * c], x, topo, pack, side, y);
    }

    /// The child half of a packed-children convolution, shared by
    /// [`TreeConv::forward_into`] and the `neo` crate's query-specialized
    /// first layer: for each child side, packs the referenced child rows of
    /// `x`, multiplies them against the row band of `w` starting at
    /// `band_offsets[side]`, and scatter-adds the products onto the parent
    /// rows of `y`.
    pub fn add_packed_children_bands(
        w: &Matrix,
        band_offsets: [usize; 2],
        x: &Matrix,
        topo: &TreeTopology,
        pack: &mut Matrix,
        side: &mut Matrix,
        y: &mut Matrix,
    ) {
        let c = x.cols();
        for (child_of, band) in [&topo.left, &topo.right].into_iter().zip(band_offsets) {
            let n_side = child_of.iter().filter(|&&ch| ch != NO_CHILD).count();
            if n_side == 0 {
                continue;
            }
            pack.resize(n_side, c);
            let mut j = 0;
            for &ch in child_of {
                if ch != NO_CHILD {
                    pack.row_mut(j).copy_from_slice(x.row(ch as usize));
                    j += 1;
                }
            }
            side.resize(n_side, y.cols());
            // Freshly zero-resized output: accumulate == overwrite.
            pack.matmul_into_rows(w, band, side, true);
            let mut j = 0;
            for (i, &ch) in child_of.iter().enumerate() {
                if ch != NO_CHILD {
                    for (o, &v) in y.row_mut(i).iter_mut().zip(side.row(j)) {
                        *o += v;
                    }
                    j += 1;
                }
            }
        }
    }

    /// Backward pass: accumulates filterbank gradients and scatters the
    /// gathered-input gradient back onto parent/left/right node positions.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Matrix, topo: &TreeTopology) -> Matrix {
        let g = self
            .cache_gather
            .take()
            .expect("TreeConv::backward before forward");
        let n = topo.num_nodes();
        let c = self.cin;
        assert_eq!(dy.rows(), n);
        // Parameter gradients.
        let dw = g.matmul_tn(dy);
        self.w.grad.add_assign(&dw);
        self.b.grad.add_assign(&dy.col_sum());
        // Gradient w.r.t. the gathered matrix, then scatter-add to nodes.
        let dg = dy.matmul_nt(&self.w.value);
        let mut dx = Matrix::zeros(n, c);
        for i in 0..n {
            let drow = dg.row(i).to_vec();
            {
                let dst = dx.row_mut(i);
                for (d, s) in dst.iter_mut().zip(&drow[0..c]) {
                    *d += s;
                }
            }
            let l = topo.left[i];
            if l != NO_CHILD {
                let dst = dx.row_mut(l as usize);
                for (d, s) in dst.iter_mut().zip(&drow[c..2 * c]) {
                    *d += s;
                }
            }
            let r = topo.right[i];
            if r != NO_CHILD {
                let dst = dx.row_mut(r as usize);
                for (d, s) in dst.iter_mut().zip(&drow[2 * c..3 * c]) {
                    *d += s;
                }
            }
        }
        dx
    }

    /// Mutable references to the trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    /// Clears parameter gradients.
    pub fn zero_grad(&mut self) {
        self.w.zero_grad();
        self.b.zero_grad();
    }
}

/// Dynamic (max) pooling: flattens each tree to a single vector by taking
/// the per-channel maximum over its nodes (paper Appendix A).
#[derive(Clone, Debug, Default)]
pub struct DynamicPooling {
    /// For each (tree, channel): node index that attained the max.
    cache_argmax: Option<(Vec<u32>, usize)>,
}

impl DynamicPooling {
    /// Creates a pooling layer.
    pub fn new() -> Self {
        Self::default()
    }

    fn pool(&self, x: &Matrix, topo: &TreeTopology) -> (Matrix, Vec<u32>) {
        let (n, c) = (x.rows(), x.cols());
        assert_eq!(n, topo.num_nodes());
        let t = topo.num_trees;
        let mut out = Matrix::from_vec(t, c, vec![f32::NEG_INFINITY; t * c]);
        let mut argmax = vec![u32::MAX; t * c];
        for i in 0..n {
            let tree = topo.tree_of[i] as usize;
            let row = x.row(i);
            let orow = out.row_mut(tree);
            for (ch, (&v, o)) in row.iter().zip(orow.iter_mut()).enumerate() {
                if v > *o {
                    *o = v;
                    argmax[tree * c + ch] = i as u32;
                }
            }
        }
        (out, argmax)
    }

    /// Forward pass (training): records argmax indices for backprop.
    pub fn forward(&mut self, x: &Matrix, topo: &TreeTopology) -> Matrix {
        let (out, argmax) = self.pool(x, topo);
        self.cache_argmax = Some((argmax, x.rows()));
        out
    }

    /// Forward pass without caching (inference only).
    pub fn forward_inference(&self, x: &Matrix, topo: &TreeTopology) -> Matrix {
        self.pool(x, topo).0
    }

    /// Allocation-free inference: pools into `out` (resized in place),
    /// skipping the argmax bookkeeping that only backprop needs.
    pub fn forward_inference_into(&self, x: &Matrix, topo: &TreeTopology, out: &mut Matrix) {
        let (n, c) = (x.rows(), x.cols());
        assert_eq!(n, topo.num_nodes());
        out.resize(topo.num_trees, c);
        out.data_mut()
            .iter_mut()
            .for_each(|v| *v = f32::NEG_INFINITY);
        for i in 0..n {
            let tree = topo.tree_of[i] as usize;
            let row = x.row(i);
            let orow = out.row_mut(tree);
            for (&v, o) in row.iter().zip(orow.iter_mut()) {
                if v > *o {
                    *o = v;
                }
            }
        }
    }

    /// Backward pass: routes each pooled gradient to its argmax node.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let (argmax, n) = self
            .cache_argmax
            .take()
            .expect("DynamicPooling::backward before forward");
        let c = dy.cols();
        let mut dx = Matrix::zeros(n, c);
        for t in 0..dy.rows() {
            let drow = dy.row(t);
            for ch in 0..c {
                let i = argmax[t * c + ch];
                if i != u32::MAX {
                    let v = dx.get(i as usize, ch) + drow[ch];
                    dx.set(i as usize, ch, v);
                }
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Topology for one 3-node tree: root 0 with children 1, 2.
    fn tri_topology() -> TreeTopology {
        TreeTopology {
            left: vec![1, NO_CHILD, NO_CHILD],
            right: vec![2, NO_CHILD, NO_CHILD],
            tree_of: vec![0, 0, 0],
            num_trees: 1,
        }
    }

    /// Paper Figure 6, Example 1: a `{1,-1}` filter detects two merge joins
    /// in a row (root output 2) and rejects hash-over-merge (root output 0).
    #[test]
    fn figure6_example1_merge_join_detector() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = TreeConv::new(5, 1, &mut rng);
        // e_p = e_l = e_r = [1, -1, 0, 0, 0]
        let filt = [1.0, -1.0, 0.0, 0.0, 0.0];
        let mut w = vec![0.0f32; 15];
        w[0..5].copy_from_slice(&filt);
        w[5..10].copy_from_slice(&filt);
        w[10..15].copy_from_slice(&filt);
        conv.w.value.data_mut().copy_from_slice(&w);

        // Plan 1: merge join over (merge join, C).
        // Node features from Fig. 6b (top): root [1,0,1,1,1], left child
        // (merge join) [1,0,1,1,0], right child (C) [0,0,0,0,1].
        let topo = TreeTopology {
            left: vec![1, 3, NO_CHILD, NO_CHILD, NO_CHILD],
            right: vec![2, 4, NO_CHILD, NO_CHILD, NO_CHILD],
            tree_of: vec![0; 5],
            num_trees: 1,
        };
        let x1 = Matrix::from_vec(
            5,
            5,
            vec![
                1.0, 0.0, 1.0, 1.0, 1.0, // root: merge join
                1.0, 0.0, 1.0, 1.0, 0.0, // merge join
                0.0, 0.0, 0.0, 0.0, 1.0, // C
                0.0, 0.0, 1.0, 0.0, 0.0, // A
                0.0, 0.0, 0.0, 1.0, 0.0, // B
            ],
        );
        let y1 = conv.forward_inference(&x1, &topo);
        assert_eq!(y1.get(0, 0), 2.0, "two merge joins in a row -> 2");

        // Plan 2: hash join over (merge join, C): root [0,1,1,1,1].
        let mut x2 = x1.clone();
        x2.row_mut(0).copy_from_slice(&[0.0, 1.0, 1.0, 1.0, 1.0]);
        let y2 = conv.forward_inference(&x2, &topo);
        assert_eq!(y2.get(0, 0), 0.0, "hash over merge -> 0");
    }

    #[test]
    fn leaf_children_treated_as_zeros() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = TreeConv::new(2, 1, &mut rng);
        // Output at a leaf should only involve e_p.
        conv.w
            .value
            .data_mut()
            .copy_from_slice(&[1.0, 1.0, 5.0, 5.0, 7.0, 7.0]);
        let topo = tri_topology();
        let x = Matrix::from_vec(3, 2, vec![0.0, 0.0, 1.0, 2.0, 0.0, 0.0]);
        let y = conv.forward_inference(&x, &topo);
        // Node 1 is a leaf with features [1,2]: y = 1*1 + 1*2 = 3.
        assert_eq!(y.get(1, 0), 3.0);
    }

    #[test]
    fn output_is_structurally_isomorphic() {
        let mut rng = StdRng::seed_from_u64(2);
        let conv = TreeConv::new(4, 8, &mut rng);
        let topo = tri_topology();
        let x = Matrix::zeros(3, 4);
        let y = conv.forward_inference(&x, &topo);
        assert_eq!(y.rows(), 3);
        assert_eq!(y.cols(), 8);
    }

    #[test]
    fn forest_with_multiple_roots_pools_per_tree() {
        // Two trees: a 3-node tree and a single-node tree.
        let topo = TreeTopology {
            left: vec![1, NO_CHILD, NO_CHILD, NO_CHILD],
            right: vec![2, NO_CHILD, NO_CHILD, NO_CHILD],
            tree_of: vec![0, 0, 0, 1],
            num_trees: 2,
        };
        let x = Matrix::from_vec(4, 2, vec![1.0, -1.0, 3.0, 0.5, 2.0, 9.0, -5.0, 4.0]);
        let mut pool = DynamicPooling::new();
        let y = pool.forward(&x, &topo);
        assert_eq!(y.rows(), 2);
        assert_eq!(y.row(0), &[3.0, 9.0]);
        assert_eq!(y.row(1), &[-5.0, 4.0]);
    }

    #[test]
    fn pooling_backward_routes_to_argmax() {
        let topo = TreeTopology {
            left: vec![1, NO_CHILD, NO_CHILD],
            right: vec![2, NO_CHILD, NO_CHILD],
            tree_of: vec![0, 0, 0],
            num_trees: 1,
        };
        let x = Matrix::from_vec(3, 1, vec![1.0, 5.0, 2.0]);
        let mut pool = DynamicPooling::new();
        let _ = pool.forward(&x, &topo);
        let dx = pool.backward(&Matrix::from_vec(1, 1, vec![10.0]));
        assert_eq!(dx.data(), &[0.0, 10.0, 0.0]);
    }

    /// Finite-difference gradient check through conv + pooling.
    #[test]
    fn numerical_gradient_check_through_stack() {
        let mut rng = StdRng::seed_from_u64(33);
        let mut conv = TreeConv::new(3, 2, &mut rng);
        let topo = tri_topology();
        let x = Matrix::from_vec(3, 3, vec![0.3, -0.2, 0.9, 1.1, 0.0, -0.5, 0.2, 0.7, 0.4]);

        let loss = |conv: &TreeConv, x: &Matrix| -> f32 {
            let pool = DynamicPooling::new();
            let y = conv.forward_inference(x, &tri_topology());
            pool.forward_inference(&y, &tri_topology())
                .data()
                .iter()
                .sum()
        };

        let y = conv.forward(&x, &topo);
        let mut pool = DynamicPooling::new();
        let _ = pool.forward(&y, &topo);
        let dpool = pool.backward(&Matrix::from_vec(1, 2, vec![1.0, 1.0]));
        let dx = conv.backward(&dpool, &topo);

        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let numeric = (loss(&conv, &xp) - loss(&conv, &xm)) / (2.0 * eps);
            assert!(
                (dx.data()[i] - numeric).abs() < 1e-2,
                "dx[{i}]: analytic {} vs numeric {numeric}",
                dx.data()[i]
            );
        }
        for i in 0..conv.w.value.len() {
            let mut cp = conv.clone();
            cp.w.value.data_mut()[i] += eps;
            let mut cm = conv.clone();
            cm.w.value.data_mut()[i] -= eps;
            let numeric = (loss(&cp, &x) - loss(&cm, &x)) / (2.0 * eps);
            assert!(
                (conv.w.grad.data()[i] - numeric).abs() < 1e-2,
                "dw[{i}]: analytic {} vs numeric {numeric}",
                conv.w.grad.data()[i]
            );
        }
    }

    #[test]
    fn topology_validation_catches_errors() {
        let mut topo = tri_topology();
        assert!(topo.validate().is_ok());
        topo.left[0] = 99;
        assert!(topo.validate().is_err());
        let mut topo2 = tri_topology();
        topo2.num_trees = 2; // tree 1 has no nodes
        assert!(topo2.validate().is_err());
    }
}
