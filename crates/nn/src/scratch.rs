//! Caller-owned scratch buffers for allocation-free inference.
//!
//! Every layer in this crate has an `*_into` / `*_inplace` inference
//! variant that writes into a caller-supplied [`Matrix`] instead of
//! returning a fresh one. [`Scratch`] bundles the buffers a full
//! value-network forward pass needs; because [`Matrix::resize`] reuses
//! allocations, a `Scratch` that has seen its largest batch once never
//! touches the allocator again — the property the search hot loop relies
//! on (verified by the zero-allocation tests in the `neo` crate and by
//! [`crate::tensor::realloc_events`]).
//!
//! The fields are public on purpose: a forward pass borrows several
//! buffers mutably at once (e.g. ping-pong activations plus a gather
//! buffer), which field borrows express naturally and index-based pools
//! cannot without unsafe.

use crate::tensor::Matrix;
use std::sync::Mutex;

/// Reusable buffers for one inference pipeline.
///
/// Buffer roles follow the value-network forward pass, but nothing
/// enforces that — any `*_into` method accepts any buffer.
#[derive(Clone, Debug, Default)]
pub struct Scratch {
    /// Ping activation buffer (e.g. the augmented node features).
    pub a: Matrix,
    /// Pong activation buffer.
    pub b: Matrix,
    /// Packed child-row buffer for tree convolution.
    pub gather: Matrix,
    /// Child-contribution output buffer for tree convolution.
    pub side: Matrix,
    /// Per-tree pooled features.
    pub pooled: Matrix,
    /// MLP ping-pong temporary.
    pub tmp: Matrix,
    /// Final layer output.
    pub out: Matrix,
}

impl Scratch {
    /// Creates an empty scratch pool; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total `f32` capacity currently held across all buffers.
    pub fn capacity(&self) -> usize {
        self.a.capacity()
            + self.b.capacity()
            + self.gather.capacity()
            + self.side.capacity()
            + self.pooled.capacity()
            + self.tmp.capacity()
            + self.out.capacity()
    }
}

/// A thread-safe free-list of [`Scratch`] buffer sets for multi-query
/// serving: each worker checks a `Scratch` out for the duration of one
/// search and returns it afterwards, so buffer growth is paid once per
/// *worker*, not once per *query*. The pool is `Send + Sync`; the lock is
/// held only for the O(1) push/pop, never during inference.
///
/// Checking out from an empty pool creates a fresh empty `Scratch`
/// (buffers grow on first use), so the pool never blocks on capacity.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<Vec<Scratch>>,
}

impl ScratchPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a scratch set out of the pool (or a fresh one when empty).
    ///
    /// The free-list lock poison-recovers throughout: it guards a plain
    /// `Vec` of reusable buffers under O(1) push/pop critical sections, so
    /// a panicked peer cannot have left it torn — and losing the pool
    /// would take every serving worker down with that one panic.
    pub fn checkout(&self) -> Scratch {
        self.free
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    /// Returns a scratch set to the pool, keeping its grown buffers for
    /// the next checkout.
    pub fn give_back(&self, scratch: Scratch) {
        self.free
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(scratch);
    }

    /// Number of scratch sets currently checked in.
    pub fn available(&self) -> usize {
        self.free
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_grow_then_stabilize() {
        let mut s = Scratch::new();
        s.a.resize(64, 32);
        s.b.resize(64, 32);
        let grown = s.capacity();
        assert!(grown >= 2 * 64 * 32);
        // Capacity (not the process-global realloc counter, which other
        // tests bump concurrently) proves the buffers stopped growing.
        for _ in 0..10 {
            s.a.resize(32, 16);
            s.b.resize(64, 32);
        }
        assert_eq!(s.capacity(), grown);
    }

    #[test]
    fn pool_recycles_grown_buffers_across_threads() {
        let pool = std::sync::Arc::new(ScratchPool::new());
        let mut s = pool.checkout();
        s.a.resize(64, 32);
        let grown = s.capacity();
        pool.give_back(s);
        assert_eq!(pool.available(), 1);
        // A checkout from another thread sees the same grown buffers.
        let p2 = pool.clone();
        let cap = std::thread::spawn(move || {
            let s = p2.checkout();
            let cap = s.capacity();
            p2.give_back(s);
            cap
        })
        .join()
        .unwrap();
        assert_eq!(cap, grown);
        assert_eq!(pool.available(), 1);
        // Empty pool: checkout still succeeds with a fresh scratch.
        let fresh = ScratchPool::new().checkout();
        assert_eq!(fresh.capacity(), 0);
    }
}
