#![warn(missing_docs)]
//! Vendored, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so this
//! workspace ships a small self-contained implementation of exactly the
//! `rand` 0.8 surface the Neo reproduction uses:
//!
//! * [`rngs::StdRng`] — a seedable, deterministic generator
//!   (xoshiro256++ keyed by SplitMix64, so `seed_from_u64` is stable),
//! * [`Rng::gen`], [`Rng::gen_range`] (half-open and inclusive integer and
//!   float ranges), [`Rng::gen_bool`],
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! The stream of values differs from upstream `rand` (which never promised
//! cross-version stability either); everything in this repository that cares
//! about reproducibility seeds its own `StdRng`, so determinism per seed is
//! the only contract — and that one is kept.

/// Low-level generator interface: a source of uniform random `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa-ish bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded uniform in `0..span` (span > 0). The modulo bias
/// of the widening-multiply method is < 2^-64 per draw — irrelevant for the
/// simulation workloads here.
#[inline]
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Widen before subtracting: a narrow-type wrapping_sub would
                // wrap ranges wider than the type's positive half (e.g.
                // -2e9..2e9 for i32) and sign-extend into a bogus ~2^64
                // span. The i128 difference is exact for every <= 64-bit
                // type and truncates to the correct span.
                let span = ((self.end as i128) - (self.start as i128)) as u64;
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = ((hi as i128) - (lo as i128)) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng, span + 1) as $t)
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// User-facing generator extension methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ with SplitMix64
    /// seeding. Statistically strong, tiny state, not cryptographic —
    /// matching how the workspace uses `StdRng` (seeded simulations).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2019).
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Slice helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-999..10_000);
            assert!((-999..10_000).contains(&v));
            let u: usize = rng.gen_range(3..12);
            assert!((3..12).contains(&u));
            let inc = rng.gen_range(1..=4usize);
            assert!((1..=4).contains(&inc));
            let f: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    /// Signed ranges wider than the type's positive half must not wrap
    /// (regression: `end.wrapping_sub(start)` in the narrow type
    /// sign-extended into a ~2^64 span and produced out-of-range draws).
    #[test]
    fn wide_signed_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2_000_000_000i32..2_000_000_000);
            assert!((-2_000_000_000..2_000_000_000).contains(&v), "{v}");
            let w = rng.gen_range(i64::MIN..i64::MAX);
            assert!(w < i64::MAX);
            let x = rng.gen_range(i8::MIN..=i8::MAX); // full-domain inclusive
            let _ = x;
            let y = rng.gen_range(-100i16..=100);
            assert!((-100..=100).contains(&y), "{y}");
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes_and_choose_hits_all() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left slice ordered");
        let pool = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*pool.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }
}
