#![warn(missing_docs)]
//! # neo — a learned query optimizer
//!
//! A from-scratch Rust reproduction of **Neo: A Learned Query Optimizer**
//! (Marcus, Negi, Mao, Zhang, Alizadeh, Kraska, Papaemmanouil, Tatbul —
//! VLDB 2019, arXiv:1904.03711).
//!
//! Neo replaces every component of a Selinger-style optimizer with learned
//! counterparts (paper Table 1):
//!
//! | Component | Module |
//! |---|---|
//! | Query representation | [`featurize`] (1-Hot / Histogram / R-Vector, §3) |
//! | Cost model | [`value_net`] (tree-convolution value network, §4) |
//! | Plan-space enumeration | [`search`] (DNN-guided best-first search, §4.2) |
//! | Cardinality estimation | histograms or learned embeddings (§5, `neo-embedding`) |
//! | Creation | [`runner`] (demonstration + reinforcement learning, §2) |
//!
//! ## Quickstart
//!
//! ```no_run
//! use neo::{Neo, NeoConfig, FeaturizationChoice};
//! use neo_engine::Engine;
//! use neo_query::workload::job;
//! use neo_storage::datagen::imdb;
//!
//! let db = imdb::generate(0.1, 42);
//! let workload = job::generate(&db, 42);
//! let (train, test) = workload.split_random(0.2, 42);
//! let mut neo = Neo::bootstrap(&db, Engine::PostgresLike, train, NeoConfig::default());
//! for episode in 0..10 {
//!     let stats = neo.run_episode(episode);
//!     println!("episode {episode}: loss {:.4}", stats.mean_loss);
//! }
//! let latencies = neo.evaluate(&test);
//! println!("test latency total: {:.1} ms", latencies.iter().sum::<f64>());
//! ```

pub mod checkpoint;
pub mod cost;
pub mod experience;
pub mod featurize;
pub mod runner;
pub mod search;
pub mod train;
pub mod value_net;

pub use cost::{CostFn, CostKind};
pub use experience::{Experience, TrainingSample, DEFAULT_PLANS_PER_QUERY};
pub use featurize::{EncodedPlan, Featurization, Featurizer};
pub use runner::{
    build_featurization, AuxCardSource, EpisodeStats, FeaturizationChoice, Neo, NeoConfig,
};
pub use search::{
    best_first_search, best_first_search_seeded_with_scratch, best_first_search_with_scratch,
    SearchBudget, SearchStats, DEFAULT_WAVEFRONT,
};
pub use train::TrainingSet;
pub use value_net::{InferenceSession, NetConfig, ValueNet};
