//! Reusable value-network training steps (paper §4.1), factored out of the
//! runner's monolithic `retrain` so that *incremental* retraining — the
//! closed-loop background trainer in `neo-learn` — can share the exact
//! same encode/shuffle/minibatch/Adam pipeline without dragging in the
//! whole [`crate::runner::Neo`] harness.
//!
//! The split is: [`TrainingSet::encode`] turns derived
//! [`TrainingSample`]s into cached query/plan encodings once, and
//! [`TrainingSet::train_epochs`] runs any number of shuffled minibatch
//! epochs over them against a [`ValueNet`]. The runner's `retrain` is now a
//! thin composition of the two; a background trainer calls them against a
//! *clone* of the serving network.

use crate::experience::TrainingSample;
use crate::featurize::{EncodedPlan, Featurizer};
use crate::value_net::ValueNet;
use neo_query::{Query, RelMask};
use neo_storage::Database;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use std::collections::HashMap;

/// A per-query aux-feature closure (the optional cardinality channel).
pub type AuxFn<'a> = Box<dyn FnMut(RelMask) -> f32 + 'a>;

/// An encoded, training-ready sample set: query encodings computed once
/// per distinct query, plan encodings once per sample.
pub struct TrainingSet {
    /// One encoding per distinct query, indexed by [`Self::query_of`].
    query_encs: Vec<Vec<f32>>,
    /// Per sample: index into [`Self::query_encs`].
    query_of: Vec<usize>,
    /// Per sample: the encoded partial-plan state.
    plans: Vec<EncodedPlan>,
    /// Per sample: the raw (ms) min-aggregated target cost.
    targets: Vec<f64>,
}

impl TrainingSet {
    /// Encodes `samples` (derived from experience for `queries`) into a
    /// reusable training set. `aux_factory`, when provided, builds the
    /// per-query aux-cardinality closure (must be provided exactly when
    /// the featurizer's aux channel is enabled).
    ///
    /// # Panics
    /// Panics if a sample references a query not present in `queries`.
    pub fn encode<'a>(
        featurizer: &Featurizer,
        db: &Database,
        queries: &[&Query],
        samples: &[TrainingSample],
        mut aux_factory: Option<&mut (dyn FnMut(&Query) -> AuxFn<'a> + '_)>,
    ) -> TrainingSet {
        let idx_of: HashMap<&str, usize> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| (q.id.as_str(), i))
            .collect();
        let query_encs: Vec<Vec<f32>> = queries
            .iter()
            .map(|q| featurizer.encode_query(db, q))
            .collect();
        let mut query_of = Vec::with_capacity(samples.len());
        let mut plans = Vec::with_capacity(samples.len());
        let mut targets = Vec::with_capacity(samples.len());
        for s in samples {
            let qi = *idx_of
                .get(s.query_id.as_str())
                .expect("sample references an unknown query");
            let q = queries[qi];
            let mut aux = aux_factory.as_mut().map(|f| f(q));
            plans.push(featurizer.encode_plan(q, &s.state, aux.as_mut().map(|f| &mut **f as _)));
            query_of.push(qi);
            targets.push(s.target);
        }
        TrainingSet {
            query_encs,
            query_of,
            plans,
            targets,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when there is nothing to train on.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Runs `epochs` shuffled minibatch passes over (up to `max_samples`
    /// of) the set against `net`, returning the mean batch loss of the
    /// final epoch (0.0 on an empty set).
    ///
    /// This is the exact training step the runner's `retrain` performs;
    /// callers own normalization ([`ValueNet::fit_normalization`]) because
    /// the right cost population depends on the experience store, not on
    /// this sample subset.
    pub fn train_epochs(
        &self,
        net: &mut ValueNet,
        epochs: usize,
        batch_size: usize,
        max_samples: usize,
        rng: &mut StdRng,
    ) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let batch_size = batch_size.max(1);
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut mean_loss = 0.0f32;
        for _ in 0..epochs.max(1) {
            idx.shuffle(rng);
            let take = idx.len().min(max_samples.max(1));
            let mut losses = Vec::new();
            for chunk in idx[..take].chunks(batch_size) {
                let qrefs: Vec<&[f32]> = chunk
                    .iter()
                    .map(|&i| self.query_encs[self.query_of[i]].as_slice())
                    .collect();
                let prefs: Vec<&EncodedPlan> = chunk.iter().map(|&i| &self.plans[i]).collect();
                let targets: Vec<f64> = chunk.iter().map(|&i| self.targets[i]).collect();
                losses.push(net.train_batch(&qrefs, &prefs, &targets));
            }
            mean_loss = losses.iter().sum::<f32>() / losses.len().max(1) as f32;
        }
        mean_loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experience::Experience;
    use crate::featurize::Featurization;
    use crate::value_net::NetConfig;
    use neo_expert::postgres_expert;
    use neo_query::workload::job;
    use neo_storage::datagen::imdb;
    use rand::SeedableRng;

    fn fixture() -> (
        neo_storage::Database,
        Vec<Query>,
        Featurizer,
        ValueNet,
        Experience,
    ) {
        let db = imdb::generate(0.02, 1);
        let queries: Vec<Query> = job::generate(&db, 1)
            .queries
            .into_iter()
            .filter(|q| q.num_relations() <= 5)
            .take(4)
            .collect();
        let f = Featurizer::new(&db, Featurization::Histogram);
        let net = ValueNet::new(
            f.query_dim(),
            f.plan_channels(),
            NetConfig {
                query_layers: vec![32, 16],
                conv_channels: vec![16, 8],
                head_layers: vec![16],
                lr: 5e-3,
                grad_clip: 5.0,
                ignore_structure: false,
            },
            7,
        );
        let mut exp = Experience::new();
        for (i, q) in queries.iter().enumerate() {
            exp.add(&q.id, postgres_expert(&db, q), 100.0 * (i + 1) as f64);
        }
        (db, queries, f, net, exp)
    }

    #[test]
    fn encode_then_train_reduces_loss() {
        let (db, queries, f, mut net, exp) = fixture();
        let refs: Vec<&Query> = queries.iter().collect();
        let samples = exp.training_samples(&refs);
        assert!(!samples.is_empty());
        net.fit_normalization(&exp.all_costs());
        let set = TrainingSet::encode(&f, &db, &refs, &samples, None);
        assert_eq!(set.len(), samples.len());
        let mut rng = StdRng::seed_from_u64(9);
        let first = set.train_epochs(&mut net, 1, 16, usize::MAX, &mut rng);
        let mut last = first;
        for _ in 0..30 {
            last = set.train_epochs(&mut net, 1, 16, usize::MAX, &mut rng);
        }
        assert!(last.is_finite() && first.is_finite());
        assert!(last < first, "loss should fall: {first} -> {last}");
    }

    #[test]
    fn empty_set_trains_to_zero_loss_without_touching_net() {
        let (db, queries, f, mut net, _) = fixture();
        let refs: Vec<&Query> = queries.iter().collect();
        let set = TrainingSet::encode(&f, &db, &refs, &[], None);
        assert!(set.is_empty());
        let qe = f.encode_query(&db, &queries[0]);
        let enc = f.encode_plan(
            &queries[0],
            &neo_query::PartialPlan::initial(&queries[0]),
            None,
        );
        let before = net.predict(&[&qe], &[&enc])[0];
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(set.train_epochs(&mut net, 3, 16, usize::MAX, &mut rng), 0.0);
        assert_eq!(net.predict(&[&qe], &[&enc])[0], before);
    }

    #[test]
    fn training_a_clone_leaves_the_original_untouched() {
        let (db, queries, f, net, exp) = fixture();
        let refs: Vec<&Query> = queries.iter().collect();
        let samples = exp.training_samples(&refs);
        let qe = f.encode_query(&db, &queries[0]);
        let enc = f.encode_plan(
            &queries[0],
            &neo_query::PartialPlan::initial(&queries[0]),
            None,
        );
        let before = net.predict(&[&qe], &[&enc])[0];

        let mut clone = net.clone();
        clone.fit_normalization(&exp.all_costs());
        let set = TrainingSet::encode(&f, &db, &refs, &samples, None);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            set.train_epochs(&mut clone, 1, 16, usize::MAX, &mut rng);
        }
        // The trainer-side clone moved...
        assert_ne!(clone.predict(&[&qe], &[&enc])[0], before);
        // ...while the serving-side original is bit-identical.
        assert_eq!(net.predict(&[&qe], &[&enc])[0], before);
    }
}
