//! DNN-guided best-first plan search (paper §4.2).
//!
//! A min-heap ordered by the value network's prediction repeatedly expands
//! the most promising partial plan into its children (specify one scan, or
//! merge two trees with a join operator). The search is *anytime*: it keeps
//! exploring until the budget (expansion count and/or wall-clock cutoff)
//! is exhausted and returns the most promising complete plan found; if no
//! complete plan has been found by then, it enters the paper's "hurry-up"
//! mode and greedily descends from the most promising frontier node.

use crate::featurize::Featurizer;
use crate::value_net::ValueNet;
use neo_query::{children, PartialPlan, PlanNode, Query, QueryContext, RelMask};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::time::Instant;

/// Search budget: both limits are optional; when both are set the first
/// one hit stops the search. The paper uses a 250 ms wall-clock cutoff
/// (§4.2, §6.5); the expansion budget gives deterministic training runs.
#[derive(Clone, Copy, Debug)]
pub struct SearchBudget {
    /// Maximum number of node expansions.
    pub max_expansions: Option<usize>,
    /// Wall-clock cutoff in milliseconds.
    pub time_limit_ms: Option<f64>,
}

impl SearchBudget {
    /// Expansion-bounded budget.
    pub fn expansions(n: usize) -> Self {
        SearchBudget { max_expansions: Some(n), time_limit_ms: None }
    }

    /// Time-bounded budget (the paper's 250 ms default).
    pub fn timed(ms: f64) -> Self {
        SearchBudget { max_expansions: None, time_limit_ms: Some(ms) }
    }
}

/// Statistics of one search run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchStats {
    /// Nodes expanded (popped and had children generated).
    pub expansions: usize,
    /// Plans scored by the value network.
    pub scored: usize,
    /// Wall-clock time of the search, milliseconds.
    pub wall_ms: f64,
    /// Whether hurry-up mode was needed to complete the plan.
    pub hurried: bool,
}

/// Heap entry ordered so the *lowest* predicted value pops first.
struct Candidate {
    score: f32,
    seq: u64,
    plan: PartialPlan,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.seq == other.seq
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse on score, tie-break on seq for
        // determinism (earlier insertion pops first).
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Runs the best-first search for `query`, returning the chosen complete
/// plan and statistics.
///
/// `aux` supplies the optional per-node cardinality feature; it must be
/// `Some` exactly when the featurizer's aux channel is enabled.
pub fn best_first_search(
    net: &ValueNet,
    featurizer: &Featurizer,
    db: &neo_storage::Database,
    query: &Query,
    budget: SearchBudget,
    mut aux: Option<&mut dyn FnMut(RelMask) -> f32>,
) -> (PlanNode, SearchStats) {
    let start = Instant::now();
    let ctx = QueryContext::new(db, query);
    let qenc = featurizer.encode_query(db, query);
    let mut stats = SearchStats::default();
    let mut seq = 0u64;
    let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
    let mut visited: HashSet<PartialPlan> = HashSet::new();
    let mut best_complete: Option<(f32, PlanNode)> = None;

    let score_batch = |plans: &[PartialPlan],
                       aux: &mut Option<&mut dyn FnMut(RelMask) -> f32>,
                       stats: &mut SearchStats|
     -> Vec<f32> {
        let encs: Vec<_> = plans
            .iter()
            .map(|p| featurizer.encode_plan(query, p, aux.as_mut().map(|f| &mut **f as _)))
            .collect();
        let qrefs: Vec<&[f32]> = vec![&qenc; encs.len()];
        let prefs: Vec<&crate::featurize::EncodedPlan> = encs.iter().collect();
        stats.scored += plans.len();
        net.predict(&qrefs, &prefs)
    };

    let initial = PartialPlan::initial(query);
    let s0 = score_batch(std::slice::from_ref(&initial), &mut aux, &mut stats)[0];
    heap.push(Candidate { score: s0, seq, plan: initial });
    seq += 1;

    let out_of_budget = |stats: &SearchStats, start: &Instant| -> bool {
        if let Some(me) = budget.max_expansions {
            if stats.expansions >= me {
                return true;
            }
        }
        if let Some(tl) = budget.time_limit_ms {
            if start.elapsed().as_secs_f64() * 1e3 >= tl {
                return true;
            }
        }
        false
    };

    let mut last_partial: Option<PartialPlan> = None;
    while let Some(cand) = heap.pop() {
        if out_of_budget(&stats, &start) {
            last_partial = Some(cand.plan);
            break;
        }
        if !visited.insert(cand.plan.clone()) {
            continue;
        }
        if let Some(tree) = cand.plan.as_complete() {
            // Anytime behaviour: remember the most promising complete plan
            // and keep exploring until the budget runs out.
            if best_complete.as_ref().is_none_or(|(s, _)| cand.score < *s) {
                best_complete = Some((cand.score, tree.clone()));
            }
            continue;
        }
        let kids = children(&cand.plan, &ctx);
        stats.expansions += 1;
        if kids.is_empty() {
            continue;
        }
        let scores = score_batch(&kids, &mut aux, &mut stats);
        for (k, s) in kids.into_iter().zip(scores) {
            if !visited.contains(&k) {
                heap.push(Candidate { score: s, seq, plan: k });
                seq += 1;
            }
        }
        last_partial = heap.peek().map(|c| c.plan.clone());
    }

    stats.wall_ms = start.elapsed().as_secs_f64() * 1e3;
    if let Some((_, tree)) = best_complete {
        return (tree, stats);
    }

    // "Hurry-up" mode (paper §4.2): greedily descend from the most
    // promising known partial plan until a complete plan is reached.
    stats.hurried = true;
    let mut plan = last_partial.unwrap_or_else(|| PartialPlan::initial(query));
    while !plan.is_complete() {
        let kids = children(&plan, &ctx);
        debug_assert!(!kids.is_empty(), "incomplete plan without children");
        let scores = score_batch(&kids, &mut aux, &mut stats);
        let best = scores
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap();
        plan = kids.into_iter().nth(best).unwrap();
    }
    stats.wall_ms = start.elapsed().as_secs_f64() * 1e3;
    (plan.roots.into_iter().next().unwrap(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::{Featurization, Featurizer};
    use crate::value_net::{NetConfig, ValueNet};
    use neo_query::workload::job;
    use neo_storage::datagen::imdb;

    fn setup(nrels: usize) -> (neo_storage::Database, Query, Featurizer, ValueNet) {
        let db = imdb::generate(0.02, 1);
        let wl = job::generate(&db, 1);
        let q = wl.queries.iter().find(|q| q.num_relations() == nrels).unwrap().clone();
        let f = Featurizer::new(&db, Featurization::OneHot);
        let cfg = NetConfig {
            query_layers: vec![32, 16],
            conv_channels: vec![16, 8],
            head_layers: vec![16],
            lr: 1e-2,
            grad_clip: 5.0,
            ignore_structure: false,
        };
        let net = ValueNet::new(f.query_dim(), f.plan_channels(), cfg, 3);
        (db, q, f, net)
    }

    #[test]
    fn search_returns_complete_valid_plan() {
        let (db, q, f, net) = setup(4);
        let (plan, stats) =
            best_first_search(&net, &f, &db, &q, SearchBudget::expansions(30), None);
        assert!(plan.fully_specified());
        assert_eq!(plan.rel_mask(), (1u64 << q.num_relations()) - 1);
        assert!(stats.scored > 0);
    }

    #[test]
    fn tiny_budget_triggers_hurry_up_and_still_completes() {
        let (db, q, f, net) = setup(7);
        let (plan, stats) =
            best_first_search(&net, &f, &db, &q, SearchBudget::expansions(2), None);
        assert!(plan.fully_specified());
        assert!(stats.hurried, "expected hurry-up under a 2-expansion budget");
    }

    #[test]
    fn search_is_deterministic() {
        let (db, q, f, net) = setup(5);
        let (p1, _) = best_first_search(&net, &f, &db, &q, SearchBudget::expansions(20), None);
        let (p2, _) = best_first_search(&net, &f, &db, &q, SearchBudget::expansions(20), None);
        assert_eq!(p1, p2);
    }

    #[test]
    fn timed_budget_respected_roughly() {
        let (db, q, f, net) = setup(8);
        let (plan, stats) = best_first_search(&net, &f, &db, &q, SearchBudget::timed(30.0), None);
        assert!(plan.fully_specified());
        // Allow generous slack: one batch scoring may overshoot the cutoff.
        assert!(stats.wall_ms < 3_000.0, "took {} ms", stats.wall_ms);
    }

    #[test]
    fn bigger_budget_never_worse_by_predicted_value() {
        let (db, q, f, net) = setup(6);
        let qenc = f.encode_query(&db, &q);
        let score = |tree: &PlanNode| {
            let p = PartialPlan::from_tree(tree.clone());
            let enc = f.encode_plan(&q, &p, None);
            net.predict(&[&qenc], &[&enc])[0]
        };
        let (small, _) = best_first_search(&net, &f, &db, &q, SearchBudget::expansions(3), None);
        let (large, _) = best_first_search(&net, &f, &db, &q, SearchBudget::expansions(60), None);
        assert!(score(&large) <= score(&small) + 1e-4);
    }
}
