//! DNN-guided best-first plan search (paper §4.2), batched.
//!
//! A min-heap ordered by the value network's prediction drives the search.
//! Each iteration pops a **wavefront** of up to `K` frontier plans (not just
//! one), generates all of their children, and scores the combined batch in a
//! single forward pass through a [`ValueNet::session`] — which runs the
//! query-level MLP once per search and reuses scratch buffers, so the
//! steady-state loop performs no per-batch heap allocation inside the
//! network. Larger batches amortize gather/matmul overhead, directly
//! raising plans-scored-per-second under the paper's 250 ms cutoff (§4.2,
//! §6.5).
//!
//! The search is *anytime*: it keeps exploring until the budget (expansion
//! count and/or wall-clock cutoff) is exhausted and returns the most
//! promising complete plan found; if no complete plan has been found by
//! then, it enters the paper's "hurry-up" mode and greedily descends from
//! the most promising frontier node.
//!
//! Visited-state deduplication uses a 128-bit structural hash of the plan
//! forest (preorder walk; unambiguous because node arity is fixed), so the
//! visited set stores 16-byte keys instead of cloned plan trees.

use crate::featurize::{EncodedPlan, Featurizer};
use crate::value_net::{InferenceSession, ValueNet};
use neo_nn::Scratch;
use neo_query::{children, PartialPlan, PlanNode, Query, QueryContext, RelMask};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::time::Instant;

/// Default wavefront width `K`: how many frontier plans are expanded (and
/// have all their children scored together) per iteration. 8 keeps batch
/// sizes in the 50–150 range for typical JOB queries — deep enough into the
/// batched regime to amortize per-call overhead without materially
/// distorting best-first order.
pub const DEFAULT_WAVEFRONT: usize = 8;

/// Search budget: both limits are optional; when both are set the first
/// one hit stops the search. The paper uses a 250 ms wall-clock cutoff
/// (§4.2, §6.5); the expansion budget gives deterministic training runs.
#[derive(Clone, Copy, Debug)]
pub struct SearchBudget {
    /// Maximum number of node expansions.
    pub max_expansions: Option<usize>,
    /// Wall-clock cutoff in milliseconds.
    pub time_limit_ms: Option<f64>,
    /// Wavefront width `K` (≥ 1): frontier plans expanded per batch.
    pub wavefront: usize,
}

impl SearchBudget {
    /// Expansion-bounded budget.
    pub fn expansions(n: usize) -> Self {
        SearchBudget {
            max_expansions: Some(n),
            time_limit_ms: None,
            wavefront: DEFAULT_WAVEFRONT,
        }
    }

    /// Time-bounded budget (the paper's 250 ms default).
    pub fn timed(ms: f64) -> Self {
        SearchBudget {
            max_expansions: None,
            time_limit_ms: Some(ms),
            wavefront: DEFAULT_WAVEFRONT,
        }
    }

    /// Overrides the wavefront width (`k = 1` reproduces strict
    /// one-expansion-at-a-time best-first search).
    pub fn with_wavefront(mut self, k: usize) -> Self {
        self.wavefront = k.max(1);
        self
    }
}

/// Statistics of one search run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchStats {
    /// Nodes expanded (popped and had children generated).
    pub expansions: usize,
    /// Plans scored by the value network.
    pub scored: usize,
    /// Batched forward passes through the value network.
    pub batches: usize,
    /// Wall-clock time of the search, milliseconds.
    pub wall_ms: f64,
    /// Whether hurry-up mode was needed to complete the plan.
    pub hurried: bool,
    /// Whether a warm-start seed plan was installed as the incumbent.
    pub seeded: bool,
    /// The network's predicted (normalized) value of the *chosen* plan —
    /// denormalize with [`ValueNet::to_cost`] for a predicted latency. The
    /// serving layer reports it alongside the observed execution latency so
    /// the replay buffer can prioritize by regret.
    pub best_score: f32,
}

/// Heap entry ordered so the *lowest* predicted value pops first.
struct Candidate {
    score: f32,
    seq: u64,
    plan: PartialPlan,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.seq == other.seq
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse on score, tie-break on seq for
        // determinism (earlier insertion pops first). `total_cmp` keeps the
        // order total even if a NaN ever leaks out of the network.
        other
            .score
            .total_cmp(&self.score)
            .then(other.seq.cmp(&self.seq))
    }
}

/// 128-bit structural key of a partial plan. A preorder walk with fixed
/// per-variant arity is prefix-unambiguous, and roots are already in
/// canonical order, so equal keys ⟺ equal plans (up to a ~2⁻¹²⁸ hash
/// collision). Two independent FNV-1a streams keep the key wide enough
/// that collisions are ignorable at search scale.
fn plan_key(plan: &PartialPlan) -> u128 {
    const OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
    const OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    #[inline]
    fn mix(h: &mut (u64, u64), v: u64) {
        h.0 = (h.0 ^ v).wrapping_mul(PRIME);
        h.1 = (h.1 ^ v.rotate_left(17))
            .wrapping_mul(PRIME)
            .rotate_left(13);
    }
    fn walk(node: &PlanNode, h: &mut (u64, u64)) {
        match node {
            PlanNode::Scan { rel, scan } => {
                mix(h, 0x51);
                mix(h, *rel as u64);
                mix(h, *scan as u64);
            }
            PlanNode::Join { op, left, right } => {
                mix(h, 0x1A);
                mix(h, *op as u64);
                walk(left, h);
                walk(right, h);
            }
        }
    }
    let mut h = (OFFSET_A, OFFSET_B);
    for root in &plan.roots {
        walk(root, &mut h);
    }
    ((h.0 as u128) << 64) | h.1 as u128
}

/// Reusable per-search scoring state: the inference session plus a pool of
/// `EncodedPlan` buffers re-encoded in place every batch.
struct Scorer<'n, 'f> {
    session: InferenceSession<'n>,
    featurizer: &'f Featurizer,
    pool: Vec<EncodedPlan>,
}

impl Scorer<'_, '_> {
    /// Encodes and scores `plans` in one batched forward pass.
    fn score_batch(
        &mut self,
        query: &Query,
        plans: &[PartialPlan],
        aux: &mut Option<&mut dyn FnMut(RelMask) -> f32>,
        stats: &mut SearchStats,
    ) -> &[f32] {
        if self.pool.len() < plans.len() {
            self.pool.resize_with(plans.len(), EncodedPlan::empty);
        }
        for (plan, slot) in plans.iter().zip(&mut self.pool) {
            self.featurizer.encode_plan_into(
                query,
                plan,
                aux.as_mut().map(|f| &mut **f as _),
                slot,
            );
        }
        stats.scored += plans.len();
        stats.batches += 1;
        self.session.score_pool(&self.pool[..plans.len()])
    }
}

/// Runs the batched best-first search for `query`, returning the chosen
/// complete plan and statistics.
///
/// `aux` supplies the optional per-node cardinality feature; it must be
/// `Some` exactly when the featurizer's aux channel is enabled.
pub fn best_first_search(
    net: &ValueNet,
    featurizer: &Featurizer,
    db: &neo_storage::Database,
    query: &Query,
    budget: SearchBudget,
    aux: Option<&mut dyn FnMut(RelMask) -> f32>,
) -> (PlanNode, SearchStats) {
    let (plan, stats, _) =
        best_first_search_with_scratch(net, featurizer, db, query, budget, aux, Scratch::new());
    (plan, stats)
}

/// [`best_first_search`] with a caller-supplied [`Scratch`] buffer set,
/// returned (grown) after the search. The `neo-serve` workers route every
/// search through a shared [`neo_nn::ScratchPool`] so inference-buffer
/// growth is paid once per worker instead of once per query.
pub fn best_first_search_with_scratch(
    net: &ValueNet,
    featurizer: &Featurizer,
    db: &neo_storage::Database,
    query: &Query,
    budget: SearchBudget,
    aux: Option<&mut dyn FnMut(RelMask) -> f32>,
    scratch: Scratch,
) -> (PlanNode, SearchStats, Scratch) {
    best_first_search_seeded_with_scratch(net, featurizer, db, query, budget, aux, None, scratch)
}

/// [`best_first_search_with_scratch`] with an optional **warm-start seed**:
/// a complete plan previously chosen for this query (typically under a
/// superseded model generation — see `neo-serve`'s epoch demotion). The
/// seed is scored under the *current* network as an incumbent that
/// challenges whatever the search produces — including a hurry-up descent,
/// which still runs (and still sets `stats.hurried`) when the budget pops
/// no complete plan, so a retrained model can displace the previous
/// generation's answer. The search can never return a plan the network
/// considers worse than the seed, and remains fully deterministic: the
/// result is the predicted-value argmin over `{seed} ∪ {complete plans
/// found or descended to}`.
///
/// A seed that does not cover exactly the query's relations (or is not
/// fully specified) is ignored rather than trusted.
#[allow(clippy::too_many_arguments)] // the seeded serving entry point: budget + aux + seed + scratch
pub fn best_first_search_seeded_with_scratch(
    net: &ValueNet,
    featurizer: &Featurizer,
    db: &neo_storage::Database,
    query: &Query,
    budget: SearchBudget,
    mut aux: Option<&mut dyn FnMut(RelMask) -> f32>,
    seed: Option<&PlanNode>,
    scratch: Scratch,
) -> (PlanNode, SearchStats, Scratch) {
    let start = Instant::now();
    let ctx = QueryContext::new(db, query);
    let qenc = featurizer.encode_query(db, query);
    let mut stats = SearchStats::default();
    let mut seq = 0u64;
    let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
    let mut visited: HashSet<u128> = HashSet::new();
    let mut best_complete: Option<(f32, PlanNode)> = None;
    let mut scorer = Scorer {
        session: net.session_with_scratch(&qenc, scratch),
        featurizer,
        pool: Vec::new(),
    };

    let initial = PartialPlan::initial(query);
    let s0 = scorer.score_batch(query, std::slice::from_ref(&initial), &mut aux, &mut stats)[0];
    heap.push(Candidate {
        score: s0,
        seq,
        plan: initial,
    });
    seq += 1;

    // The warm-start incumbent, kept *outside* `best_complete`: it
    // challenges whatever the search produces (including a hurry-up
    // descent) at the end, but must not suppress the search's own
    // mechanisms — a budget too small to pop a complete plan still runs
    // hurry-up under the *current* network, so a retrained model can
    // displace the previous generation's plan.
    let mut seed_incumbent: Option<(f32, PlanNode)> = None;
    if let Some(tree) = seed {
        let full: RelMask = (1u64 << query.num_relations()) - 1;
        if tree.fully_specified() && tree.rel_mask() == full {
            let sp = PartialPlan::from_tree(tree.clone());
            let s = scorer.score_batch(query, std::slice::from_ref(&sp), &mut aux, &mut stats)[0];
            seed_incumbent = Some((s, tree.clone()));
            // The incumbent counts as visited: re-deriving it organically
            // cannot improve on itself.
            visited.insert(plan_key(&sp));
            stats.seeded = true;
        }
    }

    let out_of_budget = |stats: &SearchStats, start: &Instant| -> bool {
        if let Some(me) = budget.max_expansions {
            if stats.expansions >= me {
                return true;
            }
        }
        if let Some(tl) = budget.time_limit_ms {
            if start.elapsed().as_secs_f64() * 1e3 >= tl {
                return true;
            }
        }
        false
    };

    let wavefront = budget.wavefront.max(1);
    let mut frontier: Vec<Candidate> = Vec::with_capacity(wavefront);
    let mut kids_batch: Vec<PartialPlan> = Vec::new();
    let mut batch_seen: HashSet<u128> = HashSet::new();
    let mut exhausted = false;
    while !out_of_budget(&stats, &start) {
        // Pop a wavefront of unvisited, incomplete frontier plans. A cap by
        // the remaining expansion budget keeps `expansions` counting
        // identical to the K = 1 search, so expansion-bounded runs stay
        // comparable across wavefront widths.
        let k_cap = match budget.max_expansions {
            Some(me) => wavefront.min(me - stats.expansions),
            None => wavefront,
        };
        frontier.clear();
        while frontier.len() < k_cap {
            let Some(cand) = heap.pop() else { break };
            if !visited.insert(plan_key(&cand.plan)) {
                continue;
            }
            if let Some(tree) = cand.plan.as_complete() {
                // Anytime behaviour: remember the most promising complete
                // plan and keep exploring until the budget runs out.
                if best_complete.as_ref().is_none_or(|(s, _)| cand.score < *s) {
                    best_complete = Some((cand.score, tree.clone()));
                }
                continue;
            }
            frontier.push(cand);
        }
        if frontier.is_empty() {
            // Heap exhausted (every reachable state visited) — nothing more
            // to expand, with or without budget.
            exhausted = true;
            break;
        }
        kids_batch.clear();
        batch_seen.clear();
        for cand in &frontier {
            let kids = children(&cand.plan, &ctx);
            stats.expansions += 1;
            for kid in kids {
                let key = plan_key(&kid);
                // Two frontier parents often share children; score each
                // distinct child once per batch (`visited` only covers
                // *popped* plans, so an in-batch set is still needed).
                if !visited.contains(&key) && batch_seen.insert(key) {
                    kids_batch.push(kid);
                }
            }
        }
        if kids_batch.is_empty() {
            continue;
        }
        let scores = scorer.score_batch(query, &kids_batch, &mut aux, &mut stats);
        for (plan, &score) in kids_batch.drain(..).zip(scores) {
            heap.push(Candidate { score, seq, plan });
            seq += 1;
        }
    }

    stats.wall_ms = start.elapsed().as_secs_f64() * 1e3;
    if let Some((score, tree)) = best_complete {
        // The organically found optimum, unless the seed incumbent still
        // scores strictly better under the current network.
        let chosen = match seed_incumbent {
            Some((seed_score, seed_tree)) if seed_score < score => {
                stats.best_score = seed_score;
                seed_tree
            }
            _ => {
                stats.best_score = score;
                tree
            }
        };
        return (chosen, stats, scorer.session.into_scratch());
    }

    // "Hurry-up" mode (paper §4.2): greedily descend from the most
    // promising known partial plan until a complete plan is reached.
    stats.hurried = true;
    let mut descended_score = s0;
    let mut plan = if exhausted {
        // All reachable states were visited without finding a complete plan
        // (cannot happen for well-formed queries); restart the descent.
        PartialPlan::initial(query)
    } else {
        heap.pop()
            .map(|c| {
                descended_score = c.score;
                c.plan
            })
            .unwrap_or_else(|| PartialPlan::initial(query))
    };
    while !plan.is_complete() {
        let kids = children(&plan, &ctx);
        debug_assert!(!kids.is_empty(), "incomplete plan without children");
        let scores = scorer.score_batch(query, &kids, &mut aux, &mut stats);
        let (best, best_score) = scores
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, s)| (i, *s))
            .unwrap();
        descended_score = best_score;
        plan = kids.into_iter().nth(best).unwrap();
    }
    let descended = plan.roots.into_iter().next().unwrap();
    // The incumbent challenges the descent: the returned plan is the
    // current network's argmin of the two. `descended_score` is the final
    // descent step's score for exactly this plan, so no extra forward
    // pass is needed.
    let chosen = match seed_incumbent {
        Some((seed_score, seed_tree)) if seed_score < descended_score => {
            stats.best_score = seed_score;
            seed_tree
        }
        _ => {
            stats.best_score = descended_score;
            descended
        }
    };
    stats.wall_ms = start.elapsed().as_secs_f64() * 1e3;
    (chosen, stats, scorer.session.into_scratch())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::{Featurization, Featurizer};
    use crate::value_net::{NetConfig, ValueNet};
    use neo_query::workload::job;
    use neo_storage::datagen::imdb;

    fn setup(nrels: usize) -> (neo_storage::Database, Query, Featurizer, ValueNet) {
        let db = imdb::generate(0.02, 1);
        let wl = job::generate(&db, 1);
        let q = wl
            .queries
            .iter()
            .find(|q| q.num_relations() == nrels)
            .unwrap()
            .clone();
        let f = Featurizer::new(&db, Featurization::OneHot);
        let cfg = NetConfig {
            query_layers: vec![32, 16],
            conv_channels: vec![16, 8],
            head_layers: vec![16],
            lr: 1e-2,
            grad_clip: 5.0,
            ignore_structure: false,
        };
        let net = ValueNet::new(f.query_dim(), f.plan_channels(), cfg, 3);
        (db, q, f, net)
    }

    #[test]
    fn search_returns_complete_valid_plan() {
        let (db, q, f, net) = setup(4);
        let (plan, stats) =
            best_first_search(&net, &f, &db, &q, SearchBudget::expansions(30), None);
        assert!(plan.fully_specified());
        assert_eq!(plan.rel_mask(), (1u64 << q.num_relations()) - 1);
        assert!(stats.scored > 0);
        assert!(stats.batches > 0);
    }

    #[test]
    fn tiny_budget_triggers_hurry_up_and_still_completes() {
        let (db, q, f, net) = setup(7);
        let (plan, stats) = best_first_search(&net, &f, &db, &q, SearchBudget::expansions(2), None);
        assert!(plan.fully_specified());
        assert!(
            stats.hurried,
            "expected hurry-up under a 2-expansion budget"
        );
    }

    #[test]
    fn search_is_deterministic() {
        let (db, q, f, net) = setup(5);
        let (p1, _) = best_first_search(&net, &f, &db, &q, SearchBudget::expansions(20), None);
        let (p2, _) = best_first_search(&net, &f, &db, &q, SearchBudget::expansions(20), None);
        assert_eq!(p1, p2);
    }

    #[test]
    fn expansion_budget_is_respected_exactly() {
        let (db, q, f, net) = setup(6);
        for budget in [1, 5, 12] {
            let (_, stats) =
                best_first_search(&net, &f, &db, &q, SearchBudget::expansions(budget), None);
            assert!(
                stats.expansions <= budget,
                "{} expansions under a budget of {budget}",
                stats.expansions
            );
        }
    }

    #[test]
    fn timed_budget_respected_roughly() {
        let (db, q, f, net) = setup(8);
        let (plan, stats) = best_first_search(&net, &f, &db, &q, SearchBudget::timed(30.0), None);
        assert!(plan.fully_specified());
        // Allow generous slack: one batch scoring may overshoot the cutoff.
        assert!(stats.wall_ms < 3_000.0, "took {} ms", stats.wall_ms);
    }

    #[test]
    fn bigger_budget_never_worse_by_predicted_value() {
        let (db, q, f, net) = setup(6);
        let qenc = f.encode_query(&db, &q);
        let score = |tree: &PlanNode| {
            let p = PartialPlan::from_tree(tree.clone());
            let enc = f.encode_plan(&q, &p, None);
            net.predict(&[&qenc], &[&enc])[0]
        };
        let (small, _) = best_first_search(&net, &f, &db, &q, SearchBudget::expansions(3), None);
        let (large, _) = best_first_search(&net, &f, &db, &q, SearchBudget::expansions(60), None);
        assert!(score(&large) <= score(&small) + 1e-4);
    }

    /// A 3-table chain query whose full plan space is small enough to
    /// exhaust, so searches at any wavefront width settle on the global
    /// predicted-value optimum.
    fn chain_fixture() -> (neo_storage::Database, Query) {
        use neo_query::{Aggregate, JoinEdge};
        use neo_storage::{Column, ForeignKey, Table};
        let n = 3;
        let mut tables = Vec::new();
        for i in 0..n {
            tables.push(Table::new(
                &format!("t{i}"),
                vec![
                    Column::int("id", vec![1, 2, 3]),
                    Column::int("prev", vec![1, 1, 2]),
                ],
            ));
        }
        let mut fks = Vec::new();
        let mut indexed = Vec::new();
        for i in 0..n {
            indexed.push((i, 0));
            if i > 0 {
                fks.push(ForeignKey {
                    from_table: i,
                    from_col: 1,
                    to_table: i - 1,
                    to_col: 0,
                });
                indexed.push((i, 1));
            }
        }
        let db = neo_storage::Database::build("chain", tables, fks, indexed);
        let q = Query {
            id: "chain_q".into(),
            family: "chain".into(),
            tables: (0..n).collect(),
            joins: (1..n)
                .map(|i| JoinEdge {
                    left_table: i,
                    left_col: 1,
                    right_table: i - 1,
                    right_col: 0,
                })
                .collect(),
            predicates: vec![],
            agg: Aggregate::CountStar,
        };
        (db, q)
    }

    /// ISSUE 1 acceptance: with a budget generous enough to exhaust the
    /// space, wavefront search (K > 1) must return the same plan as strict
    /// one-at-a-time best-first search (K = 1) on fixed seeds.
    #[test]
    fn wavefront_matches_single_expansion_search() {
        let (db, q) = chain_fixture();
        let f = Featurizer::new(&db, Featurization::OneHot);
        let cfg = NetConfig {
            query_layers: vec![16, 8],
            conv_channels: vec![8, 8],
            head_layers: vec![8],
            lr: 1e-2,
            grad_clip: 5.0,
            ignore_structure: false,
        };
        for seed in [3, 7] {
            let net = ValueNet::new(f.query_dim(), f.plan_channels(), cfg.clone(), seed);
            let budget = SearchBudget::expansions(1_000_000);
            let (p1, s1) = best_first_search(&net, &f, &db, &q, budget.with_wavefront(1), None);
            // The space must actually have been exhausted, not budget-cut.
            assert!(s1.expansions < 1_000_000, "chain space unexpectedly large");
            for k in [4, 16] {
                let (pk, sk) = best_first_search(&net, &f, &db, &q, budget.with_wavefront(k), None);
                assert_eq!(p1, pk, "seed {seed}: K={k} diverged from K=1");
                assert_eq!(s1.expansions, sk.expansions, "visited-state counts differ");
                assert!(!s1.hurried && !sk.hurried);
            }
        }
    }

    /// The wavefront batches children of several expansions: with K > 1 the
    /// per-batch size must exceed a single node's fan-out on average.
    #[test]
    fn wavefront_produces_bigger_batches() {
        let (db, q, f, net) = setup(8);
        let (_, s1) = best_first_search(
            &net,
            &f,
            &db,
            &q,
            SearchBudget::expansions(40).with_wavefront(1),
            None,
        );
        let (_, s8) = best_first_search(
            &net,
            &f,
            &db,
            &q,
            SearchBudget::expansions(40).with_wavefront(8),
            None,
        );
        let b1 = s1.scored as f64 / s1.batches as f64;
        let b8 = s8.scored as f64 / s8.batches as f64;
        assert!(b8 > 2.0 * b1, "mean batch {b8:.1} (K=8) vs {b1:.1} (K=1)");
    }

    #[test]
    fn plan_key_distinguishes_plans_and_is_stable() {
        let (db, q, _, _) = setup(5);
        let ctx = QueryContext::new(&db, &q);
        let initial = PartialPlan::initial(&q);
        let kids = children(&initial, &ctx);
        let mut keys: std::collections::HashSet<u128> = std::collections::HashSet::new();
        keys.insert(plan_key(&initial));
        for k in &kids {
            assert!(keys.insert(plan_key(k)), "collision for {}", k.describe());
            assert_eq!(plan_key(k), plan_key(&k.clone()), "key not stable");
        }
    }
}
