//! Cost functions (paper §4, §6.4.4).
//!
//! Neo minimizes a user-chosen cost `C(P_f)` rather than raw latency:
//!
//! * [`CostKind::WorkloadLatency`] — `C = L(P_f)`: minimize total workload
//!   latency;
//! * [`CostKind::Relative`] — `C = L(P_f) / Base(P_f)`: minimize latency
//!   *relative to a per-query baseline* (e.g. the PostgreSQL plan), which
//!   implicitly penalizes per-query regressions (paper Fig. 15).

use std::collections::HashMap;

/// Which cost function Neo optimizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CostKind {
    /// `C = L`: total workload latency.
    #[default]
    WorkloadLatency,
    /// `C = L / Base`: relative per-query improvement.
    Relative,
}

/// A configured cost function with per-query baselines.
#[derive(Clone, Debug, Default)]
pub struct CostFn {
    /// The kind in use.
    pub kind: CostKind,
    base: HashMap<String, f64>,
}

impl CostFn {
    /// A workload-latency cost function (no baselines needed).
    pub fn workload() -> Self {
        CostFn {
            kind: CostKind::WorkloadLatency,
            base: HashMap::new(),
        }
    }

    /// A relative cost function over the given per-query baselines
    /// (typically the latency of the expert's plan).
    pub fn relative(base: HashMap<String, f64>) -> Self {
        CostFn {
            kind: CostKind::Relative,
            base,
        }
    }

    /// Registers (or updates) a query's baseline latency.
    pub fn set_base(&mut self, query_id: &str, latency: f64) {
        self.base.insert(query_id.to_string(), latency);
    }

    /// Maps an observed latency to the cost the value network learns.
    ///
    /// # Panics
    /// Panics if `Relative` is used for a query with no baseline.
    pub fn cost(&self, query_id: &str, latency: f64) -> f64 {
        match self.kind {
            CostKind::WorkloadLatency => latency,
            CostKind::Relative => {
                let base = self
                    .base
                    .get(query_id)
                    .unwrap_or_else(|| panic!("no baseline for query {query_id}"));
                // Scaled so relative costs land in a similar log-range as
                // latencies (pure ratios cluster near 1.0).
                1_000.0 * latency / base.max(1e-6)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_cost_is_latency() {
        let c = CostFn::workload();
        assert_eq!(c.cost("q", 123.0), 123.0);
    }

    #[test]
    fn relative_cost_divides_by_base() {
        let mut c = CostFn::relative(HashMap::new());
        c.set_base("q", 200.0);
        assert!((c.cost("q", 100.0) - 500.0).abs() < 1e-9); // 1000 * 0.5
                                                            // Better-than-baseline < 1000 < worse-than-baseline.
        assert!(c.cost("q", 100.0) < 1_000.0);
        assert!(c.cost("q", 400.0) > 1_000.0);
    }

    #[test]
    #[should_panic(expected = "no baseline")]
    fn relative_without_base_panics() {
        let c = CostFn::relative(HashMap::new());
        let _ = c.cost("missing", 1.0);
    }
}
