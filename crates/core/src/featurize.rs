//! Query and plan featurization (paper §3).
//!
//! **Query-level encoding** (Fig. 3): the upper-triangular adjacency matrix
//! of the join graph over *all database tables*, concatenated with a
//! column-predicate vector in one of three variants (§3.2):
//! 1-Hot (predicate existence), Histogram (predicted selectivity), or
//! R-Vector (row-vector embedding slots, §5).
//!
//! **Plan-level encoding** (Fig. 4): each node becomes a vector of size
//! `|J| + 2|R|`: a one-hot join-operator prefix, then per-table
//! (table-scan, index-scan) flags — union of children for internal nodes,
//! both flags set for unspecified scans. The tree structure is preserved
//! as a [`neo_nn::TreeTopology`].

use neo_embedding::RVectorFeaturizer;
use neo_nn::{Matrix, TreeTopology, NO_CHILD};
use neo_query::{PartialPlan, PlanNode, Query, RelMask, ScanType};
use neo_storage::Database;
use std::sync::Arc;

/// Which column-predicate representation to use (paper §3.2, Fig. 12).
#[derive(Clone)]
pub enum Featurization {
    /// One-hot predicate existence. Buildable with no data access.
    OneHot,
    /// Histogram-predicted selectivities (uniformity assumptions).
    Histogram,
    /// Row-vector embedding slots (§5); the flag records whether the
    /// embedding was trained on the partially denormalized ("joins")
    /// corpus — used only for reporting.
    RVector {
        /// The trained predicate featurizer. `Arc` (not `Rc`) so a
        /// `Featurizer` can be shared across `neo-serve` worker threads.
        featurizer: Arc<RVectorFeaturizer>,
        /// Whether partial denormalization was used.
        joins: bool,
    },
}

impl Featurization {
    /// Human-readable name matching the paper's legend.
    pub fn name(&self) -> &'static str {
        match self {
            Featurization::OneHot => "1-Hot",
            Featurization::Histogram => "Histogram",
            Featurization::RVector { joins: true, .. } => "R-Vectors",
            Featurization::RVector { joins: false, .. } => "R-Vectors (no joins)",
        }
    }
}

impl std::fmt::Debug for Featurization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A plan encoded for the value network: node features plus topology.
#[derive(Clone, Debug)]
pub struct EncodedPlan {
    /// Node feature matrix, `num_nodes x plan_channels`.
    pub feats: Matrix,
    /// Tree structure (forest) of the plan.
    pub topo: TreeTopology,
}

impl EncodedPlan {
    /// An empty encoding, ready to be filled by
    /// [`Featurizer::encode_plan_into`]. Pools of these are reused across
    /// search batches so the steady-state encode path stops allocating.
    pub fn empty() -> Self {
        EncodedPlan {
            feats: Matrix::zeros(0, 0),
            topo: TreeTopology {
                left: Vec::new(),
                right: Vec::new(),
                tree_of: Vec::new(),
                num_trees: 0,
            },
        }
    }
}

/// Featurizes queries and plans for one database.
pub struct Featurizer {
    kind: Featurization,
    num_tables: usize,
    num_attrs: usize,
    /// Adds one extra per-node channel carrying a (log) cardinality signal
    /// (the Fig. 14 robustness experiments).
    pub aux_card_channel: bool,
}

impl Featurizer {
    /// Creates a featurizer for `db`.
    pub fn new(db: &Database, kind: Featurization) -> Self {
        Featurizer {
            kind,
            num_tables: db.num_tables(),
            num_attrs: db.num_attrs(),
            aux_card_channel: false,
        }
    }

    /// The featurization in use.
    pub fn kind(&self) -> &Featurization {
        &self.kind
    }

    /// Width of the query-level encoding.
    pub fn query_dim(&self) -> usize {
        let join_graph = self.num_tables * (self.num_tables - 1) / 2;
        let pred = match &self.kind {
            Featurization::OneHot | Featurization::Histogram => self.num_attrs,
            Featurization::RVector { featurizer, .. } => self.num_attrs * featurizer.slot_size(),
        };
        join_graph + pred
    }

    /// Channels per plan-tree node: `|J| + 2|R|` (+1 aux).
    pub fn plan_channels(&self) -> usize {
        3 + 2 * self.num_tables + usize::from(self.aux_card_channel)
    }

    /// Position of `(t1, t2)` (with `t1 < t2`) in the upper-triangular
    /// join-graph encoding.
    fn pair_index(&self, t1: usize, t2: usize) -> usize {
        debug_assert!(t1 < t2 && t2 < self.num_tables);
        // Row-major upper triangle: offset(t1) + (t2 - t1 - 1).
        t1 * (2 * self.num_tables - t1 - 1) / 2 + (t2 - t1 - 1)
    }

    /// Encodes the query-level (plan-independent) information (Fig. 3).
    pub fn encode_query(&self, db: &Database, query: &Query) -> Vec<f32> {
        let join_graph = self.num_tables * (self.num_tables - 1) / 2;
        let mut out = vec![0.0f32; self.query_dim()];
        for e in &query.joins {
            let (a, b) = if e.left_table < e.right_table {
                (e.left_table, e.right_table)
            } else {
                (e.right_table, e.left_table)
            };
            if a != b {
                out[self.pair_index(a, b)] = 1.0;
            }
        }
        match &self.kind {
            Featurization::OneHot => {
                for p in &query.predicates {
                    out[join_graph + db.attr_id(p.table(), p.col())] = 1.0;
                }
            }
            Featurization::Histogram => {
                // Predicted selectivity per attribute; products across
                // multiple predicates on the same attribute.
                for p in &query.predicates {
                    let slot = join_graph + db.attr_id(p.table(), p.col());
                    let sel = neo_expert::HistogramEstimator::predicate_selectivity(db, p) as f32;
                    out[slot] = if out[slot] == 0.0 {
                        sel.max(1e-6)
                    } else {
                        out[slot] * sel
                    };
                }
            }
            Featurization::RVector { featurizer, .. } => {
                let slot_size = featurizer.slot_size();
                for p in &query.predicates {
                    let base = join_graph + db.attr_id(p.table(), p.col()) * slot_size;
                    let v = featurizer.featurize(db, p);
                    for (i, x) in v.iter().enumerate() {
                        out[base + i] = *x;
                    }
                }
            }
        }
        out
    }

    /// Encodes a partial plan as a feature forest (Fig. 4). When
    /// `aux_card_channel` is set, `aux` must supply the per-node signal
    /// given the node's relation mask.
    pub fn encode_plan(
        &self,
        query: &Query,
        plan: &PartialPlan,
        aux: Option<&mut dyn FnMut(RelMask) -> f32>,
    ) -> EncodedPlan {
        let mut out = EncodedPlan::empty();
        self.encode_plan_into(query, plan, aux, &mut out);
        out
    }

    /// Allocation-reusing variant of [`Self::encode_plan`]: fills `out` in
    /// place, reusing its feature-matrix and topology allocations. The
    /// search hot loop keeps a pool of [`EncodedPlan`]s and re-encodes into
    /// them every batch.
    pub fn encode_plan_into(
        &self,
        query: &Query,
        plan: &PartialPlan,
        mut aux: Option<&mut dyn FnMut(RelMask) -> f32>,
        out: &mut EncodedPlan,
    ) {
        assert_eq!(
            self.aux_card_channel,
            aux.is_some(),
            "aux channel configured but no provider given (or vice versa)"
        );
        let n = plan.num_nodes();
        let c = self.plan_channels();
        out.feats.resize(n, c);
        out.topo.left.clear();
        out.topo.left.resize(n, NO_CHILD);
        out.topo.right.clear();
        out.topo.right.resize(n, NO_CHILD);
        out.topo.tree_of.clear();
        out.topo.tree_of.resize(n, 0);
        out.topo.num_trees = plan.roots.len();
        let mut next = 0usize;
        for (tree, root) in plan.roots.iter().enumerate() {
            self.encode_node(
                query,
                root,
                tree as u32,
                &mut next,
                &mut out.feats,
                &mut out.topo,
                &mut aux,
            );
        }
        debug_assert_eq!(next, n);
    }

    #[allow(clippy::too_many_arguments)]
    fn encode_node(
        &self,
        query: &Query,
        node: &PlanNode,
        tree: u32,
        next: &mut usize,
        feats: &mut Matrix,
        topo: &mut TreeTopology,
        aux: &mut Option<&mut dyn FnMut(RelMask) -> f32>,
    ) -> usize {
        let me = *next;
        *next += 1;
        topo.tree_of[me] = tree;
        match node {
            PlanNode::Scan { rel, scan } => {
                let t = query.tables[*rel];
                let row = feats.row_mut(me);
                match scan {
                    ScanType::Table => row[3 + 2 * t] = 1.0,
                    ScanType::Index => row[3 + 2 * t + 1] = 1.0,
                    ScanType::Unspecified => {
                        row[3 + 2 * t] = 1.0;
                        row[3 + 2 * t + 1] = 1.0;
                    }
                }
            }
            PlanNode::Join { op, left, right } => {
                let l = self.encode_node(query, left, tree, next, feats, topo, aux);
                let r = self.encode_node(query, right, tree, next, feats, topo, aux);
                topo.left[me] = l as u32;
                topo.right[me] = r as u32;
                // Join-type one-hot + union of the children's scan flags.
                let lrow = feats.row(l).to_vec();
                let rrow = feats.row(r).to_vec();
                let row = feats.row_mut(me);
                row[op.index()] = 1.0;
                let upto = 3 + 2 * self.num_tables;
                for i in 3..upto {
                    row[i] = (lrow[i] + rrow[i]).min(1.0);
                }
            }
        }
        if let Some(f) = aux.as_mut() {
            let c = self.plan_channels() - 1;
            let v = f(node.rel_mask());
            feats.set(me, c, v);
        }
        me
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_query::{workload::job, JoinOp, QueryContext};
    use neo_storage::datagen::imdb;

    fn setup() -> (Database, Query) {
        let db = imdb::generate(0.02, 1);
        let wl = job::generate(&db, 1);
        let q = wl
            .queries
            .iter()
            .find(|q| q.num_relations() == 4)
            .unwrap()
            .clone();
        (db, q)
    }

    /// The featurizer is shared read-only across `neo-serve` workers; the
    /// `Arc<RVectorFeaturizer>` inside `Featurization` keeps it `Send +
    /// Sync` (an `Rc` here previously pinned everything to one thread).
    #[test]
    fn featurizer_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Featurizer>();
        assert_send_sync::<Featurization>();
        assert_send_sync::<EncodedPlan>();
    }

    #[test]
    fn query_encoding_width_matches_kind() {
        let (db, q) = setup();
        let one_hot = Featurizer::new(&db, Featurization::OneHot);
        let tri = db.num_tables() * (db.num_tables() - 1) / 2;
        assert_eq!(one_hot.query_dim(), tri + db.num_attrs());
        let enc = one_hot.encode_query(&db, &q);
        assert_eq!(enc.len(), one_hot.query_dim());
        // Join-graph bits: one per join edge with distinct tables.
        let bits: f32 = enc[..tri].iter().sum();
        assert_eq!(bits as usize, q.joins.len());
    }

    #[test]
    fn one_hot_marks_predicate_attrs() {
        let (db, q) = setup();
        let f = Featurizer::new(&db, Featurization::OneHot);
        let tri = db.num_tables() * (db.num_tables() - 1) / 2;
        let enc = f.encode_query(&db, &q);
        for p in &q.predicates {
            assert_eq!(enc[tri + db.attr_id(p.table(), p.col())], 1.0);
        }
    }

    #[test]
    fn histogram_encoding_holds_selectivities() {
        let (db, q) = setup();
        let f = Featurizer::new(&db, Featurization::Histogram);
        let tri = db.num_tables() * (db.num_tables() - 1) / 2;
        let enc = f.encode_query(&db, &q);
        for p in &q.predicates {
            let v = enc[tri + db.attr_id(p.table(), p.col())];
            assert!(v > 0.0 && v <= 1.0, "sel {v}");
        }
    }

    #[test]
    fn plan_encoding_has_paper_layout() {
        let (db, q) = setup();
        let f = Featurizer::new(&db, Featurization::OneHot);
        // |J| + 2|R| = 3 + 2*17 = 37 for the IMDB-like schema (paper §3.2).
        assert_eq!(f.plan_channels(), 37);
        let plan = PartialPlan::initial(&q);
        let enc = f.encode_plan(&q, &plan, None);
        assert_eq!(enc.feats.rows(), q.num_relations());
        // Unspecified scans set both table and index flags (paper Fig. 4).
        for rel in 0..q.num_relations() {
            let t = q.tables[rel];
            let row = enc.feats.row(rel);
            assert_eq!(row[3 + 2 * t], 1.0);
            assert_eq!(row[3 + 2 * t + 1], 1.0);
        }
        enc.topo.validate().unwrap();
    }

    #[test]
    fn join_nodes_take_union_of_children() {
        let (db, q) = setup();
        let f = Featurizer::new(&db, Featurization::OneHot);
        let ctx = QueryContext::new(&db, &q);
        // Find a child that merged two relations.
        let kids = neo_query::children(&PartialPlan::initial(&q), &ctx);
        let merged = kids
            .iter()
            .find(|k| k.roots.iter().any(|r| matches!(r, PlanNode::Join { .. })))
            .unwrap();
        let enc = f.encode_plan(&q, merged, None);
        enc.topo.validate().unwrap();
        // The join node is the root of some tree: its scan-flag section
        // must cover both children's tables, and a join-op bit is set.
        let join_row = (0..enc.feats.rows())
            .find(|&i| enc.topo.left[i] != NO_CHILD)
            .map(|i| enc.feats.row(i))
            .unwrap();
        let op_bits: f32 = join_row[..3].iter().sum();
        assert_eq!(op_bits, 1.0);
        let scan_bits: f32 = join_row[3..].iter().sum();
        assert!(scan_bits >= 2.0, "join row should cover two relations");
    }

    #[test]
    fn figure4_style_tree_shape() {
        let (db, q) = setup();
        let f = Featurizer::new(&db, Featurization::OneHot);
        let tree = PlanNode::Join {
            op: JoinOp::Loop,
            left: Box::new(PlanNode::Join {
                op: JoinOp::Merge,
                left: Box::new(PlanNode::Scan {
                    rel: 0,
                    scan: ScanType::Table,
                }),
                right: Box::new(PlanNode::Scan {
                    rel: 1,
                    scan: ScanType::Table,
                }),
            }),
            right: Box::new(PlanNode::Scan {
                rel: 2,
                scan: ScanType::Index,
            }),
        };
        let plan = PartialPlan {
            roots: vec![
                tree,
                PlanNode::Scan {
                    rel: 3,
                    scan: ScanType::Unspecified,
                },
            ],
        };
        let enc = f.encode_plan(&q, &plan, None);
        assert_eq!(enc.feats.rows(), 6);
        assert_eq!(enc.topo.num_trees, 2);
        // Root of tree 0 is a loop join: op index 2.
        assert_eq!(enc.feats.row(0)[2], 1.0);
        let _ = db;
    }

    #[test]
    fn aux_channel_appends_cardinality_signal() {
        let (db, q) = setup();
        let mut f = Featurizer::new(&db, Featurization::OneHot);
        f.aux_card_channel = true;
        assert_eq!(f.plan_channels(), 38);
        let plan = PartialPlan::initial(&q);
        let mut probe = |mask: RelMask| mask.count_ones() as f32;
        let enc = f.encode_plan(&q, &plan, Some(&mut probe));
        for i in 0..enc.feats.rows() {
            assert_eq!(enc.feats.row(i)[37], 1.0); // single-relation masks
        }
    }

    #[test]
    fn pair_index_is_bijective() {
        let (db, _) = setup();
        let f = Featurizer::new(&db, Featurization::OneHot);
        let n = db.num_tables();
        let mut seen = std::collections::HashSet::new();
        for a in 0..n {
            for b in (a + 1)..n {
                assert!(seen.insert(f.pair_index(a, b)));
            }
        }
        assert_eq!(seen.len(), n * (n - 1) / 2);
        assert!(seen.into_iter().max().unwrap() < n * (n - 1) / 2);
    }
}
