//! The Neo value network (paper §4, Fig. 5, Appendix A).
//!
//! Architecture: the query-level encoding passes through a stack of
//! fully-connected layers of decreasing size; the resulting vector is
//! concatenated onto every plan-tree node ("spatial replication"); the
//! augmented forest passes through three tree-convolution layers, dynamic
//! max pooling flattens it, and a final fully-connected stack produces a
//! single scalar — the predicted best-possible cost achievable from the
//! encoded partial plan.
//!
//! Training minimizes the paper's L2 loss against min-aggregated experience
//! targets; targets are log-transformed and standardized internally (plan
//! costs span five orders of magnitude), which is monotone and therefore
//! preserves the search ordering.

use crate::featurize::EncodedPlan;
use neo_nn::{clip_grad_norm, Adam, LeakyRelu, Matrix, Mlp, Param, TreeConv, TreeTopology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Network size hyperparameters. The paper's sizes (conv 512/256/128, FC
/// 128/64/32) are scaled down by default for laptop wall-clock; both are
/// expressible.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Hidden sizes of the query-level MLP (its last entry is the size of
    /// the replicated query vector).
    pub query_layers: Vec<usize>,
    /// Output channels of the tree-convolution layers.
    pub conv_channels: Vec<usize>,
    /// Hidden sizes of the head MLP (a final `1` is appended internally).
    pub head_layers: Vec<usize>,
    /// Adam learning rate.
    pub lr: f32,
    /// Gradient clipping threshold (global norm).
    pub grad_clip: f32,
    /// Ablation (DESIGN.md §4.4): sever all parent→child links before the
    /// convolution stack, so filters see each node in isolation — measures
    /// what the *tree structure* contributes beyond the node features.
    pub ignore_structure: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            query_layers: vec![128, 64, 32],
            conv_channels: vec![64, 64, 32],
            head_layers: vec![64, 32],
            lr: 1e-3,
            grad_clip: 5.0,
            ignore_structure: false,
        }
    }
}

impl NetConfig {
    /// The paper's full-size network (Fig. 5).
    pub fn paper_size() -> Self {
        NetConfig {
            query_layers: vec![128, 64, 32],
            conv_channels: vec![512, 256, 128],
            head_layers: vec![128, 64, 32],
            lr: 1e-3,
            grad_clip: 5.0,
            ignore_structure: false,
        }
    }
}

/// The value network.
pub struct ValueNet {
    query_mlp: Mlp,
    convs: Vec<TreeConv>,
    conv_acts: Vec<LeakyRelu>,
    head: Mlp,
    opt: Adam,
    cfg: NetConfig,
    /// Target normalization: mean/std of ln(cost) over the experience.
    pub target_mean: f32,
    /// See [`Self::target_mean`].
    pub target_std: f32,
}

impl ValueNet {
    /// Builds a value network for the given input widths.
    pub fn new(query_dim: usize, plan_channels: usize, cfg: NetConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut qsizes = vec![query_dim];
        qsizes.extend(&cfg.query_layers);
        let query_mlp = Mlp::new(&qsizes, true, true, &mut rng);
        let qe = *cfg.query_layers.last().expect("query_layers non-empty");

        let mut convs = Vec::new();
        let mut conv_acts = Vec::new();
        let mut cin = plan_channels + qe;
        for &cout in &cfg.conv_channels {
            convs.push(TreeConv::new(cin, cout, &mut rng));
            conv_acts.push(LeakyRelu::default());
            cin = cout;
        }
        let mut hsizes = vec![cin];
        hsizes.extend(&cfg.head_layers);
        hsizes.push(1);
        let head = Mlp::new(&hsizes, true, false, &mut rng);
        let opt = Adam::new(cfg.lr);
        ValueNet { query_mlp, convs, conv_acts, head, opt, cfg, target_mean: 0.0, target_std: 1.0 }
    }

    /// Total trainable parameter count.
    pub fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.count()).sum()
    }

    /// Checkpoints the model (weights + target normalization) to a writer.
    pub fn save(&mut self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        w.write_all(&self.target_mean.to_le_bytes())?;
        w.write_all(&self.target_std.to_le_bytes())?;
        let params: Vec<&Param> = self.params_mut().into_iter().map(|p| &*p).collect();
        neo_nn::write_params(w, &params)
    }

    /// Restores a checkpoint written by [`Self::save`] into this network.
    /// The network must have been constructed with the same [`NetConfig`]
    /// and input widths; shape mismatches are rejected.
    pub fn load(&mut self, r: &mut impl std::io::Read) -> std::io::Result<()> {
        let mut f = [0u8; 4];
        r.read_exact(&mut f)?;
        self.target_mean = f32::from_le_bytes(f);
        r.read_exact(&mut f)?;
        self.target_std = f32::from_le_bytes(f);
        neo_nn::read_params(r, &mut self.params_mut())
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.query_mlp.params_mut();
        for c in &mut self.convs {
            p.extend(c.params_mut());
        }
        p.extend(self.head.params_mut());
        p
    }

    fn zero_grad(&mut self) {
        self.query_mlp.zero_grad();
        for c in &mut self.convs {
            c.zero_grad();
        }
        self.head.zero_grad();
    }

    /// Stacks per-plan encodings into one batch forest.
    fn batch(query_encs: &[&[f32]], plans: &[&EncodedPlan]) -> (Matrix, Matrix, TreeTopology) {
        assert_eq!(query_encs.len(), plans.len());
        assert!(!plans.is_empty(), "empty batch");
        let qdim = query_encs[0].len();
        let total_nodes: usize = plans.iter().map(|p| p.feats.rows()).sum();
        let channels = plans[0].feats.cols();
        let mut feats = Matrix::zeros(total_nodes, channels);
        let mut q = Matrix::zeros(query_encs.len(), qdim);
        let mut topo = TreeTopology {
            left: Vec::with_capacity(total_nodes),
            right: Vec::with_capacity(total_nodes),
            tree_of: Vec::with_capacity(total_nodes),
            num_trees: 0,
        };
        let mut node_off = 0u32;
        // Trees are re-numbered so that every *plan* is one pooled unit:
        // roots of a forest plan share a tree id, because the paper pools
        // the whole (augmented) forest into one vector.
        for (i, plan) in plans.iter().enumerate() {
            q.row_mut(i).copy_from_slice(query_encs[i]);
            let n = plan.feats.rows();
            for r in 0..n {
                feats.row_mut(node_off as usize + r).copy_from_slice(plan.feats.row(r));
                let l = plan.topo.left[r];
                let rr = plan.topo.right[r];
                topo.left.push(if l == neo_nn::NO_CHILD { l } else { l + node_off });
                topo.right.push(if rr == neo_nn::NO_CHILD { rr } else { rr + node_off });
                topo.tree_of.push(i as u32);
            }
            node_off += n as u32;
        }
        topo.num_trees = plans.len();
        (q, feats, topo)
    }

    /// Scores a batch of plans (inference): returns normalized predicted
    /// values, one per plan. Lower is better; the scale is the standardized
    /// ln-cost space.
    pub fn predict(&self, query_encs: &[&[f32]], plans: &[&EncodedPlan]) -> Vec<f32> {
        let (q, feats, mut topo) = Self::batch(query_encs, plans);
        if self.cfg.ignore_structure {
            sever(&mut topo);
        }
        let qout = self.query_mlp.forward_inference(&q);
        let aug = augment(&feats, &qout, &topo);
        let mut h = aug;
        for (conv, act) in self.convs.iter().zip(&self.conv_acts) {
            h = act.apply(&conv.forward_inference(&h, &topo));
        }
        let pool = neo_nn::DynamicPooling::new();
        let pooled = pool.forward_inference(&h, &topo);
        let out = self.head.forward_inference(&pooled);
        out.data().to_vec()
    }

    /// Denormalizes a predicted value back to cost units (ms).
    pub fn to_cost(&self, normalized: f32) -> f64 {
        ((normalized * self.target_std + self.target_mean) as f64).exp()
    }

    /// Normalizes a raw cost (ms) into target space.
    pub fn normalize_cost(&self, cost: f64) -> f32 {
        ((cost.max(1e-3).ln() as f32) - self.target_mean) / self.target_std
    }

    /// Recomputes target normalization from a set of raw costs.
    pub fn fit_normalization(&mut self, costs: &[f64]) {
        if costs.is_empty() {
            return;
        }
        let logs: Vec<f32> = costs.iter().map(|c| c.max(1e-3).ln() as f32).collect();
        let mean = logs.iter().sum::<f32>() / logs.len() as f32;
        let var = logs.iter().map(|l| (l - mean) * (l - mean)).sum::<f32>() / logs.len() as f32;
        self.target_mean = mean;
        self.target_std = var.sqrt().max(1e-3);
    }

    /// One training step on a batch: returns the batch L2 loss (in
    /// normalized target space). `targets` are raw costs (ms).
    pub fn train_batch(
        &mut self,
        query_encs: &[&[f32]],
        plans: &[&EncodedPlan],
        targets: &[f64],
    ) -> f32 {
        assert_eq!(plans.len(), targets.len());
        let (q, feats, mut topo) = Self::batch(query_encs, plans);
        if self.cfg.ignore_structure {
            sever(&mut topo);
        }
        let qout = self.query_mlp.forward(&q);
        let aug = augment(&feats, &qout, &topo);
        let mut h = aug;
        for (conv, act) in self.convs.iter_mut().zip(&mut self.conv_acts) {
            h = act.forward(&conv.forward(&h, &topo));
        }
        let mut pool = neo_nn::DynamicPooling::new();
        let pooled = pool.forward(&h, &topo);
        let out = self.head.forward(&pooled);

        let t: Vec<f32> = targets.iter().map(|&c| self.normalize_cost(c)).collect();
        let target = Matrix::from_vec(t.len(), 1, t);
        let (loss, dloss) = neo_nn::loss::mse(&out, &target);

        self.zero_grad();
        let dpooled = self.head.backward(&dloss);
        let mut dh = pool.backward(&dpooled);
        for (conv, act) in self.convs.iter_mut().zip(&mut self.conv_acts).rev() {
            dh = conv.backward(&act.backward(&dh), &topo);
        }
        // Split the augmented gradient: plan channels are inputs (dropped);
        // query-vector channels accumulate per plan over its nodes.
        let qe = qout.cols();
        let plan_c = feats.cols();
        let mut dqout = Matrix::zeros(qout.rows(), qe);
        for node in 0..dh.rows() {
            let plan = topo.tree_of[node] as usize;
            let src = dh.row(node);
            let dst = dqout.row_mut(plan);
            for (d, s) in dst.iter_mut().zip(&src[plan_c..]) {
                *d += s;
            }
        }
        let _ = self.query_mlp.backward(&dqout);

        let clip = self.cfg.grad_clip;
        clip_grad_norm(&mut self.params_mut(), clip);
        // Temporarily take the optimizer so it can borrow the parameters.
        let mut opt = std::mem::replace(&mut self.opt, Adam::new(0.0));
        opt.step(&mut self.params_mut());
        self.opt = opt;
        loss
    }
}

/// Removes all child links (the structure ablation).
fn sever(topo: &mut TreeTopology) {
    topo.left.iter_mut().for_each(|l| *l = neo_nn::NO_CHILD);
    topo.right.iter_mut().for_each(|r| *r = neo_nn::NO_CHILD);
}

/// Spatial replication (paper Fig. 5): appends the plan's query vector to
/// every node of its forest.
fn augment(feats: &Matrix, qout: &Matrix, topo: &TreeTopology) -> Matrix {
    let (n, c) = (feats.rows(), feats.cols());
    let qe = qout.cols();
    let mut out = Matrix::zeros(n, c + qe);
    for i in 0..n {
        let row = out.row_mut(i);
        row[..c].copy_from_slice(feats.row(i));
        row[c..].copy_from_slice(qout.row(topo.tree_of[i] as usize));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::{Featurization, Featurizer};
    use neo_query::{workload::job, PartialPlan, QueryContext};
    use neo_storage::datagen::imdb;

    fn tiny_net(db: &neo_storage::Database) -> (Featurizer, ValueNet) {
        let f = Featurizer::new(db, Featurization::OneHot);
        let cfg = NetConfig {
            query_layers: vec![32, 16],
            conv_channels: vec![16, 8],
            head_layers: vec![16],
            lr: 1e-2,
            grad_clip: 5.0,
            ignore_structure: false,
        };
        let net = ValueNet::new(f.query_dim(), f.plan_channels(), cfg, 42);
        (f, net)
    }

    #[test]
    fn predict_shapes_and_determinism() {
        let db = imdb::generate(0.02, 1);
        let wl = job::generate(&db, 1);
        let q = &wl.queries[0];
        let (f, net) = tiny_net(&db);
        let qe = f.encode_query(&db, q);
        let p0 = f.encode_plan(q, &PartialPlan::initial(q), None);
        let ctx = QueryContext::new(&db, q);
        let kids = neo_query::children(&PartialPlan::initial(q), &ctx);
        let encs: Vec<_> = kids.iter().map(|k| f.encode_plan(q, k, None)).collect();
        let mut qrefs: Vec<&[f32]> = vec![&qe; encs.len() + 1];
        qrefs[0] = &qe;
        let mut prefs: Vec<&crate::featurize::EncodedPlan> = vec![&p0];
        prefs.extend(encs.iter());
        let a = net.predict(&qrefs, &prefs);
        let b = net.predict(&qrefs, &prefs);
        assert_eq!(a.len(), prefs.len());
        assert_eq!(a, b);
    }

    #[test]
    fn batched_prediction_matches_single() {
        let db = imdb::generate(0.02, 1);
        let wl = job::generate(&db, 1);
        let q = &wl.queries[0];
        let (f, net) = tiny_net(&db);
        let qe = f.encode_query(&db, q);
        let ctx = QueryContext::new(&db, q);
        let kids = neo_query::children(&PartialPlan::initial(q), &ctx);
        let encs: Vec<_> = kids.iter().take(5).map(|k| f.encode_plan(q, k, None)).collect();
        let qrefs: Vec<&[f32]> = vec![&qe; encs.len()];
        let prefs: Vec<_> = encs.iter().collect();
        let batched = net.predict(&qrefs, &prefs);
        for (i, enc) in encs.iter().enumerate() {
            let single = net.predict(&[&qe], &[enc]);
            assert!((batched[i] - single[0]).abs() < 1e-4, "{} vs {}", batched[i], single[0]);
        }
    }

    /// The network must be able to (over)fit a small set of plan/cost pairs
    /// — the basic guarantee behind the paper's corrective feedback loop.
    #[test]
    fn overfits_small_experience() {
        let db = imdb::generate(0.02, 1);
        let wl = job::generate(&db, 1);
        let q = &wl.queries[0];
        let (f, mut net) = tiny_net(&db);
        let qe = f.encode_query(&db, q);
        let ctx = QueryContext::new(&db, q);
        // Make 6 distinct plans by different first moves.
        let kids = neo_query::children(&PartialPlan::initial(q), &ctx);
        let plans: Vec<_> = kids.iter().take(6).map(|k| f.encode_plan(q, k, None)).collect();
        let costs: Vec<f64> = (0..6).map(|i| 100.0 * (i as f64 + 1.0) * (i as f64 + 1.0)).collect();
        net.fit_normalization(&costs);
        let qrefs: Vec<&[f32]> = vec![&qe; plans.len()];
        let prefs: Vec<_> = plans.iter().collect();
        let mut last = f32::MAX;
        for _ in 0..300 {
            last = net.train_batch(&qrefs, &prefs, &costs);
        }
        assert!(last < 0.05, "loss {last}");
        // And the induced ordering matches the cost ordering.
        let preds = net.predict(&qrefs, &prefs);
        for i in 1..preds.len() {
            assert!(preds[i] > preds[i - 1] - 0.2, "ordering broken: {preds:?}");
        }
    }

    #[test]
    fn normalization_roundtrip() {
        let db = imdb::generate(0.02, 1);
        let (_, mut net) = tiny_net(&db);
        net.fit_normalization(&[10.0, 100.0, 1000.0]);
        let n = net.normalize_cost(100.0);
        let c = net.to_cost(n);
        assert!((c - 100.0).abs() / 100.0 < 1e-3, "{c}");
    }

    #[test]
    fn param_count_is_substantial() {
        let db = imdb::generate(0.02, 1);
        let (_, mut net) = tiny_net(&db);
        assert!(net.param_count() > 1000);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_predictions() {
        let db = imdb::generate(0.02, 1);
        let wl = job::generate(&db, 1);
        let q = &wl.queries[0];
        let (f, mut net) = tiny_net(&db);
        net.fit_normalization(&[10.0, 100.0, 1000.0]);
        let qe = f.encode_query(&db, q);
        let enc = f.encode_plan(q, &PartialPlan::initial(q), None);
        let before = net.predict(&[&qe], &[&enc])[0];

        let mut buf = Vec::new();
        net.save(&mut buf).unwrap();
        // A fresh net with a different seed predicts differently...
        let cfg = NetConfig {
            query_layers: vec![32, 16],
            conv_channels: vec![16, 8],
            head_layers: vec![16],
            lr: 1e-2,
            grad_clip: 5.0,
            ignore_structure: false,
        };
        let mut other = ValueNet::new(f.query_dim(), f.plan_channels(), cfg, 777);
        let fresh = other.predict(&[&qe], &[&enc])[0];
        assert_ne!(fresh, before);
        // ...until the checkpoint is loaded.
        other.load(&mut &buf[..]).unwrap();
        let after = other.predict(&[&qe], &[&enc])[0];
        assert_eq!(after, before);
        assert_eq!(other.target_mean, net.target_mean);
    }

    #[test]
    fn checkpoint_rejects_mismatched_architecture() {
        let db = imdb::generate(0.02, 1);
        let (f, mut net) = tiny_net(&db);
        let mut buf = Vec::new();
        net.save(&mut buf).unwrap();
        let mut bigger = ValueNet::new(f.query_dim(), f.plan_channels(), NetConfig::default(), 1);
        assert!(bigger.load(&mut &buf[..]).is_err());
    }
}
