//! The Neo value network (paper §4, Fig. 5, Appendix A).
//!
//! Architecture: the query-level encoding passes through a stack of
//! fully-connected layers of decreasing size; the resulting vector is
//! concatenated onto every plan-tree node ("spatial replication"); the
//! augmented forest passes through three tree-convolution layers, dynamic
//! max pooling flattens it, and a final fully-connected stack produces a
//! single scalar — the predicted best-possible cost achievable from the
//! encoded partial plan.
//!
//! Training minimizes the paper's L2 loss against min-aggregated experience
//! targets; targets are log-transformed and standardized internally (plan
//! costs span five orders of magnitude), which is monotone and therefore
//! preserves the search ordering.

use crate::featurize::EncodedPlan;
use neo_nn::{
    clip_grad_norm, Adam, DynamicPooling, LeakyRelu, Matrix, Mlp, Param, Scratch, TreeConv,
    TreeTopology, NO_CHILD,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Network size hyperparameters. The paper's sizes (conv 512/256/128, FC
/// 128/64/32) are scaled down by default for laptop wall-clock; both are
/// expressible.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Hidden sizes of the query-level MLP (its last entry is the size of
    /// the replicated query vector).
    pub query_layers: Vec<usize>,
    /// Output channels of the tree-convolution layers.
    pub conv_channels: Vec<usize>,
    /// Hidden sizes of the head MLP (a final `1` is appended internally).
    pub head_layers: Vec<usize>,
    /// Adam learning rate.
    pub lr: f32,
    /// Gradient clipping threshold (global norm).
    pub grad_clip: f32,
    /// Ablation (DESIGN.md §4.4): sever all parent→child links before the
    /// convolution stack, so filters see each node in isolation — measures
    /// what the *tree structure* contributes beyond the node features.
    pub ignore_structure: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            query_layers: vec![128, 64, 32],
            conv_channels: vec![64, 64, 32],
            head_layers: vec![64, 32],
            lr: 1e-3,
            grad_clip: 5.0,
            ignore_structure: false,
        }
    }
}

impl NetConfig {
    /// The paper's full-size network (Fig. 5).
    pub fn paper_size() -> Self {
        NetConfig {
            query_layers: vec![128, 64, 32],
            conv_channels: vec![512, 256, 128],
            head_layers: vec![128, 64, 32],
            lr: 1e-3,
            grad_clip: 5.0,
            ignore_structure: false,
        }
    }
}

/// The value network.
///
/// `Clone` deep-copies every parameter (plus the Adam moments), which is
/// what the background trainer relies on: it trains a private clone while
/// serving threads keep scoring on the original, then publishes the clone
/// as a new frozen model generation.
#[derive(Clone)]
pub struct ValueNet {
    query_mlp: Mlp,
    convs: Vec<TreeConv>,
    conv_acts: Vec<LeakyRelu>,
    head: Mlp,
    opt: Adam,
    cfg: NetConfig,
    /// Target normalization: mean/std of ln(cost) over the experience.
    pub target_mean: f32,
    /// See [`Self::target_mean`].
    pub target_std: f32,
}

impl ValueNet {
    /// Builds a value network for the given input widths.
    pub fn new(query_dim: usize, plan_channels: usize, cfg: NetConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut qsizes = vec![query_dim];
        qsizes.extend(&cfg.query_layers);
        let query_mlp = Mlp::new(&qsizes, true, true, &mut rng);
        let qe = *cfg.query_layers.last().expect("query_layers non-empty");

        let mut convs = Vec::new();
        let mut conv_acts = Vec::new();
        let mut cin = plan_channels + qe;
        for &cout in &cfg.conv_channels {
            convs.push(TreeConv::new(cin, cout, &mut rng));
            conv_acts.push(LeakyRelu::default());
            cin = cout;
        }
        let mut hsizes = vec![cin];
        hsizes.extend(&cfg.head_layers);
        hsizes.push(1);
        let head = Mlp::new(&hsizes, true, false, &mut rng);
        let opt = Adam::new(cfg.lr);
        ValueNet {
            query_mlp,
            convs,
            conv_acts,
            head,
            opt,
            cfg,
            target_mean: 0.0,
            target_std: 1.0,
        }
    }

    /// Total trainable parameter count.
    pub fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.count()).sum()
    }

    /// Checkpoints the model (weights + target normalization) to a writer.
    pub fn save(&mut self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        w.write_all(&self.target_mean.to_le_bytes())?;
        w.write_all(&self.target_std.to_le_bytes())?;
        let params: Vec<&Param> = self.params_mut().into_iter().map(|p| &*p).collect();
        neo_nn::write_params(w, &params)
    }

    /// Restores a checkpoint written by [`Self::save`] into this network.
    /// The network must have been constructed with the same [`NetConfig`]
    /// and input widths; shape mismatches are rejected.
    pub fn load(&mut self, r: &mut impl std::io::Read) -> std::io::Result<()> {
        let mut f = [0u8; 4];
        r.read_exact(&mut f)?;
        self.target_mean = f32::from_le_bytes(f);
        r.read_exact(&mut f)?;
        self.target_std = f32::from_le_bytes(f);
        neo_nn::read_params(r, &mut self.params_mut())
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.query_mlp.params_mut();
        for c in &mut self.convs {
            p.extend(c.params_mut());
        }
        p.extend(self.head.params_mut());
        p
    }

    fn zero_grad(&mut self) {
        self.query_mlp.zero_grad();
        for c in &mut self.convs {
            c.zero_grad();
        }
        self.head.zero_grad();
    }

    /// Stacks per-plan encodings into one batch forest.
    fn batch(query_encs: &[&[f32]], plans: &[&EncodedPlan]) -> (Matrix, Matrix, TreeTopology) {
        assert_eq!(query_encs.len(), plans.len());
        assert!(!plans.is_empty(), "empty batch");
        let qdim = query_encs[0].len();
        let total_nodes: usize = plans.iter().map(|p| p.feats.rows()).sum();
        let channels = plans[0].feats.cols();
        let mut feats = Matrix::zeros(total_nodes, channels);
        let mut q = Matrix::zeros(query_encs.len(), qdim);
        let mut topo = TreeTopology {
            left: Vec::with_capacity(total_nodes),
            right: Vec::with_capacity(total_nodes),
            tree_of: Vec::with_capacity(total_nodes),
            num_trees: 0,
        };
        let mut node_off = 0u32;
        // Trees are re-numbered so that every *plan* is one pooled unit:
        // roots of a forest plan share a tree id, because the paper pools
        // the whole (augmented) forest into one vector.
        for (i, plan) in plans.iter().enumerate() {
            q.row_mut(i).copy_from_slice(query_encs[i]);
            let n = plan.feats.rows();
            for r in 0..n {
                feats
                    .row_mut(node_off as usize + r)
                    .copy_from_slice(plan.feats.row(r));
                let l = plan.topo.left[r];
                let rr = plan.topo.right[r];
                topo.left.push(if l == neo_nn::NO_CHILD {
                    l
                } else {
                    l + node_off
                });
                topo.right.push(if rr == neo_nn::NO_CHILD {
                    rr
                } else {
                    rr + node_off
                });
                topo.tree_of.push(i as u32);
            }
            node_off += n as u32;
        }
        topo.num_trees = plans.len();
        (q, feats, topo)
    }

    /// Scores a batch of plans (inference): returns normalized predicted
    /// values, one per plan. Lower is better; the scale is the standardized
    /// ln-cost space.
    ///
    /// Shares the specialized first-convolution path with
    /// [`InferenceSession::score`], so the two agree bitwise.
    pub fn predict(&self, query_encs: &[&[f32]], plans: &[&EncodedPlan]) -> Vec<f32> {
        let (q, feats, mut topo) = Self::batch(query_encs, plans);
        if self.cfg.ignore_structure {
            sever(&mut topo);
        }
        let qout = self.query_mlp.forward_inference(&q);
        let mut h;
        if let Some(conv1) = self.convs.first() {
            let plan_c = feats.cols();
            let mut wplan = Matrix::zeros(0, 0);
            conv1_plan_rows(conv1, plan_c, &mut wplan);
            let mut variants = Matrix::zeros(4 * topo.num_trees, conv1.cout());
            for t in 0..topo.num_trees {
                conv1_query_variants(conv1, qout.row(t), plan_c, &mut variants, t * 4);
            }
            let mut pack = Matrix::zeros(0, 0);
            let mut side = Matrix::zeros(0, 0);
            let mut y = Matrix::zeros(0, 0);
            conv1_specialized_forward(
                &wplan, &variants, &feats, &topo, true, &mut pack, &mut side, &mut y,
            );
            h = self.conv_acts[0].apply(&y);
            for (conv, act) in self.convs.iter().zip(&self.conv_acts).skip(1) {
                h = act.apply(&conv.forward_inference(&h, &topo));
            }
        } else {
            h = augment(&feats, &qout, &topo);
        }
        let pool = neo_nn::DynamicPooling::new();
        let pooled = pool.forward_inference(&h, &topo);
        let out = self.head.forward_inference(&pooled);
        out.data().to_vec()
    }

    /// Opens a search-scoped inference session for one query.
    ///
    /// The query-level MLP runs **once**, here; every subsequent
    /// [`InferenceSession::score`] call reuses the cached query vector and
    /// a private [`Scratch`] buffer pool, so steady-state scoring performs
    /// no query-MLP work and no heap allocation. [`Self::predict`], by
    /// contrast, re-runs the query MLP over `n` identical rows on every
    /// call — the pre-batching hot-path cost this session design removes.
    pub fn session(&self, query_enc: &[f32]) -> InferenceSession<'_> {
        self.session_with_scratch(query_enc, Scratch::new())
    }

    /// [`Self::session`] with a caller-supplied [`Scratch`] buffer pool —
    /// the multi-query serving path: a worker thread checks a `Scratch`
    /// out of a shared [`neo_nn::ScratchPool`], runs one search, then
    /// recovers the (grown) buffers via [`InferenceSession::into_scratch`]
    /// and returns them, so buffer growth is paid once per worker rather
    /// than once per query.
    pub fn session_with_scratch(
        &self,
        query_enc: &[f32],
        scratch: Scratch,
    ) -> InferenceSession<'_> {
        let q = Matrix::from_row(query_enc);
        let qout = self.query_mlp.forward_inference(&q);
        // Pre-resolve the first convolution against this query: extract its
        // plan-channel rows and fold the query-channel rows (+ bias) into
        // the four child-presence variants. Every subsequent batch then
        // multiplies sparse plan channels only.
        let (conv1_wplan, conv1_variants) = match self.convs.first() {
            Some(conv1) => {
                let plan_c = conv1.cin() - qout.cols();
                let mut wplan = Matrix::zeros(0, 0);
                conv1_plan_rows(conv1, plan_c, &mut wplan);
                let mut variants = Matrix::zeros(4, conv1.cout());
                conv1_query_variants(conv1, qout.row(0), plan_c, &mut variants, 0);
                (wplan, variants)
            }
            None => (Matrix::zeros(0, 0), Matrix::zeros(0, 0)),
        };
        InferenceSession {
            net: self,
            qout,
            conv1_wplan,
            conv1_variants,
            topo: TreeTopology {
                left: Vec::new(),
                right: Vec::new(),
                tree_of: Vec::new(),
                num_trees: 0,
            },
            scratch,
            scores: Vec::new(),
        }
    }

    /// Read-only access to the submodules `(query_mlp, convs, conv_acts,
    /// head)` — used by the bench harness's legacy-pipeline baseline.
    pub fn parts(&self) -> (&Mlp, &[TreeConv], &[LeakyRelu], &Mlp) {
        (&self.query_mlp, &self.convs, &self.conv_acts, &self.head)
    }

    /// Denormalizes a predicted value back to cost units (ms).
    pub fn to_cost(&self, normalized: f32) -> f64 {
        ((normalized * self.target_std + self.target_mean) as f64).exp()
    }

    /// Normalizes a raw cost (ms) into target space.
    pub fn normalize_cost(&self, cost: f64) -> f32 {
        ((cost.max(1e-3).ln() as f32) - self.target_mean) / self.target_std
    }

    /// Recomputes target normalization from a set of raw costs.
    ///
    /// Order-insensitive: the logs are sorted before the (non-associative)
    /// float summation, so callers feeding costs out of a `HashMap`
    /// (e.g. [`crate::Experience::all_costs`]) get bit-identical
    /// normalization across processes — which keeps whole training runs,
    /// and therefore chosen plans, reproducible.
    pub fn fit_normalization(&mut self, costs: &[f64]) {
        if costs.is_empty() {
            return;
        }
        let mut logs: Vec<f32> = costs.iter().map(|c| c.max(1e-3).ln() as f32).collect();
        logs.sort_by(f32::total_cmp);
        let mean = logs.iter().sum::<f32>() / logs.len() as f32;
        let var = logs.iter().map(|l| (l - mean) * (l - mean)).sum::<f32>() / logs.len() as f32;
        self.target_mean = mean;
        self.target_std = var.sqrt().max(1e-3);
    }

    /// One training step on a batch: returns the batch L2 loss (in
    /// normalized target space). `targets` are raw costs (ms).
    pub fn train_batch(
        &mut self,
        query_encs: &[&[f32]],
        plans: &[&EncodedPlan],
        targets: &[f64],
    ) -> f32 {
        assert_eq!(plans.len(), targets.len());
        let (q, feats, mut topo) = Self::batch(query_encs, plans);
        if self.cfg.ignore_structure {
            sever(&mut topo);
        }
        let qout = self.query_mlp.forward(&q);
        let aug = augment(&feats, &qout, &topo);
        let mut h = aug;
        for (conv, act) in self.convs.iter_mut().zip(&mut self.conv_acts) {
            h = act.forward(&conv.forward(&h, &topo));
        }
        let mut pool = neo_nn::DynamicPooling::new();
        let pooled = pool.forward(&h, &topo);
        let out = self.head.forward(&pooled);

        let t: Vec<f32> = targets.iter().map(|&c| self.normalize_cost(c)).collect();
        let target = Matrix::from_vec(t.len(), 1, t);
        let (loss, dloss) = neo_nn::loss::mse(&out, &target);

        self.zero_grad();
        let dpooled = self.head.backward(&dloss);
        let mut dh = pool.backward(&dpooled);
        for (conv, act) in self.convs.iter_mut().zip(&mut self.conv_acts).rev() {
            dh = conv.backward(&act.backward(&dh), &topo);
        }
        // Split the augmented gradient: plan channels are inputs (dropped);
        // query-vector channels accumulate per plan over its nodes.
        let qe = qout.cols();
        let plan_c = feats.cols();
        let mut dqout = Matrix::zeros(qout.rows(), qe);
        for node in 0..dh.rows() {
            let plan = topo.tree_of[node] as usize;
            let src = dh.row(node);
            let dst = dqout.row_mut(plan);
            for (d, s) in dst.iter_mut().zip(&src[plan_c..]) {
                *d += s;
            }
        }
        let _ = self.query_mlp.backward(&dqout);

        let clip = self.cfg.grad_clip;
        clip_grad_norm(&mut self.params_mut(), clip);
        // Temporarily take the optimizer so it can borrow the parameters.
        let mut opt = std::mem::replace(&mut self.opt, Adam::new(0.0));
        opt.step(&mut self.params_mut());
        self.opt = opt;
        loss
    }
}

/// A search-scoped inference engine over one query (see
/// [`ValueNet::session`]).
///
/// Holds the query vector produced by a single run of the query-level MLP
/// plus reusable batch/scratch buffers. After a warm-up call at the largest
/// batch size, [`Self::score`] touches the allocator zero times per batch —
/// the property `neo`'s `zero_alloc` regression test pins down.
pub struct InferenceSession<'n> {
    net: &'n ValueNet,
    /// Cached query-MLP output, `1 x qe`.
    qout: Matrix,
    /// Plan-channel rows of the first conv filterbank, `3c x cout`.
    conv1_wplan: Matrix,
    /// Query contribution to the first conv per child-presence mask
    /// (bias folded), `4 x cout`.
    conv1_variants: Matrix,
    /// Reused batch topology (forest of all plans in the batch).
    topo: TreeTopology,
    /// Reused layer buffers.
    scratch: Scratch,
    /// Reused output staging.
    scores: Vec<f32>,
}

impl InferenceSession<'_> {
    /// Consumes the session and recovers its [`Scratch`] buffers (for
    /// return to a [`neo_nn::ScratchPool`] between queries).
    pub fn into_scratch(self) -> Scratch {
        self.scratch
    }

    /// Scores a batch of encoded plans, lowest predicted value = best.
    /// Matches [`ValueNet::predict`] exactly (same kernels, same
    /// per-row arithmetic), without re-running the query MLP.
    pub fn score(&mut self, plans: &[&EncodedPlan]) -> &[f32] {
        self.score_with(plans.len(), |i| plans[i])
    }

    /// [`Self::score`] over a contiguous pool slice — lets callers keep a
    /// reusable `Vec<EncodedPlan>` without building a per-batch `Vec<&_>`.
    pub fn score_pool(&mut self, plans: &[EncodedPlan]) -> &[f32] {
        self.score_with(plans.len(), |i| &plans[i])
    }

    fn score_with<'p>(&mut self, n_plans: usize, get: impl Fn(usize) -> &'p EncodedPlan) -> &[f32] {
        self.scores.clear();
        if n_plans == 0 {
            return &self.scores;
        }
        let channels = get(0).feats.cols();
        let qe = self.qout.cols();
        let total_nodes: usize = (0..n_plans).map(|i| get(i).feats.rows()).sum();
        let sever = self.net.cfg.ignore_structure;
        let specialized = !self.net.convs.is_empty();
        // Stack the batch forest. With the specialized first conv the query
        // channels never materialize per node (their contribution is
        // pre-folded into `conv1_variants`); without convolutions, fall
        // back to explicit spatial replication.
        let width = if specialized { channels } else { channels + qe };
        let aug = &mut self.scratch.a;
        aug.resize(total_nodes, width);
        let qrow = self.qout.row(0);
        self.topo.left.clear();
        self.topo.right.clear();
        self.topo.tree_of.clear();
        self.topo.num_trees = n_plans;
        let mut node_off = 0u32;
        for i in 0..n_plans {
            let plan = get(i);
            let n = plan.feats.rows();
            for r in 0..n {
                let row = aug.row_mut(node_off as usize + r);
                row[..channels].copy_from_slice(plan.feats.row(r));
                if !specialized {
                    row[channels..].copy_from_slice(qrow);
                }
                let (l, rr) = if sever {
                    (NO_CHILD, NO_CHILD)
                } else {
                    (plan.topo.left[r], plan.topo.right[r])
                };
                self.topo
                    .left
                    .push(if l == NO_CHILD { l } else { l + node_off });
                self.topo
                    .right
                    .push(if rr == NO_CHILD { rr } else { rr + node_off });
                self.topo.tree_of.push(i as u32);
            }
            node_off += n as u32;
        }

        if specialized {
            conv1_specialized_forward(
                &self.conv1_wplan,
                &self.conv1_variants,
                &self.scratch.a,
                &self.topo,
                false,
                &mut self.scratch.gather,
                &mut self.scratch.side,
                &mut self.scratch.b,
            );
            std::mem::swap(&mut self.scratch.a, &mut self.scratch.b);
            // Remaining convolutions: ping-pong a/b, pack buffers shared.
            // Each layer's activation is applied lazily: layer L's leaky
            // ReLU runs fused ahead of layer L+1, and the *last* layer's
            // activation moves past pooling below.
            for (li, conv) in self.net.convs.iter().enumerate().skip(1) {
                self.net.conv_acts[li - 1].apply_inplace(&mut self.scratch.a);
                conv.forward_into(
                    &self.scratch.a,
                    &self.topo,
                    &mut self.scratch.gather,
                    &mut self.scratch.side,
                    &mut self.scratch.b,
                );
                std::mem::swap(&mut self.scratch.a, &mut self.scratch.b);
            }
        }
        let pool = DynamicPooling::new();
        pool.forward_inference_into(&self.scratch.a, &self.topo, &mut self.scratch.pooled);
        if specialized {
            // Leaky ReLU is strictly monotone, so max-pool-then-activate is
            // bitwise identical to activate-then-max-pool — applied to
            // `num_trees` rows instead of every node.
            self.net
                .conv_acts
                .last()
                .expect("convs non-empty")
                .apply_inplace(&mut self.scratch.pooled);
        }
        self.net.head.forward_inference_into(
            &self.scratch.pooled,
            &mut self.scratch.tmp,
            &mut self.scratch.out,
        );
        self.scores.extend_from_slice(self.scratch.out.data());
        &self.scores
    }
}

/// Removes all child links (the structure ablation).
fn sever(topo: &mut TreeTopology) {
    topo.left.iter_mut().for_each(|l| *l = neo_nn::NO_CHILD);
    topo.right.iter_mut().for_each(|r| *r = neo_nn::NO_CHILD);
}

// --- Specialized first tree-convolution -----------------------------------
//
// Spatial replication appends the *same* query vector to every node of a
// plan, so in the first convolution the query channels of the gathered
// `(parent; left; right)` triple contribute one of only four values per
// tree — selected by which children exist. Splitting the filterbank into
// plan-channel rows and query-channel rows therefore turns the dominant
// dense half of the first layer into a per-query precomputation:
//
//   y_i = [p_p; p_l; p_r] · W_plan  +  v[tree(i), mask(i)]
//
// with `v` folding the bias and the query rows of `W`. The remaining
// per-node matmul runs over sparse one-hot plan channels only, where the
// kernel's zero-skip does most of the work. Inference only — training
// keeps the straightforward full-width path (it needs the gathered input
// cached for backprop anyway).

/// Extracts the plan-channel rows of a first-conv filterbank into a
/// `3*plan_c x cout` matrix (rows `[0,c)`, `[cin,cin+c)`, `[2cin,2cin+c)`).
fn conv1_plan_rows(conv: &TreeConv, plan_c: usize, out: &mut Matrix) {
    let cin = conv.cin();
    let cout = conv.cout();
    out.resize(3 * plan_c, cout);
    for part in 0..3 {
        for r in 0..plan_c {
            out.row_mut(part * plan_c + r)
                .copy_from_slice(conv.w.value.row(part * cin + r));
        }
    }
}

/// Writes the four query-contribution variants for one query vector into
/// four consecutive rows of `out` starting at `base`: index by the
/// child-presence mask `left as usize | (right as usize) << 1`. The conv
/// bias is folded in.
fn conv1_query_variants(
    conv: &TreeConv,
    qrow: &[f32],
    plan_c: usize,
    out: &mut Matrix,
    base: usize,
) {
    let cin = conv.cin();
    let cout = conv.cout();
    let qe = cin - plan_c;
    debug_assert_eq!(qrow.len(), qe, "query width vs conv channels");
    // part contributions: p (parent, always present), l, r.
    let mut parts = [vec![0.0f32; cout], vec![0.0f32; cout], vec![0.0f32; cout]];
    for (part, acc) in parts.iter_mut().enumerate() {
        for (e, &qv) in qrow.iter().enumerate() {
            if qv == 0.0 {
                continue;
            }
            let wrow = conv.w.value.row(part * cin + plan_c + e);
            for (a, &w) in acc.iter_mut().zip(wrow) {
                *a += qv * w;
            }
        }
    }
    let bias = conv.b.value.data();
    for mask in 0..4usize {
        let row = out.row_mut(base + mask);
        for j in 0..cout {
            let mut v = bias[j] + parts[0][j];
            if mask & 1 != 0 {
                v += parts[1][j];
            }
            if mask & 2 != 0 {
                v += parts[2][j];
            }
            row[j] = v;
        }
    }
}

/// Applies the specialized first convolution in packed-children form:
/// multiplies the node plan-channels against the parent band of the
/// pre-extracted plan rows, adds packed child-row products against the
/// left/right bands via the shared [`TreeConv::add_packed_children_bands`]
/// (missing children cost nothing), and finally adds the
/// per-(tree, child-mask) query variant. `variant_rows_per_tree` is true
/// when `variants` holds four rows per tree (multi-query batches) and
/// false when one shared group of four rows serves every tree
/// (single-query sessions). `pack` and `side` are scratch buffers.
#[allow(clippy::too_many_arguments)] // kernel plumbing: weights + topo + 3 buffers
fn conv1_specialized_forward(
    wplan: &Matrix,
    variants: &Matrix,
    x: &Matrix,
    topo: &TreeTopology,
    variant_rows_per_tree: bool,
    pack: &mut Matrix,
    side: &mut Matrix,
    y: &mut Matrix,
) {
    let n = topo.num_nodes();
    let c = x.cols();
    debug_assert_eq!(wplan.rows(), 3 * c);
    y.resize(n, wplan.cols());
    // Freshly zero-resized output: accumulate == overwrite, minus a pass.
    x.matmul_into_rows(wplan, 0, y, true);
    TreeConv::add_packed_children_bands(wplan, [c, 2 * c], x, topo, pack, side, y);
    for i in 0..n {
        let l = topo.left[i] != neo_nn::NO_CHILD;
        let r = topo.right[i] != neo_nn::NO_CHILD;
        let mask = l as usize | ((r as usize) << 1);
        let base = if variant_rows_per_tree {
            topo.tree_of[i] as usize * 4
        } else {
            0
        };
        let vrow = variants.row(base + mask);
        let yrow = y.row_mut(i);
        for (o, &v) in yrow.iter_mut().zip(vrow) {
            *o += v;
        }
    }
}

/// Spatial replication (paper Fig. 5): appends the plan's query vector to
/// every node of its forest.
fn augment(feats: &Matrix, qout: &Matrix, topo: &TreeTopology) -> Matrix {
    let (n, c) = (feats.rows(), feats.cols());
    let qe = qout.cols();
    let mut out = Matrix::zeros(n, c + qe);
    for i in 0..n {
        let row = out.row_mut(i);
        row[..c].copy_from_slice(feats.row(i));
        row[c..].copy_from_slice(qout.row(topo.tree_of[i] as usize));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::{Featurization, Featurizer};
    use neo_query::{workload::job, PartialPlan, QueryContext};
    use neo_storage::datagen::imdb;

    fn tiny_net(db: &neo_storage::Database) -> (Featurizer, ValueNet) {
        let f = Featurizer::new(db, Featurization::OneHot);
        let cfg = NetConfig {
            query_layers: vec![32, 16],
            conv_channels: vec![16, 8],
            head_layers: vec![16],
            lr: 1e-2,
            grad_clip: 5.0,
            ignore_structure: false,
        };
        let net = ValueNet::new(f.query_dim(), f.plan_channels(), cfg, 42);
        (f, net)
    }

    /// ISSUE 2: a frozen `ValueNet` must be shareable across `neo-serve`
    /// worker threads (`&ValueNet` handed to concurrent searches), and a
    /// session must be movable onto a worker. Compile-time properties, but
    /// pinned here so a reintroduced `Rc`/`Cell` fails loudly.
    #[test]
    fn value_net_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<ValueNet>();
        assert_send_sync::<NetConfig>();
        assert_send::<InferenceSession<'static>>();
    }

    #[test]
    fn predict_shapes_and_determinism() {
        let db = imdb::generate(0.02, 1);
        let wl = job::generate(&db, 1);
        let q = &wl.queries[0];
        let (f, net) = tiny_net(&db);
        let qe = f.encode_query(&db, q);
        let p0 = f.encode_plan(q, &PartialPlan::initial(q), None);
        let ctx = QueryContext::new(&db, q);
        let kids = neo_query::children(&PartialPlan::initial(q), &ctx);
        let encs: Vec<_> = kids.iter().map(|k| f.encode_plan(q, k, None)).collect();
        let mut qrefs: Vec<&[f32]> = vec![&qe; encs.len() + 1];
        qrefs[0] = &qe;
        let mut prefs: Vec<&crate::featurize::EncodedPlan> = vec![&p0];
        prefs.extend(encs.iter());
        let a = net.predict(&qrefs, &prefs);
        let b = net.predict(&qrefs, &prefs);
        assert_eq!(a.len(), prefs.len());
        assert_eq!(a, b);
    }

    #[test]
    fn batched_prediction_matches_single() {
        let db = imdb::generate(0.02, 1);
        let wl = job::generate(&db, 1);
        let q = &wl.queries[0];
        let (f, net) = tiny_net(&db);
        let qe = f.encode_query(&db, q);
        let ctx = QueryContext::new(&db, q);
        let kids = neo_query::children(&PartialPlan::initial(q), &ctx);
        let encs: Vec<_> = kids
            .iter()
            .take(5)
            .map(|k| f.encode_plan(q, k, None))
            .collect();
        let qrefs: Vec<&[f32]> = vec![&qe; encs.len()];
        let prefs: Vec<_> = encs.iter().collect();
        let batched = net.predict(&qrefs, &prefs);
        for (i, enc) in encs.iter().enumerate() {
            let single = net.predict(&[&qe], &[enc]);
            assert!(
                (batched[i] - single[0]).abs() < 1e-4,
                "{} vs {}",
                batched[i],
                single[0]
            );
        }
    }

    /// The network must be able to (over)fit a small set of plan/cost pairs
    /// — the basic guarantee behind the paper's corrective feedback loop.
    #[test]
    fn overfits_small_experience() {
        let db = imdb::generate(0.02, 1);
        let wl = job::generate(&db, 1);
        let q = &wl.queries[0];
        let (f, mut net) = tiny_net(&db);
        let qe = f.encode_query(&db, q);
        let ctx = QueryContext::new(&db, q);
        // Make 6 distinct plans by different first moves.
        let kids = neo_query::children(&PartialPlan::initial(q), &ctx);
        let plans: Vec<_> = kids
            .iter()
            .take(6)
            .map(|k| f.encode_plan(q, k, None))
            .collect();
        let costs: Vec<f64> = (0..6)
            .map(|i| 100.0 * (i as f64 + 1.0) * (i as f64 + 1.0))
            .collect();
        net.fit_normalization(&costs);
        let qrefs: Vec<&[f32]> = vec![&qe; plans.len()];
        let prefs: Vec<_> = plans.iter().collect();
        let mut last = f32::MAX;
        for _ in 0..300 {
            last = net.train_batch(&qrefs, &prefs, &costs);
        }
        assert!(last < 0.05, "loss {last}");
        // And the induced ordering matches the cost ordering.
        let preds = net.predict(&qrefs, &prefs);
        for i in 1..preds.len() {
            assert!(preds[i] > preds[i - 1] - 0.2, "ordering broken: {preds:?}");
        }
    }

    /// ISSUE 1 acceptance: `InferenceSession` scores must match plain
    /// `ValueNet::predict` to within 1e-6 (they share kernels, so in
    /// practice they agree bitwise).
    #[test]
    fn session_matches_predict() {
        let db = imdb::generate(0.02, 1);
        let wl = job::generate(&db, 1);
        let q = &wl.queries[0];
        let (f, net) = tiny_net(&db);
        let qe = f.encode_query(&db, q);
        let ctx = QueryContext::new(&db, q);
        let kids = neo_query::children(&PartialPlan::initial(q), &ctx);
        let encs: Vec<_> = kids.iter().map(|k| f.encode_plan(q, k, None)).collect();
        let qrefs: Vec<&[f32]> = vec![&qe; encs.len()];
        let prefs: Vec<_> = encs.iter().collect();
        let expected = net.predict(&qrefs, &prefs);

        let mut session = net.session(&qe);
        // Batched in one call.
        let got = session.score(&prefs).to_vec();
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-6, "session {g} vs predict {e}");
        }
        // And across repeated calls with varying batch sizes (buffer reuse
        // must not leak state between batches).
        for chunk in prefs.chunks(3) {
            let part = session.score(chunk);
            for (i, g) in part.iter().enumerate() {
                let e = net.predict(&[&qe], &[chunk[i]])[0];
                assert!((g - e).abs() < 1e-6, "chunked {g} vs {e}");
            }
        }
    }

    #[test]
    fn session_respects_ignore_structure() {
        let db = imdb::generate(0.02, 1);
        let wl = job::generate(&db, 1);
        let q = &wl.queries[0];
        let f = Featurizer::new(&db, Featurization::OneHot);
        let cfg = NetConfig {
            query_layers: vec![32, 16],
            conv_channels: vec![16, 8],
            head_layers: vec![16],
            lr: 1e-2,
            grad_clip: 5.0,
            ignore_structure: true,
        };
        let net = ValueNet::new(f.query_dim(), f.plan_channels(), cfg, 42);
        let qe = f.encode_query(&db, q);
        let ctx = QueryContext::new(&db, q);
        let kids = neo_query::children(&PartialPlan::initial(q), &ctx);
        let encs: Vec<_> = kids
            .iter()
            .take(4)
            .map(|k| f.encode_plan(q, k, None))
            .collect();
        let qrefs: Vec<&[f32]> = vec![&qe; encs.len()];
        let prefs: Vec<_> = encs.iter().collect();
        let expected = net.predict(&qrefs, &prefs);
        let mut session = net.session(&qe);
        let got = session.score(&prefs);
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-6, "severed {g} vs {e}");
        }
    }

    #[test]
    fn normalization_roundtrip() {
        let db = imdb::generate(0.02, 1);
        let (_, mut net) = tiny_net(&db);
        net.fit_normalization(&[10.0, 100.0, 1000.0]);
        let n = net.normalize_cost(100.0);
        let c = net.to_cost(n);
        assert!((c - 100.0).abs() / 100.0 < 1e-3, "{c}");
    }

    #[test]
    fn param_count_is_substantial() {
        let db = imdb::generate(0.02, 1);
        let (_, mut net) = tiny_net(&db);
        assert!(net.param_count() > 1000);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_predictions() {
        let db = imdb::generate(0.02, 1);
        let wl = job::generate(&db, 1);
        let q = &wl.queries[0];
        let (f, mut net) = tiny_net(&db);
        net.fit_normalization(&[10.0, 100.0, 1000.0]);
        let qe = f.encode_query(&db, q);
        let enc = f.encode_plan(q, &PartialPlan::initial(q), None);
        let before = net.predict(&[&qe], &[&enc])[0];

        let mut buf = Vec::new();
        net.save(&mut buf).unwrap();
        // A fresh net with a different seed predicts differently...
        let cfg = NetConfig {
            query_layers: vec![32, 16],
            conv_channels: vec![16, 8],
            head_layers: vec![16],
            lr: 1e-2,
            grad_clip: 5.0,
            ignore_structure: false,
        };
        let mut other = ValueNet::new(f.query_dim(), f.plan_channels(), cfg, 777);
        let fresh = other.predict(&[&qe], &[&enc])[0];
        assert_ne!(fresh, before);
        // ...until the checkpoint is loaded.
        other.load(&mut &buf[..]).unwrap();
        let after = other.predict(&[&qe], &[&enc])[0];
        assert_eq!(after, before);
        assert_eq!(other.target_mean, net.target_mean);
    }

    #[test]
    fn checkpoint_rejects_mismatched_architecture() {
        let db = imdb::generate(0.02, 1);
        let (f, mut net) = tiny_net(&db);
        let mut buf = Vec::new();
        net.save(&mut buf).unwrap();
        let mut bigger = ValueNet::new(f.query_dim(), f.plan_channels(), NetConfig::default(), 1);
        assert!(bigger.load(&mut &buf[..]).is_err());
    }
}
