//! The Neo system runner (paper Fig. 1): expertise collection, model
//! building, plan search, and model refinement in a loop.
//!
//! * **Bootstrap** — the PostgreSQL-like expert plans every training query;
//!   plans are "executed" (deterministic latency model) and seeded into the
//!   experience; the value network is trained on this demonstration data
//!   (learning from demonstration, §2, §6.3.3).
//! * **Episode** — retrain the network from experience, then for each
//!   training query run the DNN-guided search, execute the chosen plan, and
//!   append the observed cost to the experience (§6.3.1's definition of a
//!   training episode).

use crate::cost::{CostFn, CostKind};
use crate::experience::Experience;
use crate::featurize::{Featurization, Featurizer};
use crate::search::{best_first_search, SearchBudget, SearchStats};
use crate::train::TrainingSet;
use crate::value_net::{NetConfig, ValueNet};
use neo_embedding::{build_corpus, CorpusKind, RVectorFeaturizer, W2vConfig};
use neo_engine::{true_latency, CardinalityOracle, Engine, EngineProfile};
use neo_expert::{deterministic_error_factor, postgres_expert, CardEstimator, HistogramEstimator};
use neo_query::{PlanNode, Query, RelMask};
use neo_storage::Database;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Featurization choice (paper Fig. 12's four variants).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeaturizationChoice {
    /// One-hot predicate existence.
    OneHot,
    /// Histogram selectivities.
    Histogram,
    /// Row vectors over the partially denormalized corpus.
    RVectorJoins,
    /// Row vectors over the normalized corpus.
    RVectorNoJoins,
}

impl FeaturizationChoice {
    /// All four, in the paper's legend order.
    pub const ALL: [FeaturizationChoice; 4] = [
        FeaturizationChoice::RVectorJoins,
        FeaturizationChoice::RVectorNoJoins,
        FeaturizationChoice::Histogram,
        FeaturizationChoice::OneHot,
    ];
}

/// Source of the optional per-node cardinality feature (Fig. 14).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AuxCardSource {
    /// No cardinality feature (the default architecture).
    #[default]
    Off,
    /// The PostgreSQL-style histogram estimate.
    PostgresEstimate,
    /// The true cardinality from the oracle.
    TrueCardinality,
}

/// Full Neo configuration.
#[derive(Clone, Debug)]
pub struct NeoConfig {
    /// Which predicate featurization to use.
    pub featurization: FeaturizationChoice,
    /// Value-network sizes.
    pub net: NetConfig,
    /// SGD epochs over the demonstration data at bootstrap.
    pub bootstrap_epochs: usize,
    /// SGD epochs per episode retrain.
    pub epochs_per_episode: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Cap on training samples per retrain (replay-buffer subsampling).
    pub max_samples_per_retrain: usize,
    /// Search budget: expansions = `search_base_expansions + 3 * |R(q)|`.
    pub search_base_expansions: usize,
    /// Row-vector embedding dimensionality (paper: 100).
    pub emb_dim: usize,
    /// Row-vector training epochs.
    pub emb_epochs: usize,
    /// The cost function Neo minimizes (§6.4.4).
    pub cost_kind: CostKind,
    /// Optional per-node cardinality feature.
    pub aux_card: AuxCardSource,
    /// Error (orders of magnitude) injected into the aux feature at
    /// planning/eval time (Fig. 14; 0 during training).
    pub aux_error_orders: f64,
    /// Learn from demonstration (paper §2). When `false`, the bootstrap
    /// seeds experience with the *untrained* network's plans instead of
    /// expert plans — the paper's negative ablation (§6.3.3).
    pub demonstration: bool,
    /// Execution-timeout cap in ms: observed latencies are clamped here
    /// (the §6.3.3 workaround that "destroys a good amount of the
    /// signal"). `None` = no cap.
    pub timeout_cap_ms: Option<f64>,
    /// Master seed.
    pub seed: u64,
}

impl Default for NeoConfig {
    fn default() -> Self {
        NeoConfig {
            featurization: FeaturizationChoice::RVectorJoins,
            net: NetConfig::default(),
            bootstrap_epochs: 6,
            epochs_per_episode: 1,
            batch_size: 64,
            max_samples_per_retrain: 2048,
            search_base_expansions: 12,
            emb_dim: 32,
            emb_epochs: 2,
            cost_kind: CostKind::WorkloadLatency,
            aux_card: AuxCardSource::Off,
            aux_error_orders: 0.0,
            demonstration: true,
            timeout_cap_ms: None,
            seed: 42,
        }
    }
}

/// Builds the requested featurization, returning it with the wall-clock
/// milliseconds spent training row vectors (0 for 1-Hot/Histogram) —
/// the quantity Fig. 17 reports.
pub fn build_featurization(
    db: &Database,
    choice: FeaturizationChoice,
    emb_dim: usize,
    emb_epochs: usize,
    seed: u64,
) -> (Featurization, f64) {
    match choice {
        FeaturizationChoice::OneHot => (Featurization::OneHot, 0.0),
        FeaturizationChoice::Histogram => (Featurization::Histogram, 0.0),
        FeaturizationChoice::RVectorJoins | FeaturizationChoice::RVectorNoJoins => {
            let joins = choice == FeaturizationChoice::RVectorJoins;
            let start = Instant::now();
            let corpus = build_corpus(
                db,
                if joins {
                    CorpusKind::Denormalized
                } else {
                    CorpusKind::Normalized
                },
            );
            // Hub sentences interleave tokens from several referencing
            // tables, so cross-table co-occurrence needs a wider window.
            let window = if joins { 10 } else { 5 };
            let cfg = W2vConfig {
                dim: emb_dim,
                epochs: emb_epochs,
                window,
                ..Default::default()
            };
            let emb = neo_embedding::train(&corpus, &cfg, seed);
            let ms = start.elapsed().as_secs_f64() * 1e3;
            (
                Featurization::RVector {
                    featurizer: Arc::new(RVectorFeaturizer::new(emb)),
                    joins,
                },
                ms,
            )
        }
    }
}

/// Per-episode statistics.
#[derive(Clone, Copy, Debug)]
pub struct EpisodeStats {
    /// Episode index (0 = first post-bootstrap episode).
    pub episode: usize,
    /// Mean training loss over the retrain batches.
    pub mean_loss: f32,
    /// Total simulated latency of the plans executed this episode (ms).
    pub train_latency_ms: f64,
}

/// The Neo optimizer: value network + featurizer + experience, bound to a
/// database and a target engine.
pub struct Neo<'a> {
    /// The database being optimized for.
    pub db: &'a Database,
    /// The target execution engine.
    pub engine: Engine,
    profile: EngineProfile,
    /// The true-cardinality oracle (shared reward infrastructure).
    pub oracle: CardinalityOracle,
    /// The featurizer.
    pub featurizer: Featurizer,
    /// The value network.
    pub net: ValueNet,
    /// Accumulated experience.
    pub experience: Experience,
    train_queries: Vec<Query>,
    /// The cost function being minimized.
    pub cost_fn: CostFn,
    /// Configuration.
    pub cfg: NeoConfig,
    rng: StdRng,
    /// Wall-clock ms spent in NN training + search (Fig. 11's "neural
    /// network time").
    pub nn_wall_ms: f64,
    /// Simulated ms spent executing training plans (Fig. 11's "query
    /// execution time").
    pub sim_exec_ms: f64,
    /// Wall-clock ms spent building the featurization (Fig. 17).
    pub emb_build_ms: f64,
}

impl<'a> Neo<'a> {
    /// Expertise collection + model building (paper Fig. 1): plans every
    /// training query with the PostgreSQL-like expert, executes those
    /// plans, seeds the experience, and trains the initial value network.
    pub fn bootstrap(
        db: &'a Database,
        engine: Engine,
        train_queries: Vec<Query>,
        cfg: NeoConfig,
    ) -> Self {
        let (kind, emb_build_ms) =
            build_featurization(db, cfg.featurization, cfg.emb_dim, cfg.emb_epochs, cfg.seed);
        let mut featurizer = Featurizer::new(db, kind);
        featurizer.aux_card_channel = cfg.aux_card != AuxCardSource::Off;
        let net = ValueNet::new(
            featurizer.query_dim(),
            featurizer.plan_channels(),
            cfg.net.clone(),
            cfg.seed,
        );
        let mut neo = Neo {
            db,
            engine,
            profile: engine.profile(),
            oracle: CardinalityOracle::new(),
            featurizer,
            net,
            experience: Experience::new(),
            train_queries,
            cost_fn: match cfg.cost_kind {
                CostKind::WorkloadLatency => CostFn::workload(),
                CostKind::Relative => CostFn::relative(Default::default()),
            },
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xBEEF),
            cfg,
            nn_wall_ms: 0.0,
            sim_exec_ms: 0.0,
            emb_build_ms,
        };
        let queries = neo.train_queries.clone();
        if neo.cfg.demonstration {
            // Demonstration data: expert plans, executed (paper §2).
            for q in &queries {
                let plan = postgres_expert(neo.db, q);
                let latency = true_latency(neo.db, q, &neo.profile, &mut neo.oracle, &plan);
                neo.sim_exec_ms += latency;
                neo.cost_fn.set_base(&q.id, latency);
                let cost = neo.cost_fn.cost(&q.id, latency);
                neo.experience.add(&q.id, plan, cost);
            }
        } else {
            // §6.3.3 ablation: no expert — seed with the untrained
            // network's plans, clamped at the timeout cap.
            for q in &queries {
                // A relative cost function still needs *some* baseline;
                // use the (possibly clamped) first observed latency.
                let (plan, _) = neo.plan_query(q);
                let latency = true_latency(neo.db, q, &neo.profile, &mut neo.oracle, &plan);
                let clamped = neo.clamp(latency);
                neo.sim_exec_ms += clamped;
                neo.cost_fn.set_base(&q.id, clamped);
                let cost = neo.cost_fn.cost(&q.id, clamped);
                neo.experience.add(&q.id, plan, cost);
            }
        }
        let epochs = neo.cfg.bootstrap_epochs;
        neo.retrain(epochs);
        neo
    }

    /// Applies the execution timeout cap, when configured.
    fn clamp(&self, latency: f64) -> f64 {
        match self.cfg.timeout_cap_ms {
            Some(cap) => latency.min(cap),
            None => latency,
        }
    }

    /// Adds new queries to the training set mid-run (the Fig. 13 "learning
    /// new queries" protocol): each is planned by the expert, executed, and
    /// seeded into the experience.
    pub fn extend_training(&mut self, queries: Vec<Query>) {
        for q in queries {
            let plan = postgres_expert(self.db, &q);
            let latency = true_latency(self.db, &q, &self.profile, &mut self.oracle, &plan);
            self.sim_exec_ms += latency;
            self.cost_fn.set_base(&q.id, latency);
            let cost = self.cost_fn.cost(&q.id, latency);
            self.experience.add(&q.id, plan, cost);
            self.train_queries.push(q);
        }
    }

    /// The training queries.
    pub fn train_queries(&self) -> &[Query] {
        &self.train_queries
    }

    /// The per-query search budget.
    pub fn budget_for(&self, query: &Query) -> SearchBudget {
        SearchBudget::expansions(self.cfg.search_base_expansions + 3 * query.num_relations())
    }

    /// Retrains the value network from experience for `epochs` passes.
    /// Returns the mean batch loss of the final epoch.
    ///
    /// Composed from the reusable steps in [`crate::train`] —
    /// [`TrainingSet::encode`] + [`TrainingSet::train_epochs`] — which the
    /// `neo-learn` background trainer shares for incremental retraining.
    pub fn retrain(&mut self, epochs: usize) -> f32 {
        let start = Instant::now();
        let refs: Vec<&Query> = self.train_queries.iter().collect();
        let samples = self.experience.training_samples(&refs);
        if samples.is_empty() {
            return 0.0;
        }
        self.net.fit_normalization(&self.experience.all_costs());
        let set = if self.cfg.aux_card == AuxCardSource::Off {
            TrainingSet::encode(&self.featurizer, self.db, &refs, &samples, None)
        } else {
            let mut factory =
                |q: &Query| self.aux_closure(q).expect("aux channel enabled but closed");
            TrainingSet::encode(
                &self.featurizer,
                self.db,
                &refs,
                &samples,
                Some(&mut factory),
            )
        };
        let mean_loss = set.train_epochs(
            &mut self.net,
            epochs,
            self.cfg.batch_size,
            self.cfg.max_samples_per_retrain,
            &mut self.rng,
        );
        self.nn_wall_ms += start.elapsed().as_secs_f64() * 1e3;
        mean_loss
    }

    /// The aux-feature closure for a query per the configuration, with
    /// `aux_error_orders` of injected error.
    fn aux_closure(&self, query: &Query) -> Option<Box<dyn FnMut(RelMask) -> f32 + '_>> {
        let orders = self.cfg.aux_error_orders;
        let seed = self.cfg.seed;
        match self.cfg.aux_card {
            AuxCardSource::Off => None,
            AuxCardSource::PostgresEstimate => {
                let db = self.db;
                let q = query.clone();
                let mut est = HistogramEstimator::new();
                Some(Box::new(move |mask| {
                    let e = est.join(db, &q, mask)
                        * deterministic_error_factor(seed, &q.id, mask, orders);
                    (e.max(1.0).log10()) as f32
                }))
            }
            AuxCardSource::TrueCardinality => {
                // The oracle is behind &self here; use a thread-local-free
                // fresh oracle per closure (memoization still helps within
                // one plan encoding pass).
                let db = self.db;
                let q = query.clone();
                let mut oracle = CardinalityOracle::new();
                Some(Box::new(move |mask| {
                    let c = oracle.cardinality(db, &q, mask)
                        * deterministic_error_factor(seed, &q.id, mask, orders);
                    (c.max(1.0).log10()) as f32
                }))
            }
        }
    }

    /// Runs the DNN-guided search for one query (no execution).
    pub fn plan_query(&mut self, query: &Query) -> (PlanNode, SearchStats) {
        self.plan_query_with_budget(query, self.budget_for(query))
    }

    /// Runs the search with an explicit budget (Fig. 16 sweeps this).
    pub fn plan_query_with_budget(
        &mut self,
        query: &Query,
        budget: SearchBudget,
    ) -> (PlanNode, SearchStats) {
        let start = Instant::now();
        let mut aux = self.aux_closure(query);
        let (plan, stats) = best_first_search(
            &self.net,
            &self.featurizer,
            self.db,
            query,
            budget,
            aux.as_mut().map(|f| &mut **f as _),
        );
        drop(aux);
        self.nn_wall_ms += start.elapsed().as_secs_f64() * 1e3;
        (plan, stats)
    }

    /// Executes a plan (deterministic latency model), records the
    /// experience, and returns the (possibly timeout-clamped) latency.
    pub fn execute_and_learn(&mut self, query: &Query, plan: PlanNode) -> f64 {
        let raw = true_latency(self.db, query, &self.profile, &mut self.oracle, &plan);
        let latency = self.clamp(raw);
        self.sim_exec_ms += latency;
        let cost = self.cost_fn.cost(&query.id, latency);
        self.experience.add(&query.id, plan, cost);
        latency
    }

    /// One full training episode (paper §6.3.1): retrain, then plan +
    /// execute + learn every training query.
    pub fn run_episode(&mut self, episode: usize) -> EpisodeStats {
        let mean_loss = self.retrain(self.cfg.epochs_per_episode);
        let queries = self.train_queries.clone();
        let mut total = 0.0;
        for q in &queries {
            let (plan, _) = self.plan_query(q);
            total += self.execute_and_learn(q, plan);
        }
        EpisodeStats {
            episode,
            mean_loss,
            train_latency_ms: total,
        }
    }

    /// Latency of Neo's chosen plan for each query (no learning).
    pub fn evaluate(&mut self, queries: &[Query]) -> Vec<f64> {
        queries
            .iter()
            .map(|q| {
                let (plan, _) = self.plan_query(q);
                true_latency(self.db, q, &self.profile, &mut self.oracle, &plan)
            })
            .collect()
    }

    /// Value-network prediction for an arbitrary state (Fig. 14 probes
    /// this with injected aux errors).
    pub fn predict_state(&mut self, query: &Query, state: &neo_query::PartialPlan) -> f32 {
        let qenc = self.featurizer.encode_query(self.db, query);
        let mut aux = self.aux_closure(query);
        let enc = self
            .featurizer
            .encode_plan(query, state, aux.as_mut().map(|f| &mut **f as _));
        self.net.predict(&[&qenc], &[&enc])[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_query::workload::job;
    use neo_storage::datagen::imdb;

    fn quick_cfg() -> NeoConfig {
        NeoConfig {
            featurization: FeaturizationChoice::Histogram,
            net: NetConfig {
                query_layers: vec![32, 16],
                conv_channels: vec![16, 8],
                head_layers: vec![16],
                lr: 5e-3,
                grad_clip: 5.0,
                ignore_structure: false,
            },
            bootstrap_epochs: 3,
            epochs_per_episode: 1,
            batch_size: 32,
            max_samples_per_retrain: 256,
            search_base_expansions: 6,
            emb_dim: 8,
            emb_epochs: 1,
            ..Default::default()
        }
    }

    fn small_workload(db: &neo_storage::Database, n: usize) -> Vec<Query> {
        job::generate(db, 1)
            .queries
            .into_iter()
            .filter(|q| q.num_relations() <= 6)
            .take(n)
            .collect()
    }

    #[test]
    fn bootstrap_seeds_experience_with_expert_plans() {
        let db = imdb::generate(0.02, 1);
        let queries = small_workload(&db, 6);
        let neo = Neo::bootstrap(&db, Engine::PostgresLike, queries.clone(), quick_cfg());
        assert_eq!(neo.experience.num_queries(), queries.len());
        assert_eq!(neo.experience.num_plans(), queries.len());
        assert!(neo.sim_exec_ms > 0.0);
    }

    #[test]
    fn episode_adds_experience_and_returns_loss() {
        let db = imdb::generate(0.02, 1);
        let queries = small_workload(&db, 4);
        let mut neo = Neo::bootstrap(&db, Engine::PostgresLike, queries, quick_cfg());
        let before = neo.experience.num_plans();
        let stats = neo.run_episode(0);
        assert!(stats.train_latency_ms > 0.0);
        assert!(stats.mean_loss.is_finite());
        // New plans may duplicate expert plans, but typically at least one
        // new plan appears.
        assert!(neo.experience.num_plans() >= before);
    }

    /// The headline sanity check: after a few episodes Neo's training-set
    /// latency should not be (much) worse than the expert's, because the
    /// expert plans stay in the experience and the network learns to avoid
    /// worse ones.
    #[test]
    fn learning_does_not_catastrophically_regress() {
        let db = imdb::generate(0.05, 1);
        let queries = small_workload(&db, 6);
        let mut neo = Neo::bootstrap(&db, Engine::PostgresLike, queries.clone(), quick_cfg());
        let expert_total: f64 = queries
            .iter()
            .map(|q| neo.experience.best_cost(&q.id).unwrap())
            .sum();
        let mut last = f64::INFINITY;
        for ep in 0..4 {
            last = neo.run_episode(ep).train_latency_ms;
        }
        assert!(
            last < 25.0 * expert_total.max(1.0),
            "episode latency {last} vs expert {expert_total}"
        );
    }

    #[test]
    fn evaluate_does_not_mutate_experience() {
        let db = imdb::generate(0.02, 1);
        let queries = small_workload(&db, 4);
        let mut neo = Neo::bootstrap(&db, Engine::PostgresLike, queries.clone(), quick_cfg());
        let before = neo.experience.num_plans();
        let lats = neo.evaluate(&queries);
        assert_eq!(lats.len(), queries.len());
        assert!(lats.iter().all(|&l| l > 0.0));
        assert_eq!(neo.experience.num_plans(), before);
    }

    #[test]
    fn aux_card_feature_flows_through() {
        let db = imdb::generate(0.02, 1);
        let queries = small_workload(&db, 3);
        let mut cfg = quick_cfg();
        cfg.aux_card = AuxCardSource::PostgresEstimate;
        let mut neo = Neo::bootstrap(&db, Engine::PostgresLike, queries.clone(), cfg);
        let v0 = neo.predict_state(&queries[0], &neo_query::PartialPlan::initial(&queries[0]));
        assert!(v0.is_finite());
        // Injecting error changes the prediction (the feature is used).
        neo.cfg.aux_error_orders = 5.0;
        let v5 = neo.predict_state(&queries[0], &neo_query::PartialPlan::initial(&queries[0]));
        assert!(v0.is_finite() && v5.is_finite());
    }

    #[test]
    fn relative_cost_kind_trains() {
        let db = imdb::generate(0.02, 1);
        let queries = small_workload(&db, 4);
        let mut cfg = quick_cfg();
        cfg.cost_kind = CostKind::Relative;
        let mut neo = Neo::bootstrap(&db, Engine::SqliteLike, queries, cfg);
        let stats = neo.run_episode(0);
        assert!(stats.mean_loss.is_finite());
    }
}
