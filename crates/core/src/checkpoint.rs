//! Framed, integrity-checked checkpoint encoding.
//!
//! A raw [`ValueNet::save`](crate::ValueNet::save) byte stream has no
//! self-description: a truncated copy, a partially written file, or a file
//! from an unrelated tool all "load" into garbage weights that would then
//! be hot-published service-wide. Every checkpoint that crosses a process
//! or machine boundary (the background trainer's `gen-N.ckpt` files, the
//! cluster checkpoint store) is therefore wrapped in a small header:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"NEOC"
//! 4       1     format version (currently 1)
//! 5       8     payload length, u64 little-endian
//! 13      8     FNV-1a 64 checksum of the payload, u64 little-endian
//! 21      n     payload (the ValueNet::save stream)
//! ```
//!
//! [`decode`] verifies magic, version, length, and checksum, rejecting
//! torn or corrupt frames with a descriptive [`std::io::Error`]. For
//! compatibility with checkpoints written before the header existed,
//! byte streams that do *not* start with the magic are passed through
//! unverified as version-0 "legacy" payloads — the version byte in the
//! header is what lets future formats evolve without breaking either.

use std::io::{self, Read, Write};

/// Leading magic of a framed checkpoint.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"NEOC";

/// Current frame format version.
pub const CHECKPOINT_VERSION: u8 = 1;

/// Total header size in bytes (magic + version + length + checksum).
pub const CHECKPOINT_HEADER_LEN: usize = 4 + 1 + 8 + 8;

/// FNV-1a 64 over a byte slice — tiny, dependency-free, and plenty to
/// detect torn writes and bit rot (this is an integrity check, not an
/// adversarial MAC).
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Wraps `payload` in a framed checkpoint (header + payload).
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(CHECKPOINT_HEADER_LEN + payload.len());
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.push(CHECKPOINT_VERSION);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Writes a framed checkpoint to `w`.
pub fn write_framed(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&frame(payload))
}

/// Reads and verifies one framed checkpoint from `r`, returning the
/// payload. Fails on wrong magic, unknown version, truncation, trailing
/// bytes beyond the declared length (torn/concatenated writes), or a
/// checksum mismatch.
pub fn read_framed(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    match decode(&bytes)? {
        Decoded::Framed(payload) => Ok(payload.to_vec()),
        Decoded::Legacy(_) => Err(bad("checkpoint has no frame header".into())),
    }
}

/// A decoded checkpoint byte stream.
#[derive(Debug)]
pub enum Decoded<'a> {
    /// A verified version-1 frame; the slice is the payload.
    Framed(&'a [u8]),
    /// A headerless pre-frame checkpoint, passed through unverified.
    Legacy(&'a [u8]),
}

impl<'a> Decoded<'a> {
    /// The payload either way.
    pub fn payload(&self) -> &'a [u8] {
        match self {
            Decoded::Framed(p) | Decoded::Legacy(p) => p,
        }
    }

    /// Whether the payload came from a verified frame.
    pub fn verified(&self) -> bool {
        matches!(self, Decoded::Framed(_))
    }
}

/// Decodes a checkpoint byte stream: a stream starting with
/// [`CHECKPOINT_MAGIC`] must be a complete, checksum-valid frame; anything
/// else is treated as a legacy headerless payload (version 0) and passed
/// through.
pub fn decode(bytes: &[u8]) -> io::Result<Decoded<'_>> {
    if bytes.len() < 4 || bytes[..4] != CHECKPOINT_MAGIC {
        return Ok(Decoded::Legacy(bytes));
    }
    if bytes.len() < CHECKPOINT_HEADER_LEN {
        return Err(bad(format!(
            "truncated checkpoint header: {} of {CHECKPOINT_HEADER_LEN} bytes",
            bytes.len()
        )));
    }
    let version = bytes[4];
    if version != CHECKPOINT_VERSION {
        return Err(bad(format!(
            "unsupported checkpoint version {version} (expected {CHECKPOINT_VERSION})"
        )));
    }
    let len = u64::from_le_bytes(bytes[5..13].try_into().unwrap()) as usize;
    let declared_sum = u64::from_le_bytes(bytes[13..21].try_into().unwrap());
    let payload = &bytes[CHECKPOINT_HEADER_LEN..];
    if payload.len() < len {
        return Err(bad(format!(
            "torn checkpoint: header declares {len} payload bytes, {} present",
            payload.len()
        )));
    }
    if payload.len() > len {
        return Err(bad(format!(
            "oversized checkpoint: header declares {len} payload bytes, {} present",
            payload.len()
        )));
    }
    let actual = checksum(payload);
    if actual != declared_sum {
        return Err(bad(format!(
            "checkpoint checksum mismatch: header {declared_sum:#018x}, payload {actual:#018x}"
        )));
    }
    Ok(Decoded::Framed(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let payload = b"value net bytes".to_vec();
        let framed = frame(&payload);
        assert_eq!(framed.len(), CHECKPOINT_HEADER_LEN + payload.len());
        let decoded = decode(&framed).unwrap();
        assert!(decoded.verified());
        assert_eq!(decoded.payload(), &payload[..]);
        assert_eq!(read_framed(&mut &framed[..]).unwrap(), payload);
    }

    #[test]
    fn legacy_headerless_bytes_pass_through() {
        // A raw ValueNet::save stream starts with the f32 target_mean —
        // never the magic.
        let legacy = vec![0u8, 0, 0, 0, 1, 2, 3];
        let decoded = decode(&legacy).unwrap();
        assert!(!decoded.verified());
        assert_eq!(decoded.payload(), &legacy[..]);
    }

    #[test]
    fn truncated_frame_is_rejected() {
        let framed = frame(b"0123456789");
        for cut in [4, CHECKPOINT_HEADER_LEN - 1, framed.len() - 1] {
            let err = decode(&framed[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let mut framed = frame(b"0123456789");
        let last = framed.len() - 1;
        framed[last] ^= 0x40;
        let err = decode(&framed).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn corrupt_header_fields_are_rejected() {
        let framed = frame(b"payload");
        // Unknown version.
        let mut v = framed.clone();
        v[4] = 9;
        assert!(decode(&v).unwrap_err().to_string().contains("version"));
        // Length larger than the payload (torn write).
        let mut l = framed.clone();
        l[5] = l[5].wrapping_add(1);
        assert!(decode(&l).unwrap_err().to_string().contains("torn"));
        // Trailing junk beyond the declared length.
        let mut t = framed;
        t.push(0xFF);
        assert!(decode(&t).unwrap_err().to_string().contains("oversized"));
    }

    #[test]
    fn empty_payload_frames_cleanly() {
        let framed = frame(&[]);
        assert_eq!(decode(&framed).unwrap().payload(), &[] as &[u8]);
    }

    #[test]
    fn checksum_is_order_sensitive() {
        assert_ne!(checksum(b"ab"), checksum(b"ba"));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }
}
