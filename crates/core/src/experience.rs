//! Neo's experience: the set of executed complete plans with observed
//! costs, and the derivation of value-network training samples from it
//! (paper §2 "Expertise Collection" / §4).
//!
//! The value network is trained to predict, for a partial plan `P_i`, the
//! *best* cost among experienced complete plans containing it:
//! `min{C(P_f) | P_i ⊂ P_f ∧ P_f ∈ E}`. Training states are derived from
//! every subtree `s` of every experienced plan: the state
//! `[s] ∪ {U(r) | r ∉ s}` is a subplan of every experienced plan
//! containing `s`, so its target is the min cost over those plans.

use neo_query::{PartialPlan, PlanNode, Query, ScanType};
use std::collections::HashMap;

/// One experienced execution.
#[derive(Clone, Debug)]
pub struct Episode {
    /// The executed complete plan.
    pub plan: PlanNode,
    /// Its cost `C(P_f)` (latency, or relative latency — see
    /// [`crate::cost`]).
    pub cost: f64,
}

/// A training sample for the value network.
#[derive(Clone, Debug)]
pub struct TrainingSample {
    /// Which query the state belongs to.
    pub query_id: String,
    /// The partial-plan state.
    pub state: PartialPlan,
    /// Min-aggregated target cost.
    pub target: f64,
}

/// Default cap on retained plans per query (see [`Experience::add`]).
///
/// The value network's targets are *min*-aggregated, so the high-cost tail
/// of a query's episode list contributes almost nothing after the first few
/// episodes — but an unbounded list grows linearly with training episodes
/// (and with serving feedback, once the closed loop runs for days). Best-k
/// retention keeps the store O(queries), not O(executions).
pub const DEFAULT_PLANS_PER_QUERY: usize = 16;

/// The experience store, per query.
#[derive(Clone, Debug)]
pub struct Experience {
    by_query: HashMap<String, Vec<Episode>>,
    max_plans_per_query: usize,
}

impl Default for Experience {
    fn default() -> Self {
        Experience {
            by_query: HashMap::new(),
            max_plans_per_query: DEFAULT_PLANS_PER_QUERY,
        }
    }
}

impl Experience {
    /// Creates an empty store with the default per-query plan cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store retaining at most `k` (≥ 1) plans per query.
    pub fn with_plan_cap(k: usize) -> Self {
        Experience {
            by_query: HashMap::new(),
            max_plans_per_query: k.max(1),
        }
    }

    /// The per-query plan retention cap.
    pub fn plan_cap(&self) -> usize {
        self.max_plans_per_query
    }

    /// Records an executed plan. Duplicate plans keep the minimum cost
    /// (the latency model is deterministic, so duplicates carry no new
    /// information). When a query exceeds the plan cap, the worst-cost
    /// plan is dropped — best-k retention, so [`Self::best_plan`] /
    /// [`Self::best_cost`] and the min-aggregated
    /// [`Self::training_samples`] targets are unaffected by eviction.
    pub fn add(&mut self, query_id: &str, plan: PlanNode, cost: f64) {
        let eps = self.by_query.entry(query_id.to_string()).or_default();
        if let Some(e) = eps.iter_mut().find(|e| e.plan == plan) {
            e.cost = e.cost.min(cost);
        } else {
            eps.push(Episode { plan, cost });
        }
        if eps.len() > self.max_plans_per_query {
            // Evict the worst-cost episode (the latest among ties). The
            // freshly added plan evicts itself when it *is* the worst —
            // correct for best-k semantics.
            let worst = eps
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.cost.partial_cmp(&b.1.cost).unwrap())
                .map(|(i, _)| i)
                .expect("non-empty episode list");
            eps.remove(worst);
        }
    }

    /// Best experienced cost for a query.
    pub fn best_cost(&self, query_id: &str) -> Option<f64> {
        self.by_query
            .get(query_id)?
            .iter()
            .map(|e| e.cost)
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// The best experienced plan for a query.
    pub fn best_plan(&self, query_id: &str) -> Option<&PlanNode> {
        self.by_query
            .get(query_id)?
            .iter()
            .min_by(|a, b| a.cost.partial_cmp(&b.cost).unwrap())
            .map(|e| &e.plan)
    }

    /// Total number of stored (query, plan) pairs.
    pub fn num_plans(&self) -> usize {
        self.by_query.values().map(|v| v.len()).sum()
    }

    /// Number of queries with experience.
    pub fn num_queries(&self) -> usize {
        self.by_query.len()
    }

    /// All stored costs (used to fit target normalization).
    pub fn all_costs(&self) -> Vec<f64> {
        self.by_query
            .values()
            .flat_map(|v| v.iter().map(|e| e.cost))
            .collect()
    }

    /// Derives the deduplicated training set for the given queries.
    pub fn training_samples(&self, queries: &[&Query]) -> Vec<TrainingSample> {
        let mut out = Vec::new();
        for q in queries {
            let Some(eps) = self.by_query.get(&q.id) else {
                continue;
            };
            // Min-aggregate target per distinct subtree.
            let mut min_by_subtree: HashMap<String, (PlanNode, f64)> = HashMap::new();
            let mut overall = f64::INFINITY;
            for e in eps {
                overall = overall.min(e.cost);
                for s in e.plan.subtrees() {
                    let key = s.describe();
                    min_by_subtree
                        .entry(key)
                        .and_modify(|(_, c)| *c = c.min(e.cost))
                        .or_insert_with(|| (s.clone(), e.cost));
                }
            }
            // The initial all-unspecified state is a subplan of everything.
            out.push(TrainingSample {
                query_id: q.id.clone(),
                state: PartialPlan::initial(q),
                target: overall,
            });
            let n = q.num_relations();
            let mut keys: Vec<&String> = min_by_subtree.keys().collect();
            keys.sort(); // deterministic order
            for key in keys {
                let (subtree, target) = &min_by_subtree[key];
                let mask = subtree.rel_mask();
                let mut roots = vec![subtree.clone()];
                for rel in 0..n {
                    if mask & (1 << rel) == 0 {
                        roots.push(PlanNode::Scan {
                            rel,
                            scan: ScanType::Unspecified,
                        });
                    }
                }
                out.push(TrainingSample {
                    query_id: q.id.clone(),
                    state: PartialPlan { roots },
                    target: *target,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_query::{JoinOp, PlanNode, ScanType};

    fn leaf(rel: usize) -> PlanNode {
        PlanNode::Scan {
            rel,
            scan: ScanType::Table,
        }
    }

    fn join(op: JoinOp, l: PlanNode, r: PlanNode) -> PlanNode {
        PlanNode::Join {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    fn query3() -> Query {
        Query {
            id: "q".into(),
            family: "f".into(),
            tables: vec![0, 1, 2],
            joins: vec![
                neo_query::JoinEdge {
                    left_table: 1,
                    left_col: 1,
                    right_table: 0,
                    right_col: 0,
                },
                neo_query::JoinEdge {
                    left_table: 2,
                    left_col: 1,
                    right_table: 1,
                    right_col: 0,
                },
            ],
            predicates: vec![],
            agg: Default::default(),
        }
    }

    #[test]
    fn duplicate_plans_keep_min_cost() {
        let mut e = Experience::new();
        let p = join(JoinOp::Hash, leaf(0), leaf(1));
        e.add("q", p.clone(), 100.0);
        e.add("q", p.clone(), 50.0);
        e.add("q", p, 80.0);
        assert_eq!(e.num_plans(), 1);
        assert_eq!(e.best_cost("q"), Some(50.0));
    }

    #[test]
    fn training_targets_are_min_aggregated() {
        let q = query3();
        let mut e = Experience::new();
        // Two plans share the subtree HJ(T(0),T(1)) with costs 100 and 40.
        let shared = join(JoinOp::Hash, leaf(0), leaf(1));
        e.add("q", join(JoinOp::Hash, shared.clone(), leaf(2)), 100.0);
        e.add("q", join(JoinOp::Merge, shared.clone(), leaf(2)), 40.0);
        let samples = e.training_samples(&[&q]);
        // Find the state whose first root is the shared subtree.
        let s = samples
            .iter()
            .find(|s| s.state.roots.first() == Some(&shared))
            .expect("shared-subtree state present");
        assert_eq!(s.target, 40.0);
        // Initial state targets the overall best.
        let init = samples
            .iter()
            .find(|s| s.state == PartialPlan::initial(&q))
            .unwrap();
        assert_eq!(init.target, 40.0);
    }

    #[test]
    fn states_cover_remaining_relations_with_unspecified_scans() {
        let q = query3();
        let mut e = Experience::new();
        e.add(
            "q",
            join(JoinOp::Hash, join(JoinOp::Hash, leaf(0), leaf(1)), leaf(2)),
            10.0,
        );
        for s in e.training_samples(&[&q]) {
            assert_eq!(
                s.state.rel_mask(),
                0b111,
                "state must cover R(q): {}",
                s.state.describe()
            );
        }
    }

    #[test]
    fn unknown_query_yields_no_samples() {
        let e = Experience::new();
        let q = query3();
        assert_eq!(e.training_samples(&[&q]).len(), 0);
        assert_eq!(e.best_cost("nope"), None);
    }

    #[test]
    fn plan_cap_bounds_growth_and_keeps_best() {
        let mut e = Experience::with_plan_cap(3);
        assert_eq!(e.plan_cap(), 3);
        // 10 distinct plans with distinct costs; only the 3 cheapest stay.
        for i in 0..10usize {
            let op = if i % 2 == 0 {
                JoinOp::Hash
            } else {
                JoinOp::Merge
            };
            let plan = join(op, leaf(i % 4), leaf(4 + i / 2));
            e.add("q", plan, 100.0 - i as f64);
        }
        assert_eq!(e.num_plans(), 3, "cap must bound retained plans");
        assert_eq!(e.best_cost("q"), Some(91.0), "cheapest plan retained");
        let mut costs = e.all_costs();
        costs.sort_by(f64::total_cmp);
        assert_eq!(costs, vec![91.0, 92.0, 93.0], "best-k retention");
    }

    #[test]
    fn plan_cap_never_evicts_the_best_plan() {
        let mut e = Experience::with_plan_cap(2);
        let best = join(JoinOp::Hash, leaf(0), leaf(1));
        e.add("q", best.clone(), 1.0);
        for i in 0..20usize {
            e.add(
                "q",
                join(JoinOp::Merge, leaf(i % 3), leaf(3 + i % 5)),
                50.0 + i as f64,
            );
        }
        assert_eq!(e.num_plans(), 2);
        assert_eq!(e.best_plan("q"), Some(&best));
        assert_eq!(e.best_cost("q"), Some(1.0));
    }

    #[test]
    fn duplicate_adds_do_not_evict_under_cap() {
        let mut e = Experience::with_plan_cap(2);
        let a = join(JoinOp::Hash, leaf(0), leaf(1));
        let b = join(JoinOp::Merge, leaf(0), leaf(1));
        e.add("q", a.clone(), 10.0);
        e.add("q", b, 20.0);
        // Re-adding an existing plan (any cost) must not push the store
        // over the cap or evict anything.
        e.add("q", a, 30.0);
        assert_eq!(e.num_plans(), 2);
        assert_eq!(e.best_cost("q"), Some(10.0));
    }

    #[test]
    fn best_plan_tracks_min() {
        let mut e = Experience::new();
        let a = join(JoinOp::Hash, leaf(0), leaf(1));
        let b = join(JoinOp::Merge, leaf(0), leaf(1));
        e.add("q", a, 100.0);
        e.add("q", b.clone(), 20.0);
        assert_eq!(e.best_plan("q"), Some(&b));
    }
}
