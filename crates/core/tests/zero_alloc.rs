//! ISSUE 1 acceptance: steady-state batched inference performs **zero**
//! heap allocations in the nn forward path.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! pass has grown every scratch buffer to its steady-state size, repeated
//! `InferenceSession::score` calls must not allocate (or free) at all.
//! `neo_nn::realloc_events` cross-checks the same property at the
//! `Matrix::resize` level.

use neo::{Featurization, Featurizer, NetConfig, ValueNet};
use neo_query::{children, PartialPlan, QueryContext};
use neo_storage::datagen::imdb;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts allocation events while the
/// *current thread* is armed. Arming is thread-local so harness threads
/// (libtest plumbing, sibling tests spawning) cannot be misattributed to
/// the scored loop; the counters themselves stay global for reading.
struct CountingAlloc;

std::thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
}

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);

/// Safe inside the allocator: the thread-local is const-initialized (no
/// lazy allocation), and `try_with` tolerates TLS teardown.
fn armed() -> bool {
    ARMED.try_with(|a| a.get()).unwrap_or(false)
}

fn set_armed(on: bool) {
    ARMED.with(|a| a.set(on));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if armed() {
            FREES.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// The counters are process-global, so the two tests must not overlap.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn reset_counters() {
    ALLOCS.store(0, Ordering::SeqCst);
    FREES.store(0, Ordering::SeqCst);
}

#[test]
fn steady_state_scoring_is_allocation_free() {
    let _guard = SERIAL.lock().unwrap();
    reset_counters();
    let db = imdb::generate(0.02, 1);
    let wl = neo_query::workload::job::generate(&db, 1);
    let q = wl.queries.iter().find(|q| q.num_relations() == 8).unwrap();
    let f = Featurizer::new(&db, Featurization::OneHot);
    let cfg = NetConfig {
        query_layers: vec![32, 16],
        conv_channels: vec![16, 16, 8],
        head_layers: vec![16],
        lr: 1e-2,
        grad_clip: 5.0,
        ignore_structure: false,
    };
    let net = ValueNet::new(f.query_dim(), f.plan_channels(), cfg, 11);
    let qenc = f.encode_query(&db, q);

    // A realistic batch: all children of the initial state (~tens of
    // plans), pre-encoded so only the nn forward path is measured.
    let ctx = QueryContext::new(&db, q);
    let kids = children(&PartialPlan::initial(q), &ctx);
    assert!(
        kids.len() >= 16,
        "want a non-trivial batch, got {}",
        kids.len()
    );
    let encs: Vec<_> = kids.iter().map(|k| f.encode_plan(q, k, None)).collect();
    let refs: Vec<_> = encs.iter().collect();

    let mut session = net.session(&qenc);
    // Warm-up: grows every scratch buffer to steady-state size.
    let warm = session.score(&refs).to_vec();
    let _ = session.score(&refs);
    let resize_growth = neo_nn::realloc_events();

    set_armed(true);
    for _ in 0..10 {
        let scores = session.score(&refs);
        assert_eq!(scores.len(), refs.len());
        std::hint::black_box(scores);
    }
    set_armed(false);

    let allocs = ALLOCS.load(Ordering::SeqCst);
    let frees = FREES.load(Ordering::SeqCst);
    assert_eq!(allocs, 0, "steady-state score() allocated {allocs} times");
    assert_eq!(frees, 0, "steady-state score() freed {frees} times");
    assert_eq!(
        neo_nn::realloc_events(),
        resize_growth,
        "scratch buffers grew after warm-up"
    );

    // Still numerically correct after the armed runs.
    let again = session.score(&refs);
    for (a, b) in again.iter().zip(&warm) {
        assert_eq!(a, b, "steady-state scores drifted");
    }
}

/// Smaller batches after a big warm-up must also stay allocation-free
/// (buffers shrink logically but keep their capacity).
#[test]
fn shrinking_batches_stay_allocation_free() {
    let _guard = SERIAL.lock().unwrap();
    reset_counters();
    let db = imdb::generate(0.02, 2);
    let wl = neo_query::workload::job::generate(&db, 2);
    let q = wl.queries.iter().find(|q| q.num_relations() == 6).unwrap();
    let f = Featurizer::new(&db, Featurization::OneHot);
    let cfg = NetConfig {
        query_layers: vec![16, 8],
        conv_channels: vec![8, 8],
        head_layers: vec![8],
        lr: 1e-2,
        grad_clip: 5.0,
        ignore_structure: false,
    };
    let net = ValueNet::new(f.query_dim(), f.plan_channels(), cfg, 5);
    let qenc = f.encode_query(&db, q);
    let ctx = QueryContext::new(&db, q);
    let kids = children(&PartialPlan::initial(q), &ctx);
    let encs: Vec<_> = kids.iter().map(|k| f.encode_plan(q, k, None)).collect();
    let refs: Vec<_> = encs.iter().collect();

    let mut session = net.session(&qenc);
    let _ = session.score(&refs); // warm up at the largest size

    set_armed(true);
    let before = (ALLOCS.load(Ordering::SeqCst), FREES.load(Ordering::SeqCst));
    for take in [refs.len(), refs.len() / 2, 3, 1] {
        let _ = session.score(&refs[..take.max(1)]);
    }
    set_armed(false);
    let after = (ALLOCS.load(Ordering::SeqCst), FREES.load(Ordering::SeqCst));
    assert_eq!(before, after, "shrinking batches hit the allocator");
}
