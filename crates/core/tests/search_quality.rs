//! Search-quality tests for the core crate: the DNN-guided search must
//! exploit what the value network knows, and degrade gracefully when it
//! knows nothing.

use neo::{
    best_first_search, CostKind, Featurization, Featurizer, Neo, NeoConfig, NetConfig,
    SearchBudget, ValueNet,
};
use neo_engine::{true_latency, Engine};
use neo_query::workload::job;
use neo_storage::datagen::imdb;

fn tiny_net_cfg() -> NetConfig {
    NetConfig {
        query_layers: vec![32, 16],
        conv_channels: vec![16, 8],
        head_layers: vec![16],
        lr: 3e-3,
        grad_clip: 5.0,
        ignore_structure: false,
    }
}

/// After training on a query's experience, the search must find a plan at
/// least as good as the best experienced plan *for that query* — the value
/// iteration property (paper §4.2): search + accurate values ≥ remembered
/// best.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds")]
fn trained_search_matches_best_experience() {
    let db = imdb::generate(0.05, 23);
    let queries: Vec<_> = job::generate(&db, 23)
        .queries
        .into_iter()
        .filter(|q| q.num_relations() <= 5)
        .take(6)
        .collect();
    let cfg = NeoConfig {
        featurization: neo::FeaturizationChoice::Histogram,
        net: tiny_net_cfg(),
        bootstrap_epochs: 8,
        epochs_per_episode: 2,
        batch_size: 32,
        max_samples_per_retrain: 1024,
        search_base_expansions: 16,
        cost_kind: CostKind::WorkloadLatency,
        ..Default::default()
    };
    let mut neo = Neo::bootstrap(&db, Engine::PostgresLike, queries.clone(), cfg);
    for ep in 1..=6 {
        neo.run_episode(ep);
    }
    let mut hits = 0;
    for q in &queries {
        let best = neo.experience.best_cost(&q.id).unwrap();
        let (plan, _) = neo.plan_query(q);
        let lat = true_latency(
            &db,
            q,
            &Engine::PostgresLike.profile(),
            &mut neo.oracle,
            &plan,
        );
        // Small-query latencies are startup-dominated (a few ms), so allow
        // both a relative factor and an absolute slack.
        if lat <= best * 3.0 + 5.0 {
            hits += 1;
        }
    }
    assert!(
        hits >= queries.len() - 1,
        "search should recover near-best experienced plans; only {hits}/{} did",
        queries.len()
    );
}

/// An untrained network still yields *valid* complete plans for every
/// query size present in the workload — robustness of search + hurry-up.
#[test]
fn untrained_search_is_always_valid() {
    let db = imdb::generate(0.02, 23);
    let wl = job::generate(&db, 23);
    let f = Featurizer::new(&db, Featurization::OneHot);
    let net = ValueNet::new(f.query_dim(), f.plan_channels(), tiny_net_cfg(), 9);
    for q in wl
        .queries
        .iter()
        .filter(|q| q.num_relations() <= 10)
        .take(15)
    {
        let (plan, _) = best_first_search(&net, &f, &db, q, SearchBudget::expansions(10), None);
        assert!(plan.fully_specified());
        assert_eq!(
            plan.rel_mask(),
            (1u64 << q.num_relations()) - 1,
            "query {}",
            q.id
        );
        // And the executor accepts it.
        let ex = neo_engine::Executor::new(&db, q);
        assert!(ex.execute_count(&plan).is_ok(), "query {}", q.id);
    }
}

/// Budget accounting: starved searches report `hurried`; generous budgets
/// on small queries complete without hurry-up, and both return valid plans.
#[test]
fn hurry_up_labeling_is_accurate() {
    let db = imdb::generate(0.02, 23);
    let wl = job::generate(&db, 23);
    let f = Featurizer::new(&db, Featurization::Histogram);
    let net = ValueNet::new(f.query_dim(), f.plan_channels(), tiny_net_cfg(), 11);
    for q in wl.queries.iter().filter(|q| q.num_relations() == 4).take(4) {
        let (p_small, s_small) =
            best_first_search(&net, &f, &db, q, SearchBudget::expansions(0), None);
        assert!(s_small.hurried, "zero-budget search must hurry");
        assert!(p_small.fully_specified());
        let (p_large, s_large) =
            best_first_search(&net, &f, &db, q, SearchBudget::expansions(400), None);
        assert!(
            !s_large.hurried,
            "400 expansions complete a 4-relation query"
        );
        assert!(p_large.fully_specified());
        assert!(s_large.scored > s_small.scored);
    }
}
