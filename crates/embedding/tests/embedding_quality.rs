//! Embedding-quality integration tests: the planted IMDB correlations must
//! surface as cosine-similarity structure (the paper's Table 2 / Fig. 7
//! effects), deterministically.

use neo_embedding::{build_corpus, cosine, train, CorpusKind, W2vConfig};
use neo_storage::datagen::imdb;

fn trained() -> (neo_storage::Database, neo_embedding::Embedding) {
    let db = imdb::generate(0.25, 13);
    let corpus = build_corpus(&db, CorpusKind::Denormalized);
    let emb = train(
        &corpus,
        &W2vConfig {
            dim: 32,
            epochs: 3,
            window: 10,
            ..Default::default()
        },
        13,
    );
    (db, emb)
}

/// Table 2's core claim: keyword clusters are more similar to their own
/// genre than to rival genres.
#[test]
// word2vec training at this scale is release-speed work; skipped in debug
// builds (run `cargo test --release` for the full suite).
#[cfg_attr(debug_assertions, ignore = "slow in debug builds")]
fn keyword_clusters_align_with_their_genre() {
    let (db, emb) = trained();
    let kw = db.table("keyword").col("keyword").as_str().unwrap();
    let mean_sim = |word: &str, genre: &str| -> f32 {
        let matched: Vec<String> = kw
            .codes_containing(word)
            .into_iter()
            .map(|c| kw.decode(c).to_string())
            .collect();
        assert!(!matched.is_empty(), "no keywords match {word}");
        cosine(
            &emb.mean_vector(matched.iter()),
            emb.vector(genre).expect("genre token"),
        )
    };
    // "love" keywords belong to romance; "fight" keywords to action.
    let love_romance = mean_sim("love", "romance");
    let love_action = mean_sim("love", "action");
    let fight_action = mean_sim("fight", "action");
    let fight_romance = mean_sim("fight", "romance");
    assert!(
        love_romance > love_action,
        "love~romance {love_romance} should beat love~action {love_action}"
    );
    assert!(
        fight_action > fight_romance,
        "fight~action {fight_action} should beat fight~romance {fight_romance}"
    );
}

/// Country tokens should cluster with themselves across tables (the
/// birthplace↔production-country correlation).
#[test]
// word2vec training at this scale is release-speed work; skipped in debug
// builds (run `cargo test --release` for the full suite).
#[cfg_attr(debug_assertions, ignore = "slow in debug builds")]
fn genre_tokens_are_mutually_distinguishable() {
    let (_, emb) = trained();
    // Self-similarity is 1; distinct genres should sit measurably apart.
    let g1 = emb.vector("romance").unwrap();
    let g2 = emb.vector("action").unwrap();
    let cross = cosine(g1, g2);
    assert!(cross < 0.995, "genres collapsed: cos={cross}");
}

/// Training twice with the same seed gives identical vectors; a different
/// seed gives different ones.
#[test]
fn embedding_training_is_seed_deterministic() {
    let db = imdb::generate(0.05, 13);
    let corpus = build_corpus(&db, CorpusKind::Normalized);
    let cfg = W2vConfig {
        dim: 8,
        epochs: 1,
        ..Default::default()
    };
    let a = train(&corpus, &cfg, 5);
    let b = train(&corpus, &cfg, 5);
    let c = train(&corpus, &cfg, 6);
    assert_eq!(a.vector("romance"), b.vector("romance"));
    assert_ne!(a.vector("romance"), c.vector("romance"));
}

/// The normalized ("no joins") corpus cannot link genre and keyword tokens:
/// a keyword row is a single-token sentence, so keyword vectors receive no
/// gradient at all and stay at their (tiny) random initialization, while
/// the joined corpus trains them into full-magnitude cluster vectors.
#[test]
// word2vec training at this scale is release-speed work; skipped in debug
// builds (run `cargo test --release` for the full suite).
#[cfg_attr(debug_assertions, ignore = "slow in debug builds")]
fn no_joins_corpus_misses_cross_table_correlation() {
    let db = imdb::generate(0.25, 13);
    let cfg = W2vConfig {
        dim: 32,
        epochs: 3,
        window: 10,
        ..Default::default()
    };
    let joined = train(&build_corpus(&db, CorpusKind::Denormalized), &cfg, 13);
    let normed = train(&build_corpus(&db, CorpusKind::Normalized), &cfg, 13);
    let kw = db.table("keyword").col("keyword").as_str().unwrap();
    let mean_norm = |emb: &neo_embedding::Embedding| -> f32 {
        let matched: Vec<String> = kw
            .codes_containing("love")
            .into_iter()
            .map(|c| kw.decode(c).to_string())
            .collect();
        let mv = emb.mean_vector(matched.iter());
        mv.iter().map(|v| v * v).sum::<f32>().sqrt()
    };
    let (nj, nn) = (mean_norm(&joined), mean_norm(&normed));
    assert!(
        nj > 5.0 * nn,
        "joined keyword vectors ({nj}) should dwarf untrained no-joins vectors ({nn})"
    );
}
