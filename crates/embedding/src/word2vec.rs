//! Skip-gram word2vec with negative sampling (Mikolov et al. 2013), the
//! algorithm behind the paper's row vectors (§5). Stands in for the gensim
//! implementation the paper uses.

use crate::corpus::Corpus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Training configuration.
#[derive(Clone, Debug)]
pub struct W2vConfig {
    /// Embedding dimensionality (the paper uses 100; default 64 for speed).
    pub dim: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed to 10%).
    pub lr: f32,
}

impl Default for W2vConfig {
    fn default() -> Self {
        W2vConfig {
            dim: 64,
            window: 5,
            negatives: 5,
            epochs: 3,
            lr: 0.025,
        }
    }
}

/// A trained embedding: one vector per vocabulary token.
///
/// # Examples
///
/// ```
/// use neo_embedding::{build_corpus, train, CorpusKind, W2vConfig};
/// use neo_storage::datagen::imdb;
///
/// let db = imdb::generate(0.02, 1);
/// let corpus = build_corpus(&db, CorpusKind::Denormalized);
/// let cfg = W2vConfig { dim: 8, epochs: 1, ..Default::default() };
/// let emb = train(&corpus, &cfg, 1);
/// assert_eq!(emb.vector("romance").unwrap().len(), 8);
/// assert!(emb.cosine("romance", "action").unwrap().abs() <= 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct Embedding {
    /// Vector dimensionality.
    pub dim: usize,
    /// Token string → token id.
    pub token_ids: HashMap<String, u32>,
    /// Flat `vocab_len x dim` input-vector matrix.
    vectors: Vec<f32>,
}

impl Embedding {
    /// The vector for a token, if known.
    pub fn vector(&self, token: &str) -> Option<&[f32]> {
        let id = *self.token_ids.get(token)?;
        Some(self.vector_by_id(id))
    }

    /// The vector for a token id.
    pub fn vector_by_id(&self, id: u32) -> &[f32] {
        let i = id as usize * self.dim;
        &self.vectors[i..i + self.dim]
    }

    /// Vocabulary size.
    pub fn vocab_len(&self) -> usize {
        self.vectors.len() / self.dim
    }

    /// Cosine similarity between two tokens (`None` if either is unknown).
    pub fn cosine(&self, a: &str, b: &str) -> Option<f32> {
        Some(cosine(self.vector(a)?, self.vector(b)?))
    }

    /// Mean vector of the given tokens (unknown tokens are skipped).
    /// Used for multi-match predicates: "we take the mean of all the
    /// matched word vectors" (paper §5.1).
    pub fn mean_vector(&self, tokens: impl IntoIterator<Item = impl AsRef<str>>) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.dim];
        let mut n = 0usize;
        for t in tokens {
            if let Some(v) = self.vector(t.as_ref()) {
                for (a, b) in acc.iter_mut().zip(v) {
                    *a += b;
                }
                n += 1;
            }
        }
        if n > 0 {
            for a in &mut acc {
                *a /= n as f32;
            }
        }
        acc
    }

    /// The `k` most cosine-similar tokens to `token`.
    pub fn most_similar(&self, token: &str, k: usize) -> Vec<(String, f32)> {
        let Some(v) = self.vector(token) else {
            return Vec::new();
        };
        let mut scored: Vec<(String, f32)> = self
            .token_ids
            .iter()
            .filter(|(t, _)| t.as_str() != token)
            .map(|(t, &id)| (t.clone(), cosine(v, self.vector_by_id(id))))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        scored.truncate(k);
        scored
    }
}

/// Cosine similarity of two equal-length vectors.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Trains skip-gram-with-negative-sampling embeddings on a corpus.
pub fn train(corpus: &Corpus, config: &W2vConfig, seed: u64) -> Embedding {
    let vocab_len = corpus.vocab.len();
    let dim = config.dim;
    let mut rng = StdRng::seed_from_u64(seed);

    // Input and output matrices.
    let mut w_in: Vec<f32> = (0..vocab_len * dim)
        .map(|_| (rng.gen::<f32>() - 0.5) / dim as f32)
        .collect();
    let mut w_out: Vec<f32> = vec![0.0; vocab_len * dim];

    // Unigram^0.75 negative-sampling table.
    let table = build_negative_table(&corpus.counts, 1 << 18);

    let total_steps = (config.epochs * corpus.sentences.len()).max(1);
    let mut step = 0usize;
    let mut grad = vec![0.0f32; dim];
    for _epoch in 0..config.epochs {
        for sentence in &corpus.sentences {
            step += 1;
            let progress = step as f32 / total_steps as f32;
            let lr = config.lr * (1.0 - 0.9 * progress);
            for (i, &center) in sentence.iter().enumerate() {
                let lo = i.saturating_sub(config.window);
                let hi = (i + config.window + 1).min(sentence.len());
                for (j, &context) in sentence.iter().enumerate().take(hi).skip(lo) {
                    if j == i {
                        continue;
                    }
                    // Positive pair + negatives.
                    let ci = center as usize * dim;
                    grad.iter_mut().for_each(|g| *g = 0.0);
                    for n in 0..=config.negatives {
                        let (target, label) = if n == 0 {
                            (context, 1.0f32)
                        } else {
                            (table[rng.gen_range(0..table.len())], 0.0)
                        };
                        if n > 0 && target == context {
                            continue;
                        }
                        let ti = target as usize * dim;
                        let dot: f32 = (0..dim).map(|d| w_in[ci + d] * w_out[ti + d]).sum();
                        let err = (sigmoid(dot) - label) * lr;
                        for d in 0..dim {
                            grad[d] += err * w_out[ti + d];
                            w_out[ti + d] -= err * w_in[ci + d];
                        }
                    }
                    for d in 0..dim {
                        w_in[ci + d] -= grad[d];
                    }
                }
            }
        }
    }
    Embedding {
        dim,
        token_ids: corpus.token_ids.clone(),
        vectors: w_in,
    }
}

fn build_negative_table(counts: &[u64], size: usize) -> Vec<u32> {
    let weights: Vec<f64> = counts.iter().map(|&c| (c as f64).powf(0.75)).collect();
    let total: f64 = weights.iter().sum();
    let mut table = Vec::with_capacity(size);
    if total == 0.0 {
        return vec![0; size.max(1)];
    }
    let mut acc = 0.0f64;
    let mut token = 0usize;
    for i in 0..size {
        let target = (i as f64 + 0.5) / size as f64;
        while acc + weights[token] / total < target && token + 1 < counts.len() {
            acc += weights[token] / total;
            token += 1;
        }
        table.push(token as u32);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Corpus;

    /// Hand-built corpus with two clusters. Skip-gram input vectors align
    /// for tokens with *shared contexts*, so each cluster has a shared
    /// context token: {a, b} co-occur with m, {x, y} co-occur with n.
    fn cluster_corpus() -> Corpus {
        let mut c = Corpus::default();
        for t in ["a", "b", "x", "y", "m", "n"] {
            let id = c.vocab.len() as u32;
            c.token_ids.insert(t.into(), id);
            c.vocab.push(t.into());
            c.counts.push(0);
        }
        let (a, b, x, y, m, n) = (0u32, 1, 2, 3, 4, 5);
        for _ in 0..300 {
            c.sentences.push(vec![a, m, b]);
            c.sentences.push(vec![b, m, a]);
            c.sentences.push(vec![x, n, y]);
            c.sentences.push(vec![y, n, x]);
        }
        for s in &c.sentences {
            for &t in s {
                c.counts[t as usize] += 1;
            }
        }
        c
    }

    #[test]
    fn cooccurring_tokens_are_more_similar() {
        let corpus = cluster_corpus();
        // A toy corpus needs many epochs to accumulate enough updates.
        let emb = train(
            &corpus,
            &W2vConfig {
                dim: 16,
                epochs: 40,
                lr: 0.08,
                ..Default::default()
            },
            7,
        );
        let ab = emb.cosine("a", "b").unwrap();
        let ax = emb.cosine("a", "x").unwrap();
        assert!(ab > ax + 0.08, "cos(a,b)={ab} should exceed cos(a,x)={ax}");
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let corpus = cluster_corpus();
        let e1 = train(
            &corpus,
            &W2vConfig {
                dim: 8,
                epochs: 1,
                ..Default::default()
            },
            3,
        );
        let e2 = train(
            &corpus,
            &W2vConfig {
                dim: 8,
                epochs: 1,
                ..Default::default()
            },
            3,
        );
        assert_eq!(e1.vector("a").unwrap(), e2.vector("a").unwrap());
    }

    #[test]
    fn mean_vector_of_unknown_tokens_is_zero() {
        let corpus = cluster_corpus();
        let emb = train(
            &corpus,
            &W2vConfig {
                dim: 8,
                epochs: 1,
                ..Default::default()
            },
            3,
        );
        let v = emb.mean_vector(["nope", "missing"]);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn most_similar_ranks_cluster_partner_first() {
        let corpus = cluster_corpus();
        let emb = train(
            &corpus,
            &W2vConfig {
                dim: 16,
                epochs: 40,
                lr: 0.08,
                ..Default::default()
            },
            1,
        );
        let sims = emb.most_similar("x", 1);
        assert_eq!(sims[0].0, "y");
    }

    #[test]
    fn cosine_identities() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn negative_table_respects_frequency() {
        let table = build_negative_table(&[100, 1, 1], 1000);
        let zeros = table.iter().filter(|&&t| t == 0).count();
        assert!(
            zeros > 700,
            "high-frequency token underrepresented: {zeros}"
        );
    }
}
