//! Corpus construction: database rows as word2vec "sentences" (paper §5.1).
//!
//! Two strategies, matching the paper's two R-Vector variants:
//!
//! * **no joins** — every row of every table becomes one sentence holding
//!   the row's own (non-key) value tokens: captures within-table
//!   correlations only;
//! * **joins** (partial denormalization) — rows are extended with the
//!   tokens of the rows they reference through foreign keys (two hops),
//!   and *hub* tables (referenced by several fact tables, e.g. `title`)
//!   additionally emit merged sentences combining their referencing rows'
//!   tokens. This is what lets "romance" (in `movie_info`) co-occur with
//!   "love-…" keywords (in `keyword`, two FK hops away) in one sentence —
//!   the paper's Table 2 effect.
//!
//! Key columns (ids and FK columns) carry no semantics and are skipped.
//! High-cardinality integer columns are quantized into bucket tokens
//! (`amount~7`); low-cardinality ones become exact tokens (`year:2016`).

use neo_storage::{ColumnData, Database};
use std::collections::{HashMap, HashSet};

/// Corpus strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorpusKind {
    /// One sentence per row, own tokens only ("no joins").
    Normalized,
    /// Partial denormalization along foreign keys ("joins").
    Denormalized,
}

/// A tokenized corpus: integer token ids plus the vocabulary.
#[derive(Clone, Debug, Default)]
pub struct Corpus {
    /// Token strings, indexed by token id.
    pub vocab: Vec<String>,
    /// Token id per string.
    pub token_ids: HashMap<String, u32>,
    /// Occurrence count per token id.
    pub counts: Vec<u64>,
    /// The sentences.
    pub sentences: Vec<Vec<u32>>,
}

impl Corpus {
    /// Total token occurrences.
    pub fn total_tokens(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Token id for a string, if in vocabulary.
    pub fn token_id(&self, s: &str) -> Option<u32> {
        self.token_ids.get(s).copied()
    }

    fn intern(&mut self, s: String) -> u32 {
        if let Some(&id) = self.token_ids.get(&s) {
            self.counts[id as usize] += 1;
            return id;
        }
        let id = self.vocab.len() as u32;
        self.token_ids.insert(s.clone(), id);
        self.vocab.push(s);
        self.counts.push(1);
        id
    }
}

/// Number of quantization buckets for high-cardinality integer columns.
const INT_BUCKETS: i64 = 16;
/// Integer columns with at most this many distinct values get exact tokens.
const EXACT_INT_LIMIT: u64 = 64;
/// Maximum sentence length (hub sentences are truncated here).
const MAX_SENTENCE: usize = 48;

/// Per-table tokenization plan, precomputed once.
struct Tokenizer {
    /// For each (table, col): how to token-ize, or skip.
    plans: Vec<Vec<ColPlan>>,
}

enum ColPlan {
    Skip,
    /// String column: token is the raw value (per dictionary code).
    Str,
    /// Exact integer token `col:value`.
    IntExact,
    /// Bucketed integer token `col~bucket`, with (min, max).
    IntBucket(i64, i64),
}

impl Tokenizer {
    fn new(db: &Database) -> Self {
        let mut key_cols: HashSet<(usize, usize)> = HashSet::new();
        for (t, table) in db.tables.iter().enumerate() {
            if let Some(c) = table.col_id("id") {
                key_cols.insert((t, c));
            }
        }
        for fk in &db.foreign_keys {
            key_cols.insert((fk.from_table, fk.from_col));
            key_cols.insert((fk.to_table, fk.to_col));
        }
        let plans = db
            .tables
            .iter()
            .enumerate()
            .map(|(t, table)| {
                table
                    .columns
                    .iter()
                    .enumerate()
                    .map(|(c, col)| {
                        if key_cols.contains(&(t, c)) {
                            return ColPlan::Skip;
                        }
                        match &col.data {
                            ColumnData::Str(_) => ColPlan::Str,
                            ColumnData::Int(v) => {
                                let distinct = db.stats[t].columns[c].distinct();
                                if distinct <= EXACT_INT_LIMIT {
                                    ColPlan::IntExact
                                } else {
                                    let min = v.iter().copied().min().unwrap_or(0);
                                    let max = v.iter().copied().max().unwrap_or(0);
                                    ColPlan::IntBucket(min, max)
                                }
                            }
                        }
                    })
                    .collect()
            })
            .collect();
        Tokenizer { plans }
    }

    /// Appends row `(t, row)`'s tokens to `out`.
    fn row_tokens(&self, db: &Database, t: usize, row: usize, out: &mut Vec<String>) {
        for (c, plan) in self.plans[t].iter().enumerate() {
            let col = &db.tables[t].columns[c];
            match plan {
                ColPlan::Skip => {}
                ColPlan::Str => {
                    let s = col.as_str().unwrap();
                    out.push(s.decode(s.codes[row]).to_string());
                }
                ColPlan::IntExact => {
                    let v = col.as_int().unwrap()[row];
                    out.push(format!("{}:{v}", col.name));
                }
                ColPlan::IntBucket(min, max) => {
                    let v = col.as_int().unwrap()[row];
                    let width = ((max - min) / INT_BUCKETS).max(1);
                    let bucket = ((v - min) / width).min(INT_BUCKETS - 1);
                    out.push(format!("{}~{bucket}", col.name));
                }
            }
        }
    }
}

/// Builds a corpus from the database.
pub fn build_corpus(db: &Database, kind: CorpusKind) -> Corpus {
    let tk = Tokenizer::new(db);
    let mut corpus = Corpus::default();
    let mut scratch: Vec<String> = Vec::new();

    // Row sentences (both variants; denormalized extends them).
    for (t, table) in db.tables.iter().enumerate() {
        // Forward FK targets of t, per row resolved below.
        let fwd: Vec<(usize, usize, usize)> = db
            .foreign_keys
            .iter()
            .filter(|fk| fk.from_table == t)
            .map(|fk| (fk.from_col, fk.to_table, fk.to_col))
            .collect();
        for row in 0..table.num_rows() {
            scratch.clear();
            tk.row_tokens(db, t, row, &mut scratch);
            if kind == CorpusKind::Denormalized {
                // One- and two-hop forward denormalization.
                for &(fc, tt, tc) in &fwd {
                    let key = table.columns[fc].as_int().unwrap()[row];
                    for &rref in lookup_rows(db, tt, tc, key).iter().take(1) {
                        tk.row_tokens(db, tt, rref as usize, &mut scratch);
                        for fk2 in db.foreign_keys.iter().filter(|f| f.from_table == tt) {
                            let key2 = db.tables[tt].columns[fk2.from_col].as_int().unwrap()
                                [rref as usize];
                            for &r2 in lookup_rows(db, fk2.to_table, fk2.to_col, key2)
                                .iter()
                                .take(1)
                            {
                                tk.row_tokens(db, fk2.to_table, r2 as usize, &mut scratch);
                            }
                        }
                    }
                }
            }
            if scratch.is_empty() {
                continue;
            }
            scratch.truncate(MAX_SENTENCE);
            let sentence: Vec<u32> = scratch.drain(..).map(|s| corpus.intern(s)).collect();
            corpus.sentences.push(sentence);
        }
    }

    // Hub sentences: merge the neighbourhoods of heavily-referenced tables.
    if kind == CorpusKind::Denormalized {
        for (hub, table) in db.tables.iter().enumerate() {
            let referencing: Vec<_> = db
                .foreign_keys
                .iter()
                .filter(|fk| fk.to_table == hub)
                .collect();
            if referencing.len() < 2 {
                continue;
            }
            let hub_key_col = referencing[0].to_col;
            for row in 0..table.num_rows() {
                scratch.clear();
                tk.row_tokens(db, hub, row, &mut scratch);
                let key = table.columns[hub_key_col].as_int().unwrap()[row];
                for fk in &referencing {
                    for &rref in lookup_rows(db, fk.from_table, fk.from_col, key)
                        .iter()
                        .take(4)
                    {
                        tk.row_tokens(db, fk.from_table, rref as usize, &mut scratch);
                        // One forward hop from the referencing row (e.g.
                        // movie_keyword -> keyword).
                        for fk2 in db
                            .foreign_keys
                            .iter()
                            .filter(|f| f.from_table == fk.from_table)
                        {
                            if fk2.to_table == hub {
                                continue;
                            }
                            let key2 = db.tables[fk.from_table].columns[fk2.from_col]
                                .as_int()
                                .unwrap()[rref as usize];
                            for &r2 in lookup_rows(db, fk2.to_table, fk2.to_col, key2)
                                .iter()
                                .take(1)
                            {
                                tk.row_tokens(db, fk2.to_table, r2 as usize, &mut scratch);
                            }
                        }
                        if scratch.len() >= MAX_SENTENCE {
                            break;
                        }
                    }
                    if scratch.len() >= MAX_SENTENCE {
                        break;
                    }
                }
                scratch.truncate(MAX_SENTENCE);
                if scratch.len() < 2 {
                    continue;
                }
                let sentence: Vec<u32> = scratch.drain(..).map(|s| corpus.intern(s)).collect();
                corpus.sentences.push(sentence);
            }
        }
    }
    corpus
}

/// Rows of `table` whose `col` equals `key` (via index when available).
fn lookup_rows(db: &Database, table: usize, col: usize, key: i64) -> Vec<u32> {
    if let Some(idx) = db.index(table, col) {
        return idx.lookup(key).to_vec();
    }
    db.tables[table].columns[col]
        .as_int()
        .map(|v| {
            v.iter()
                .enumerate()
                .filter(|(_, &x)| x == key)
                .map(|(i, _)| i as u32)
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_storage::datagen::imdb;

    #[test]
    fn normalized_corpus_has_row_sentences() {
        let db = imdb::generate(0.02, 1);
        let corpus = build_corpus(&db, CorpusKind::Normalized);
        assert!(!corpus.sentences.is_empty());
        assert!(corpus.token_id("romance").is_some());
        // Key columns produce no tokens: no "id:…" tokens.
        assert!(corpus.vocab.iter().all(|t| !t.starts_with("id:")));
    }

    #[test]
    fn denormalized_sentences_cooccur_genre_and_keyword() {
        let db = imdb::generate(0.02, 1);
        let corpus = build_corpus(&db, CorpusKind::Denormalized);
        let romance = corpus.token_id("romance").unwrap();
        // Count sentences containing both the genre token and any love-*
        // keyword token.
        let love_ids: Vec<u32> = corpus
            .vocab
            .iter()
            .enumerate()
            .filter(|(_, s)| s.starts_with("love-"))
            .map(|(i, _)| i as u32)
            .collect();
        assert!(!love_ids.is_empty());
        let love_set: std::collections::HashSet<u32> = love_ids.into_iter().collect();
        let both = corpus
            .sentences
            .iter()
            .filter(|s| s.contains(&romance) && s.iter().any(|t| love_set.contains(t)))
            .count();
        assert!(
            both > 10,
            "only {both} sentences co-occur romance with love-*"
        );
    }

    #[test]
    fn denormalized_is_larger_than_normalized() {
        let db = imdb::generate(0.02, 1);
        let norm = build_corpus(&db, CorpusKind::Normalized);
        let denorm = build_corpus(&db, CorpusKind::Denormalized);
        assert!(denorm.total_tokens() > norm.total_tokens());
    }

    #[test]
    fn high_cardinality_ints_are_bucketed() {
        let db = imdb::generate(0.02, 1);
        let corpus = build_corpus(&db, CorpusKind::Normalized);
        // production_year (90 distinct) must be bucketed, not exact.
        assert!(corpus
            .vocab
            .iter()
            .any(|t| t.starts_with("production_year~")));
        assert!(corpus
            .vocab
            .iter()
            .all(|t| !t.starts_with("production_year:")));
    }

    #[test]
    fn sentences_are_bounded() {
        let db = imdb::generate(0.02, 1);
        let corpus = build_corpus(&db, CorpusKind::Denormalized);
        assert!(corpus.sentences.iter().all(|s| s.len() <= MAX_SENTENCE));
    }
}
