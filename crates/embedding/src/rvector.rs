//! R-Vector predicate featurization (paper §5.1, "Row vector
//! construction"): for every query predicate, a concatenation of
//!
//! 1. a one-hot encoding of the comparison operator,
//! 2. the number of matched words,
//! 3. the word2vec embedding of the predicate value (mean over matches for
//!    multi-match predicates like `ILIKE`),
//! 4. the number of times the value was seen in training,
//!
//! which replaces the 0/1 entries of the one-hot column-predicate vector.

use crate::word2vec::Embedding;
use neo_query::{CmpOp, Predicate};
use neo_storage::Database;

/// Number of operator slots in the one-hot operator encoding:
/// Eq, Lt, Le, Gt, Ge, Between, Contains.
pub const NUM_OPS: usize = 7;

/// Featurizes predicates through a trained row-vector embedding.
pub struct RVectorFeaturizer {
    /// The trained embedding.
    pub embedding: Embedding,
}

impl RVectorFeaturizer {
    /// Creates a featurizer.
    pub fn new(embedding: Embedding) -> Self {
        RVectorFeaturizer { embedding }
    }

    /// Width of one predicate slot: ops one-hot + matched count +
    /// embedding + seen count.
    pub fn slot_size(&self) -> usize {
        NUM_OPS + 1 + self.embedding.dim + 1
    }

    /// Featurizes one predicate into a `slot_size()`-wide vector.
    pub fn featurize(&self, db: &Database, p: &Predicate) -> Vec<f32> {
        let mut out = vec![0.0f32; self.slot_size()];
        let op_slot = match p {
            Predicate::IntCmp { op, .. } => match op {
                CmpOp::Eq => 0,
                CmpOp::Lt => 1,
                CmpOp::Le => 2,
                CmpOp::Gt => 3,
                CmpOp::Ge => 4,
            },
            Predicate::IntBetween { .. } => 5,
            Predicate::StrEq { .. } => 0,
            Predicate::StrContains { .. } => 6,
        };
        out[op_slot] = 1.0;

        let (tokens, matched): (Vec<String>, usize) = match p {
            Predicate::IntCmp {
                table, col, value, ..
            } => {
                let name = &db.tables[*table].columns[*col].name;
                (int_tokens(db, *table, *col, name, &[*value]), 1)
            }
            Predicate::IntBetween { table, col, lo, hi } => {
                let name = &db.tables[*table].columns[*col].name;
                (int_tokens(db, *table, *col, name, &[*lo, *hi]), 2)
            }
            Predicate::StrEq { value, .. } => (vec![value.clone()], 1),
            Predicate::StrContains { table, col, needle } => {
                let s = db.tables[*table].columns[*col]
                    .as_str()
                    .expect("str column");
                let toks: Vec<String> = s
                    .codes_containing(needle)
                    .into_iter()
                    .map(|c| s.decode(c).to_string())
                    .collect();
                let n = toks.len();
                (toks, n)
            }
        };
        out[NUM_OPS] = matched as f32;
        let mean = self.embedding.mean_vector(tokens.iter());
        out[NUM_OPS + 1..NUM_OPS + 1 + self.embedding.dim].copy_from_slice(&mean);
        // Seen count: total training occurrences of the matched tokens.
        let seen: usize = tokens
            .iter()
            .filter(|t| self.embedding.token_ids.contains_key(t.as_str()))
            .count();
        // Scaled to keep the feature O(1).
        out[NUM_OPS + 1 + self.embedding.dim] = (seen as f32).ln_1p();
        out
    }
}

/// Token strings for integer predicate operands, matching the corpus
/// tokenizer's scheme (exact `col:value` or bucketed `col~bucket`).
fn int_tokens(db: &Database, table: usize, col: usize, name: &str, values: &[i64]) -> Vec<String> {
    let stats = &db.stats[table].columns[col];
    let distinct = stats.distinct();
    if distinct <= 64 {
        values.iter().map(|v| format!("{name}:{v}")).collect()
    } else if let neo_storage::ColumnStats::Int(h) = stats {
        let (min, max) = (h.min(), h.max());
        let width = ((max - min) / 16).max(1);
        values
            .iter()
            .map(|v| {
                let bucket = ((v - min) / width).clamp(0, 15);
                format!("{name}~{bucket}")
            })
            .collect()
    } else {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{build_corpus, CorpusKind};
    use crate::word2vec::{train, W2vConfig};
    use neo_storage::datagen::imdb;

    fn small_featurizer(db: &Database) -> RVectorFeaturizer {
        let corpus = build_corpus(db, CorpusKind::Normalized);
        let emb = train(
            &corpus,
            &W2vConfig {
                dim: 8,
                epochs: 1,
                ..Default::default()
            },
            1,
        );
        RVectorFeaturizer::new(emb)
    }

    #[test]
    fn slot_layout_is_stable() {
        let db = imdb::generate(0.02, 1);
        let f = small_featurizer(&db);
        assert_eq!(f.slot_size(), 7 + 1 + 8 + 1);
    }

    #[test]
    fn str_eq_sets_eq_op_and_embedding() {
        let db = imdb::generate(0.02, 1);
        let f = small_featurizer(&db);
        let t = db.table_id("movie_info").unwrap();
        let c = db.tables[t].col_id("info").unwrap();
        let v = f.featurize(
            &db,
            &Predicate::StrEq {
                table: t,
                col: c,
                value: "romance".into(),
            },
        );
        assert_eq!(v[0], 1.0); // Eq slot
        assert_eq!(v[NUM_OPS], 1.0); // one matched token
        let emb = &v[NUM_OPS + 1..NUM_OPS + 1 + 8];
        assert!(
            emb.iter().any(|&x| x != 0.0),
            "embedding all-zero for known token"
        );
    }

    #[test]
    fn contains_counts_matches() {
        // Scale 0.2 yields ~400 keywords, several containing "love".
        let db = imdb::generate(0.2, 1);
        let f = small_featurizer(&db);
        let t = db.table_id("keyword").unwrap();
        let c = db.tables[t].col_id("keyword").unwrap();
        let v = f.featurize(
            &db,
            &Predicate::StrContains {
                table: t,
                col: c,
                needle: "love".into(),
            },
        );
        assert_eq!(v[6], 1.0); // Contains slot
        assert!(v[NUM_OPS] > 1.0, "love should match several keywords");
    }

    #[test]
    fn unknown_value_has_zero_embedding() {
        let db = imdb::generate(0.02, 1);
        let f = small_featurizer(&db);
        let t = db.table_id("movie_info").unwrap();
        let c = db.tables[t].col_id("info").unwrap();
        let v = f.featurize(
            &db,
            &Predicate::StrEq {
                table: t,
                col: c,
                value: "zzz".into(),
            },
        );
        let emb = &v[NUM_OPS + 1..NUM_OPS + 1 + 8];
        assert!(emb.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn int_between_uses_bucket_tokens() {
        let db = imdb::generate(0.02, 1);
        let f = small_featurizer(&db);
        let t = db.table_id("title").unwrap();
        let c = db.tables[t].col_id("production_year").unwrap();
        let v = f.featurize(
            &db,
            &Predicate::IntBetween {
                table: t,
                col: c,
                lo: 1990,
                hi: 2005,
            },
        );
        assert_eq!(v[5], 1.0); // Between slot
        let emb = &v[NUM_OPS + 1..NUM_OPS + 1 + 8];
        assert!(
            emb.iter().any(|&x| x != 0.0),
            "year bucket tokens should be embedded"
        );
    }
}
