#![warn(missing_docs)]
//! # neo-embedding — row-vector embeddings for the Neo reproduction
//!
//! The paper's R-Vector featurization (§5): a word2vec model trained on
//! database rows, capturing cross-column and (via partial denormalization)
//! cross-table correlations, used to featurize query predicates.
//!
//! * [`corpus`] — rows-as-sentences corpora, normalized ("no joins") and
//!   partially denormalized ("joins");
//! * [`word2vec`] — skip-gram with negative sampling, from scratch (stands
//!   in for gensim);
//! * [`rvector`] — the predicate feature layout of §5.1 (operator one-hot,
//!   match count, mean embedding, seen count).

pub mod corpus;
pub mod rvector;
pub mod word2vec;

pub use corpus::{build_corpus, Corpus, CorpusKind};
pub use rvector::{RVectorFeaturizer, NUM_OPS};
pub use word2vec::{cosine, train, Embedding, W2vConfig};
