//! The multi-query optimization service: a swappable frozen [`ValueNet`]
//! shared by a fixed worker pool, fronted by the sharded [`PlanCache`],
//! with an execution-feedback path feeding the closed learning loop.
//!
//! Per query, a worker: (1) fingerprints the query and probes the cache —
//! a hit returns the previously chosen plan with **zero** neural-network
//! work; (2) on a miss, loads the current model generation **once** from
//! the [`ModelSlot`] and opens an [`InferenceSession`]-backed wavefront
//! search (`best_first_search_seeded_with_scratch`) against it, warm-
//! started by any seed plan demoted from the previous epoch, with scratch
//! buffers recycled through a [`ScratchPool`]; (3) inserts the chosen
//! plan stamped with the epoch its search started under.
//!
//! Search is deterministic (no RNG, stable tie-breaking), so concurrent
//! serving chooses byte-identical plans to a single-threaded run **per
//! model generation and seed state** — an in-flight search straddling a
//! [`OptimizerService::publish_model`] swap finishes on the network it
//! started with, and its now-stale cache insert is rejected by the epoch
//! stamp. The swap-path test pins exactly this: every concurrently chosen
//! plan equals the single-threaded reference of *some* generation, never a
//! torn blend.
//!
//! After executing a chosen plan, callers report the observed latency via
//! [`OptimizerService::report_execution`]; an attached
//! [`ExecutionFeedback`] sink (the `neo-learn` experience sink) collects
//! these records for the background trainer, which eventually calls
//! [`OptimizerService::publish_model`] — closing the paper's Fig. 1 loop.
//!
//! [`InferenceSession`]: neo::InferenceSession
//! [`ValueNet`]: neo::ValueNet
//! [`ScratchPool`]: neo_nn::ScratchPool

use crate::cache::{CacheStats, PlanCache, DEFAULT_SHARDS, DEFAULT_SHARD_CAPACITY};
use crate::pool::WorkerPool;
use crate::slot::ModelSlot;
use neo::{best_first_search_seeded_with_scratch, Featurizer, SearchBudget, SearchStats, ValueNet};
use neo_nn::ScratchPool;
use neo_obs::{
    Counter, FingerprintStat, Gauge, HistogramSnapshot, HotSet, JsonNode, LatencyHistogram,
    MetricsRegistry, MetricsSnapshot, SamplerConfig, SearchTrace, SeedOutcome, SpanRing,
    TelemetrySampler, Tracer,
};
use neo_query::{fingerprint, PlanNode, Query, QueryFingerprint};
use neo_storage::Database;
use std::hash::{Hash, Hasher};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Where executed-plan observations go: the serving side of the learning
/// loop. Implemented by `neo-learn`'s `ExperienceSink`; must be cheap and
/// non-blocking — it is called from serving threads.
pub trait ExecutionFeedback: Send + Sync {
    /// Records one observed execution of `plan` for `query`.
    /// `predicted_ms` is the optimizer's own latency prediction for the
    /// plan at optimize time (when it searched rather than hit the cache);
    /// the replay buffer uses `|observed − predicted|` as the record's
    /// regret priority.
    fn record(
        &self,
        fp: QueryFingerprint,
        query: &Query,
        plan: &PlanNode,
        latency_ms: f64,
        predicted_ms: Option<f64>,
    );
}

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads optimizing queries concurrently.
    pub workers: usize,
    /// Plan-cache shard count.
    pub cache_shards: usize,
    /// Plan-cache capacity per shard (CLOCK eviction beyond this).
    pub cache_capacity_per_shard: usize,
    /// Enables the plan cache (off = every query searches; used by the
    /// bench's cold-scaling measurement).
    pub use_cache: bool,
    /// Reuse plans demoted by epoch bumps as warm-start search seeds
    /// (cross-epoch plan reuse; only effective when the cache is on).
    pub use_seeds: bool,
    /// Search budget: expansions = `search_base_expansions + 3 * |R(q)|`
    /// (the runner's budget rule, deterministic across runs).
    pub search_base_expansions: usize,
    /// Wavefront width `K` for every search.
    pub wavefront: usize,
    /// Enables the observability layer (metrics registry updates, latency
    /// histograms, hot-set tracking). On by default; the serve bench turns
    /// it off for its overhead comparison. Metric *registration* happens
    /// either way, so the registry's shape is stable — only hot-path
    /// updates are gated.
    pub obs: bool,
    /// Enables causal span tracing of the optimize path (requires `obs`).
    /// Sampled traces land in the service's [`SpanRing`]; committed
    /// trace ids feed histogram exemplars and hot-set worst-case
    /// pointers. The serve bench A/B-gates its cost separately.
    pub tracing: bool,
    /// Head sampling: keep 1 in this many query traces (0 or 1 = all).
    pub trace_sample_every: u64,
    /// Tail latch: commit any query trace at least this slow end-to-end,
    /// sampled or not — p99s stay explainable even at sparse sampling.
    pub trace_slow_ms: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cache_shards: DEFAULT_SHARDS,
            cache_capacity_per_shard: DEFAULT_SHARD_CAPACITY,
            use_cache: true,
            use_seeds: true,
            search_base_expansions: 12,
            wavefront: neo::DEFAULT_WAVEFRONT,
            obs: true,
            tracing: true,
            trace_sample_every: 64,
            trace_slow_ms: 10.0,
        }
    }
}

/// One query plus its per-request serving options. [`OptimizerService::
/// optimize_request`] is the opt-in door to per-query [`SearchTrace`]s;
/// the plain [`OptimizerService::optimize`] path never pays for tracing.
#[derive(Clone, Debug)]
pub struct OptimizeRequest {
    /// The query to optimize.
    pub query: Query,
    /// Fill [`OptimizeOutcome::trace`] with a full per-query search trace.
    pub trace: bool,
}

impl OptimizeRequest {
    /// A plain request (no trace).
    pub fn new(query: Query) -> Self {
        OptimizeRequest {
            query,
            trace: false,
        }
    }

    /// A request that opts into per-query tracing.
    pub fn traced(query: Query) -> Self {
        OptimizeRequest { query, trace: true }
    }
}

/// The result of optimizing one query through the service.
#[derive(Clone, Debug)]
pub struct OptimizeOutcome {
    /// The query's id (as submitted).
    pub query_id: String,
    /// Canonical structural fingerprint (the cache key).
    pub fingerprint: QueryFingerprint,
    /// The chosen physical plan.
    pub plan: PlanNode,
    /// True when the plan came from the cache (no NN work performed).
    pub cache_hit: bool,
    /// The model generation whose weights chose this plan (for a cache
    /// hit: the generation current when the probe succeeded).
    pub model_generation: u64,
    /// Wall-clock optimize latency, milliseconds (cache probe included).
    pub optimize_ms: f64,
    /// The model's predicted latency (ms) for the chosen plan under the
    /// generation that chose it — the denormalized search score. `None` on
    /// a cache hit (no network was consulted). Report it back with the
    /// observed latency so replay retention can prioritize by regret.
    pub predicted_ms: Option<f64>,
    /// Search statistics (`None` on a cache hit; `stats.seeded` reports
    /// whether a demoted plan warm-started the search).
    pub search: Option<SearchStats>,
    /// The per-query search trace, filled only when the request opted in
    /// via [`OptimizeRequest::traced`].
    pub trace: Option<SearchTrace>,
}

/// The serving side of neo-obs: the per-service metrics registry plus the
/// handles the hot path updates. Histograms are striped per worker
/// (selected by thread id) so concurrent recording never contends on one
/// cache line; the registry merges stripes on snapshot.
struct ServeObs {
    registry: Arc<MetricsRegistry>,
    requests: Counter,
    search_hist: Vec<Arc<LatencyHistogram>>,
    hit_hist: Vec<Arc<LatencyHistogram>>,
    e2e_hist: Vec<Arc<LatencyHistogram>>,
    generation_gauge: Gauge,
    epoch_gauge: Gauge,
    hotset: HotSet,
    /// The bounded ring committed query traces land in (always present,
    /// so the snapshot shape is stable; empty when tracing is off).
    spans: Arc<SpanRing>,
    /// Hands out per-request root spans; a disabled tracer's guards are
    /// no-ops, so the untraced hot path pays nothing.
    tracer: Tracer,
    enabled: bool,
}

/// Committed query traces retained per service.
const SPAN_RING_CAPACITY: usize = 2048;

impl ServeObs {
    fn new(workers: usize, enabled: bool, cfg: &ServeConfig) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        // One stripe per pool worker plus one for direct `optimize`
        // callers; thread-id hashing spreads recorders across them.
        let stripes = workers.max(1) + 1;
        let mk = |name: &str| {
            let h: Vec<Arc<LatencyHistogram>> = (0..stripes)
                .map(|_| Arc::new(LatencyHistogram::new()))
                .collect();
            registry.bind_histogram_stripes(name, &h);
            h
        };
        let search_hist = mk("serve_search_ms");
        let hit_hist = mk("serve_cache_hit_ms");
        let e2e_hist = mk("serve_optimize_ms");
        let requests = Counter::new();
        registry.bind_counter("serve_requests_total", &requests);
        let generation_gauge = Gauge::new();
        registry.bind_gauge("serve_model_generation", &generation_gauge);
        let epoch_gauge = Gauge::new();
        registry.bind_gauge("serve_cache_epoch", &epoch_gauge);
        let spans = Arc::new(SpanRing::new(SPAN_RING_CAPACITY));
        let tracer = if enabled && cfg.tracing {
            let slow_us = (cfg.trace_slow_ms.max(0.0) * 1e3) as u64;
            Tracer::new(Arc::clone(&spans), cfg.trace_sample_every, slow_us)
        } else {
            Tracer::disabled(Arc::clone(&spans))
        };
        ServeObs {
            registry,
            requests,
            search_hist,
            hit_hist,
            e2e_hist,
            generation_gauge,
            epoch_gauge,
            hotset: HotSet::new(),
            spans,
            tracer,
            enabled,
        }
    }

    /// This thread's stripe of a striped histogram.
    fn stripe<'a>(&self, stripes: &'a [Arc<LatencyHistogram>]) -> &'a LatencyHistogram {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut hasher);
        &stripes[(hasher.finish() % stripes.len() as u64) as usize]
    }

    fn merged(&self, stripes: &[Arc<LatencyHistogram>]) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for s in stripes {
            out.merge(&s.snapshot());
        }
        out
    }
}

/// State shared between the caller and every worker.
struct Shared {
    db: Arc<Database>,
    featurizer: Arc<Featurizer>,
    model: ModelSlot,
    cache: PlanCache,
    scratch: ScratchPool,
    feedback: OnceLock<Arc<dyn ExecutionFeedback>>,
    obs: ServeObs,
    cfg: ServeConfig,
}

impl Shared {
    /// The full optimize path for one query, run on whichever thread calls
    /// it (a pool worker for streams, the caller for [`OptimizerService::
    /// optimize`]).
    fn optimize_one(&self, query: &Query, want_trace: bool) -> OptimizeOutcome {
        let start = Instant::now();
        let fp = fingerprint(query);
        // Epoch before model: if the epoch read is stale relative to a
        // concurrent publish, the insert below is rejected by its stamp —
        // never the other way around (see `publish_model`'s ordering).
        let search_epoch = self.cache.epoch();
        // Root of this request's causal trace (a no-op guard when tracing
        // is off). Children cover each serving stage; the whole trace
        // commits to the span ring iff head-sampled or slow.
        let mut root = self.obs.tracer.start("optimize", "serve");
        if root.is_recording() {
            root.attr("query_id", query.id.clone());
            root.attr("fingerprint", format!("{:032x}", fp.0));
        }
        if self.cfg.use_cache {
            let mut probe_span = root.child("cache_probe");
            let probed = self.cache.get_with_generation(fp);
            probe_span.attr("hit", if probed.is_some() { "true" } else { "false" });
            probe_span.end();
            if let Some((plan, chosen_by)) = probed {
                let optimize_ms = start.elapsed().as_secs_f64() * 1e3;
                // End the root *before* recording, so exemplars only ever
                // point at traces that actually committed to the ring.
                let kept = root.end();
                if self.obs.enabled {
                    self.obs.requests.inc();
                    self.obs
                        .stripe(&self.obs.hit_hist)
                        .record_ms_traced(optimize_ms, kept);
                    self.obs
                        .stripe(&self.obs.e2e_hist)
                        .record_ms_traced(optimize_ms, kept);
                    self.obs
                        .hotset
                        .record_probe_traced(fp.0, true, optimize_ms, kept);
                }
                let trace = want_trace.then(|| SearchTrace {
                    query_id: query.id.clone(),
                    fingerprint: fp.0,
                    cache_hit: true,
                    cache_epoch: search_epoch,
                    model_generation: chosen_by,
                    // The slot read happens only on the traced path; the
                    // plain hit path still touches nothing but its shard.
                    model_term: self.model.term(),
                    batches: 0,
                    expansions: 0,
                    scored: 0,
                    search_wall_ms: 0.0,
                    total_wall_ms: optimize_ms,
                    hurried: false,
                    seed_outcome: SeedOutcome::NoSeed,
                    session_reused: false,
                    predicted_ms: None,
                    trace_id: kept.map(|t| t.0),
                });
                return OptimizeOutcome {
                    query_id: query.id.clone(),
                    fingerprint: fp,
                    // Clone the tree *outside* the shard lock (`get`
                    // returns an Arc) to keep cache critical sections O(1).
                    plan: (*plan).clone(),
                    cache_hit: true,
                    // The generation stamped at insert — not the slot's
                    // current one, which may already have moved past the
                    // weights that chose this plan (probe racing a
                    // publish whose epoch bump hasn't landed yet).
                    model_generation: chosen_by,
                    optimize_ms,
                    predicted_ms: None,
                    search: None,
                    trace,
                };
            }
        }
        // Miss path only: the slot load (RwLock read + Arc clone) stays off
        // the hit path, which touches nothing but its cache shard. Loading
        // *after* the epoch read preserves the publish consistency
        // argument: a plan chosen by a newer net than the epoch implies is
        // either rejected at insert (epoch moved) or flushed by the bump.
        let load_span = root.child("model_load");
        let (net, model_generation) = self.model.load();
        load_span.end();
        let budget =
            SearchBudget::expansions(self.cfg.search_base_expansions + 3 * query.num_relations())
                .with_wavefront(self.cfg.wavefront);
        let mut seed_span = root.child("seed_lookup");
        let seed = if self.cfg.use_cache && self.cfg.use_seeds {
            self.cache.seed(fp)
        } else {
            None
        };
        seed_span.attr("seeded", if seed.is_some() { "true" } else { "false" });
        seed_span.end();
        let session_reused = self.scratch.available() > 0;
        let mut search_span = root.child("search");
        let scratch = self.scratch.checkout();
        let (plan, stats, scratch) = best_first_search_seeded_with_scratch(
            &net,
            &self.featurizer,
            &self.db,
            query,
            budget,
            None,
            seed.as_deref(),
            scratch,
        );
        self.scratch.give_back(scratch);
        // The seed challenge resolves with the search: the seed survived
        // iff the search's best plan *is* the seed.
        let seed_outcome = match &seed {
            None => SeedOutcome::NoSeed,
            Some(s) if plan == **s => SeedOutcome::Retained,
            Some(_) => SeedOutcome::Beaten,
        };
        if search_span.is_recording() {
            search_span.attr("expansions", format!("{}", stats.expansions));
            search_span.attr("seed_outcome", seed_outcome.label());
        }
        search_span.end();
        if self.cfg.use_cache {
            let insert_span = root.child("cache_insert");
            self.cache
                .insert_from_generation(fp, plan.clone(), search_epoch, model_generation);
            insert_span.end();
        }
        let optimize_ms = start.elapsed().as_secs_f64() * 1e3;
        // Root ends before recording (see the hit path).
        let kept = root.end();
        if self.obs.enabled {
            self.obs.requests.inc();
            self.obs
                .stripe(&self.obs.search_hist)
                .record_ms_traced(stats.wall_ms, kept);
            self.obs
                .stripe(&self.obs.e2e_hist)
                .record_ms_traced(optimize_ms, kept);
            self.obs
                .hotset
                .record_probe_traced(fp.0, false, optimize_ms, kept);
        }
        let predicted_ms = net.to_cost(stats.best_score);
        let trace = want_trace.then(|| SearchTrace {
            query_id: query.id.clone(),
            fingerprint: fp.0,
            cache_hit: false,
            cache_epoch: search_epoch,
            model_generation,
            model_term: self.model.term(),
            batches: stats.batches,
            expansions: stats.expansions,
            scored: stats.scored,
            search_wall_ms: stats.wall_ms,
            total_wall_ms: optimize_ms,
            hurried: stats.hurried,
            seed_outcome,
            session_reused,
            predicted_ms: Some(predicted_ms),
            trace_id: kept.map(|t| t.0),
        });
        OptimizeOutcome {
            query_id: query.id.clone(),
            fingerprint: fp,
            plan,
            cache_hit: false,
            model_generation,
            optimize_ms,
            predicted_ms: Some(predicted_ms),
            search: Some(stats),
            trace,
        }
    }
}

/// The concurrent multi-query optimization service.
pub struct OptimizerService {
    shared: Arc<Shared>,
    pool: WorkerPool,
    /// The optional background telemetry sampler (one per service),
    /// started on demand; dropped (and therefore drained + joined) with
    /// the service.
    telemetry: Mutex<Option<Arc<TelemetrySampler>>>,
}

impl OptimizerService {
    /// Builds a service over an initial frozen network (generation 0).
    /// The featurizer must not have the aux-cardinality channel enabled
    /// (serving passes no aux provider).
    ///
    /// # Panics
    /// Panics if `featurizer.aux_card_channel` is set.
    pub fn new(
        db: Arc<Database>,
        featurizer: Arc<Featurizer>,
        net: Arc<ValueNet>,
        cfg: ServeConfig,
    ) -> Self {
        assert!(
            !featurizer.aux_card_channel,
            "serving does not support the aux cardinality channel"
        );
        let pool = WorkerPool::new(cfg.workers);
        let obs = ServeObs::new(cfg.workers, cfg.obs, &cfg);
        let cache = PlanCache::with_capacity(cfg.cache_shards, cfg.cache_capacity_per_shard);
        // Cache counters registered regardless of `cfg.obs` — binding
        // shares the live atomics the cache updates anyway, so exposure
        // is free and the registry's shape never depends on the flag.
        cache.bind_metrics(&obs.registry);
        OptimizerService {
            shared: Arc::new(Shared {
                db,
                featurizer,
                model: ModelSlot::new(net),
                cache,
                scratch: ScratchPool::new(),
                feedback: OnceLock::new(),
                obs,
                cfg,
            }),
            pool,
            telemetry: Mutex::new(None),
        }
    }

    /// Starts the background telemetry sampler over this service's
    /// registry (source label `serve`), or returns the one already
    /// running. Declared SLOs and extra watched registries go through
    /// the returned handle.
    pub fn start_telemetry(&self, cfg: SamplerConfig) -> Arc<TelemetrySampler> {
        let mut slot = self
            .telemetry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(sampler) = slot.as_ref() {
            return Arc::clone(sampler);
        }
        let sampler = Arc::new(TelemetrySampler::spawn(cfg));
        sampler.watch("serve", Arc::clone(&self.shared.obs.registry));
        *slot = Some(Arc::clone(&sampler));
        sampler
    }

    /// The running telemetry sampler, if [`Self::start_telemetry`] was
    /// called.
    pub fn telemetry(&self) -> Option<Arc<TelemetrySampler>> {
        self.telemetry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
            .map(Arc::clone)
    }

    /// Stops and detaches the telemetry sampler (final drain sample
    /// included). A no-op when none is running.
    pub fn stop_telemetry(&self) {
        if let Some(sampler) = self
            .telemetry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
        {
            sampler.stop();
        }
    }

    /// Worker-thread count.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The database the service optimizes for.
    pub fn db(&self) -> &Arc<Database> {
        &self.shared.db
    }

    /// The featurizer shared by every search.
    pub fn featurizer(&self) -> &Arc<Featurizer> {
        &self.shared.featurizer
    }

    /// Optimizes one query synchronously on the calling thread (the pool
    /// stays free for concurrent streams).
    pub fn optimize(&self, query: &Query) -> OptimizeOutcome {
        self.shared.optimize_one(query, false)
    }

    /// Optimizes one query with per-request options — the opt-in door to
    /// per-query [`SearchTrace`]s (see [`OptimizeRequest::traced`]).
    pub fn optimize_request(&self, request: &OptimizeRequest) -> OptimizeOutcome {
        self.shared.optimize_one(&request.query, request.trace)
    }

    /// Optimizes a stream of queries across the worker pool, blocking
    /// until all are done. Results are returned in submission order;
    /// *execution* order is whatever the pool schedules.
    pub fn optimize_stream(&self, queries: &[Query]) -> Vec<OptimizeOutcome> {
        let (tx, rx) = channel::<(usize, OptimizeOutcome)>();
        for (i, q) in queries.iter().enumerate() {
            let shared = Arc::clone(&self.shared);
            let q = q.clone();
            let tx = tx.clone();
            self.pool.execute(move || {
                let outcome = shared.optimize_one(&q, false);
                // The receiver outlives all senders unless the caller
                // panicked; nothing useful to do with the error then.
                let _ = tx.send((i, outcome));
            });
        }
        drop(tx);
        let mut results: Vec<(usize, OptimizeOutcome)> = rx.iter().collect();
        results.sort_by_key(|(i, _)| *i);
        // A worker that panicked drops its sender without reporting; a
        // truncated result vector must fail loudly, not silently misalign
        // against the submission order.
        assert_eq!(
            results.len(),
            queries.len(),
            "worker(s) died before reporting: {} of {} outcomes received",
            results.len(),
            queries.len()
        );
        results.into_iter().map(|(_, o)| o).collect()
    }

    /// The currently served model.
    pub fn model(&self) -> Arc<ValueNet> {
        self.shared.model.load().0
    }

    /// The current model generation (0 = the construction-time network).
    pub fn model_generation(&self) -> u64 {
        self.shared.model.generation()
    }

    /// Publishes a refined model: swaps it into the slot (in-flight
    /// searches finish on the network they started with), then begins a
    /// refinement epoch — flushing the cache with its entries demoted to
    /// warm-start seeds. Returns the new model generation.
    ///
    /// Ordering matters: the model swap happens *before* the epoch bump,
    /// so a plan inserted under the new epoch was necessarily computed by
    /// the new network; an old-network plan finishing late carries a
    /// pre-bump epoch stamp and is rejected.
    pub fn publish_model(&self, net: Arc<ValueNet>) -> u64 {
        let generation = self.shared.model.publish(net);
        let epoch = self.shared.cache.advance_epoch();
        self.shared.obs.generation_gauge.set(generation);
        self.shared.obs.epoch_gauge.set(epoch);
        generation
    }

    /// Adopts an externally trained model *as* `generation` minted under
    /// leadership `term` — the cluster swap hook, where generations (and
    /// the term labeling which leader's trainer produced them, see
    /// [`Self::model_term`]) come from the shared checkpoint store rather
    /// than a local counter: a follower's manifest sync, a restarted
    /// node's warm recovery, and the leader's own generation-pinned
    /// publish all go through this path. Same swap-then-bump ordering and
    /// seed-demotion semantics as [`Self::publish_model`]. Returns
    /// `false` (and does nothing, not even the epoch bump) when
    /// `generation` does not advance the slot, so re-delivered or stale
    /// checkpoints are no-ops — advancement is decided by the generation
    /// alone, never the term.
    pub fn publish_model_from(&self, net: Arc<ValueNet>, generation: u64, term: u64) -> bool {
        if !self.shared.model.publish_at(net, generation, term) {
            return false;
        }
        let epoch = self.shared.cache.advance_epoch();
        self.shared.obs.generation_gauge.set(generation);
        self.shared.obs.epoch_gauge.set(epoch);
        true
    }

    /// The leadership term that minted the served generation (0 when the
    /// model was published outside any lease protocol) — provenance for
    /// cluster diagnostics; see [`Self::publish_model_from`].
    pub fn model_term(&self) -> u64 {
        self.shared.model.term()
    }

    /// Signals that the value network was refined in place elsewhere (no
    /// slot swap): bumps the cache epoch, demoting every cached plan to a
    /// warm-start seed, so all subsequent queries re-search. Returns the
    /// new epoch. ([`Self::publish_model`] calls this path implicitly.)
    pub fn begin_refinement_epoch(&self) -> u64 {
        self.shared.cache.advance_epoch()
    }

    /// Attaches the execution-feedback sink (once per service). Returns
    /// `false` when a sink was already attached.
    pub fn set_feedback(&self, sink: Arc<dyn ExecutionFeedback>) -> bool {
        self.shared.feedback.set(sink).is_ok()
    }

    /// Reports the observed execution latency of a plan this service
    /// chose; forwarded to the attached [`ExecutionFeedback`] sink (a
    /// no-op when none is attached). Callers holding the
    /// [`OptimizeOutcome`] should prefer
    /// [`Self::report_execution_with_fingerprint`] with
    /// `outcome.fingerprint` — this convenience wrapper re-derives it.
    pub fn report_execution(&self, query: &Query, plan: &PlanNode, latency_ms: f64) {
        self.report_execution_with_fingerprint(fingerprint(query), query, plan, latency_ms);
    }

    /// [`Self::report_execution`] with the fingerprint already in hand
    /// (every [`OptimizeOutcome`] carries it), skipping the canonical
    /// re-walk of the query on the feedback path.
    pub fn report_execution_with_fingerprint(
        &self,
        fp: QueryFingerprint,
        query: &Query,
        plan: &PlanNode,
        latency_ms: f64,
    ) {
        if self.shared.obs.enabled {
            self.shared.obs.hotset.record_execution(fp.0, 0.0);
        }
        if let Some(sink) = self.shared.feedback.get() {
            sink.record(fp, query, plan, latency_ms, None);
        }
    }

    /// Reports the observed execution latency of an [`OptimizeOutcome`]
    /// this service produced — the preferred feedback path: it reuses the
    /// outcome's fingerprint and forwards the optimizer's own latency
    /// prediction, which replay retention turns into a regret priority.
    pub fn report_outcome(&self, query: &Query, outcome: &OptimizeOutcome, latency_ms: f64) {
        if self.shared.obs.enabled {
            // Regret proxy: how much slower the observed execution ran
            // than the optimizer's own prediction (0 when it met it, or
            // when no prediction exists — cache hits).
            let regret = outcome
                .predicted_ms
                .map_or(0.0, |p| (latency_ms - p).max(0.0));
            self.shared
                .obs
                .hotset
                .record_execution(outcome.fingerprint.0, regret);
        }
        if let Some(sink) = self.shared.feedback.get() {
            sink.record(
                outcome.fingerprint,
                query,
                &outcome.plan,
                latency_ms,
                outcome.predicted_ms,
            );
        }
    }

    /// The plan cache (stats, epoch, seeds, poison checks).
    pub fn cache(&self) -> &PlanCache {
        &self.shared.cache
    }

    /// Convenience passthrough of [`PlanCache::stats`].
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// The service's metrics registry: cache counters, request totals,
    /// per-worker-striped latency histograms, model gauges. External
    /// subsystems (trainer, cluster node) register their instruments here
    /// so one snapshot covers the whole node.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.shared.obs.registry
    }

    /// A point-in-time snapshot of every registered metric.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.obs.registry.snapshot()
    }

    /// Merged (across worker stripes) histogram of search wall time on
    /// cache misses, milliseconds.
    pub fn search_latency(&self) -> HistogramSnapshot {
        self.shared.obs.merged(&self.shared.obs.search_hist)
    }

    /// Merged histogram of cache-hit serve latency, milliseconds.
    pub fn hit_latency(&self) -> HistogramSnapshot {
        self.shared.obs.merged(&self.shared.obs.hit_hist)
    }

    /// Merged histogram of end-to-end optimize latency (hits and misses),
    /// milliseconds.
    pub fn optimize_latency(&self) -> HistogramSnapshot {
        self.shared.obs.merged(&self.shared.obs.e2e_hist)
    }

    /// The `n` hottest query fingerprints by probe count (hit counts,
    /// latency EWMA, execution regret).
    pub fn hot_fingerprints(&self, n: usize) -> Vec<FingerprintStat> {
        self.shared.obs.hotset.top(n)
    }

    /// The bounded ring of committed query traces (empty when
    /// `cfg.tracing` is off). Exemplar trace ids in this service's
    /// histograms and hot set resolve against it.
    pub fn span_ring(&self) -> &Arc<SpanRing> {
        &self.shared.obs.spans
    }

    /// The retained query traces as a JSON `traces` section
    /// (`{spans, recorded, dropped}`).
    pub fn traces_node(&self) -> JsonNode {
        self.shared.obs.spans.to_node()
    }
}
