//! The multi-query optimization service: a frozen [`ValueNet`] shared by a
//! fixed worker pool, fronted by the sharded [`PlanCache`].
//!
//! Per query, a worker: (1) fingerprints the query and probes the cache —
//! a hit returns the previously chosen plan with **zero** neural-network
//! work; (2) on a miss, opens an [`InferenceSession`]-backed wavefront
//! search (`best_first_search_with_scratch`) against the shared network,
//! with scratch buffers recycled through a [`ScratchPool`] so steady-state
//! serving performs no inference-buffer growth; (3) inserts the chosen
//! plan stamped with the epoch its search started under.
//!
//! Search is deterministic (no RNG, stable tie-breaking), so concurrent
//! serving chooses byte-identical plans to a single-threaded run — the
//! concurrency sanity test and `serve-bench` both pin this down.
//!
//! [`InferenceSession`]: neo::InferenceSession
//! [`ValueNet`]: neo::ValueNet
//! [`ScratchPool`]: neo_nn::ScratchPool

use crate::cache::{CacheStats, PlanCache, DEFAULT_SHARDS};
use crate::pool::WorkerPool;
use neo::{best_first_search_with_scratch, Featurizer, SearchBudget, SearchStats, ValueNet};
use neo_nn::ScratchPool;
use neo_query::{fingerprint, PlanNode, Query, QueryFingerprint};
use neo_storage::Database;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Instant;

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads optimizing queries concurrently.
    pub workers: usize,
    /// Plan-cache shard count.
    pub cache_shards: usize,
    /// Enables the plan cache (off = every query searches; used by the
    /// bench's cold-scaling measurement).
    pub use_cache: bool,
    /// Search budget: expansions = `search_base_expansions + 3 * |R(q)|`
    /// (the runner's budget rule, deterministic across runs).
    pub search_base_expansions: usize,
    /// Wavefront width `K` for every search.
    pub wavefront: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cache_shards: DEFAULT_SHARDS,
            use_cache: true,
            search_base_expansions: 12,
            wavefront: neo::DEFAULT_WAVEFRONT,
        }
    }
}

/// The result of optimizing one query through the service.
#[derive(Clone, Debug)]
pub struct OptimizeOutcome {
    /// The query's id (as submitted).
    pub query_id: String,
    /// Canonical structural fingerprint (the cache key).
    pub fingerprint: QueryFingerprint,
    /// The chosen physical plan.
    pub plan: PlanNode,
    /// True when the plan came from the cache (no NN work performed).
    pub cache_hit: bool,
    /// Wall-clock optimize latency, milliseconds (cache probe included).
    pub optimize_ms: f64,
    /// Search statistics (`None` on a cache hit).
    pub search: Option<SearchStats>,
}

/// State shared between the caller and every worker.
struct Shared {
    db: Arc<Database>,
    featurizer: Arc<Featurizer>,
    net: Arc<ValueNet>,
    cache: PlanCache,
    scratch: ScratchPool,
    cfg: ServeConfig,
}

impl Shared {
    /// The full optimize path for one query, run on whichever thread calls
    /// it (a pool worker for streams, the caller for [`OptimizerService::
    /// optimize`]).
    fn optimize_one(&self, query: &Query) -> OptimizeOutcome {
        let start = Instant::now();
        let fp = fingerprint(query);
        let search_epoch = self.cache.epoch();
        if self.cfg.use_cache {
            if let Some(plan) = self.cache.get(fp) {
                return OptimizeOutcome {
                    query_id: query.id.clone(),
                    fingerprint: fp,
                    // Clone the tree *outside* the shard lock (`get`
                    // returns an Arc) to keep cache critical sections O(1).
                    plan: (*plan).clone(),
                    cache_hit: true,
                    optimize_ms: start.elapsed().as_secs_f64() * 1e3,
                    search: None,
                };
            }
        }
        let budget =
            SearchBudget::expansions(self.cfg.search_base_expansions + 3 * query.num_relations())
                .with_wavefront(self.cfg.wavefront);
        let scratch = self.scratch.checkout();
        let (plan, stats, scratch) = best_first_search_with_scratch(
            &self.net,
            &self.featurizer,
            &self.db,
            query,
            budget,
            None,
            scratch,
        );
        self.scratch.give_back(scratch);
        if self.cfg.use_cache {
            self.cache.insert(fp, plan.clone(), search_epoch);
        }
        OptimizeOutcome {
            query_id: query.id.clone(),
            fingerprint: fp,
            plan,
            cache_hit: false,
            optimize_ms: start.elapsed().as_secs_f64() * 1e3,
            search: Some(stats),
        }
    }
}

/// The concurrent multi-query optimization service.
pub struct OptimizerService {
    shared: Arc<Shared>,
    pool: WorkerPool,
}

impl OptimizerService {
    /// Builds a service over a frozen network. The featurizer must not
    /// have the aux-cardinality channel enabled (serving passes no aux
    /// provider).
    ///
    /// # Panics
    /// Panics if `featurizer.aux_card_channel` is set.
    pub fn new(
        db: Arc<Database>,
        featurizer: Arc<Featurizer>,
        net: Arc<ValueNet>,
        cfg: ServeConfig,
    ) -> Self {
        assert!(
            !featurizer.aux_card_channel,
            "serving does not support the aux cardinality channel"
        );
        let pool = WorkerPool::new(cfg.workers);
        OptimizerService {
            shared: Arc::new(Shared {
                db,
                featurizer,
                net,
                cache: PlanCache::new(cfg.cache_shards),
                scratch: ScratchPool::new(),
                cfg,
            }),
            pool,
        }
    }

    /// Worker-thread count.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Optimizes one query synchronously on the calling thread (the pool
    /// stays free for concurrent streams).
    pub fn optimize(&self, query: &Query) -> OptimizeOutcome {
        self.shared.optimize_one(query)
    }

    /// Optimizes a stream of queries across the worker pool, blocking
    /// until all are done. Results are returned in submission order;
    /// *execution* order is whatever the pool schedules.
    pub fn optimize_stream(&self, queries: &[Query]) -> Vec<OptimizeOutcome> {
        let (tx, rx) = channel::<(usize, OptimizeOutcome)>();
        for (i, q) in queries.iter().enumerate() {
            let shared = Arc::clone(&self.shared);
            let q = q.clone();
            let tx = tx.clone();
            self.pool.execute(move || {
                let outcome = shared.optimize_one(&q);
                // The receiver outlives all senders unless the caller
                // panicked; nothing useful to do with the error then.
                let _ = tx.send((i, outcome));
            });
        }
        drop(tx);
        let mut results: Vec<(usize, OptimizeOutcome)> = rx.iter().collect();
        results.sort_by_key(|(i, _)| *i);
        // A worker that panicked drops its sender without reporting; a
        // truncated result vector must fail loudly, not silently misalign
        // against the submission order.
        assert_eq!(
            results.len(),
            queries.len(),
            "worker(s) died before reporting: {} of {} outcomes received",
            results.len(),
            queries.len()
        );
        results.into_iter().map(|(_, o)| o).collect()
    }

    /// Signals that the value network was refined (retrained): bumps the
    /// cache epoch and flushes every shard, so all subsequent queries
    /// re-search under the new weights. Returns the new epoch.
    pub fn begin_refinement_epoch(&self) -> u64 {
        self.shared.cache.advance_epoch()
    }

    /// The plan cache (stats, epoch, poison checks).
    pub fn cache(&self) -> &PlanCache {
        &self.shared.cache
    }

    /// Convenience passthrough of [`PlanCache::stats`].
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }
}
