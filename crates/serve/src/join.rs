//! Panic-propagating thread joins that keep the thread's name.
//!
//! `handle.join().unwrap()` on a panicked thread produces a nested
//! `Any { .. }` unwrap panic that says nothing about *which* thread died
//! or why. Every long-lived thread in this workspace is spawned with a
//! name (`neo-serve-worker-3`, `neo-learn-trainer`, `neo-cluster-poll-a`);
//! [`join_named`] surfaces that name plus the original panic message, so a
//! worker panic reads as a diagnosable error instead of a shrug.

use std::thread::JoinHandle;

/// Extracts a human-readable message from a panic payload (the two types
/// `panic!` actually produces, with a fallback for exotic payloads).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Joins a thread, propagating a panic as a new panic that names the
/// thread and carries the original message.
///
/// # Panics
/// Panics (with context) when the joined thread panicked.
pub fn join_named<T>(handle: JoinHandle<T>) -> T {
    let name = handle.thread().name().unwrap_or("<unnamed>").to_string();
    match handle.join() {
        Ok(v) => v,
        Err(payload) => panic!("thread '{name}' panicked: {}", panic_message(&*payload)),
    }
}

/// [`join_named`] for shutdown paths that may themselves run during an
/// unwind (e.g. `Drop` impls): when the current thread is already
/// panicking, the join error is swallowed instead of aborting the process
/// with a double panic; otherwise it propagates with the thread's name.
pub fn join_named_or_ignore_during_unwind<T>(handle: JoinHandle<T>) -> Option<T> {
    if std::thread::panicking() {
        handle.join().ok()
    } else {
        Some(join_named(handle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_named_returns_value() {
        let h = std::thread::Builder::new()
            .name("ok-thread".into())
            .spawn(|| 41 + 1)
            .unwrap();
        assert_eq!(join_named(h), 42);
    }

    #[test]
    fn join_named_propagates_panic_with_thread_name() {
        let h = std::thread::Builder::new()
            .name("doomed-thread".into())
            .spawn(|| panic!("original message"))
            .unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| join_named(h)))
            .expect_err("join of a panicked thread must panic");
        let msg = panic_message(&*err);
        assert!(
            msg.contains("doomed-thread") && msg.contains("original message"),
            "uninformative join panic: {msg}"
        );
    }

    #[test]
    fn unnamed_threads_still_get_a_diagnosable_message() {
        let h = std::thread::spawn(|| panic!("boom {}", 7));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| join_named(h)))
            .expect_err("must propagate");
        let msg = panic_message(&*err);
        assert!(msg.contains("<unnamed>") && msg.contains("boom 7"), "{msg}");
    }
}
