//! The sharded, epoch-invalidated plan cache.
//!
//! Keys are canonical structural [`QueryFingerprint`]s
//! ([`neo_query::fingerprint`]), so a repeated or isomorphic query (same
//! tables, join graph, predicates — regardless of list order or id labels)
//! returns its previously chosen plan without touching the value network.
//! Parameter-perturbed variants fingerprint differently by design and
//! always miss: a changed constant changes the optimal plan.
//!
//! **Sharding.** The map is split into `S` independently locked shards
//! selected by a multiplicative hash of the fingerprint, so concurrent
//! workers rarely contend on the same mutex; each lock is held only for
//! the probe/insert itself, never during search.
//!
//! **Epoch invalidation.** The cache carries a monotonically increasing
//! epoch. Retraining the value network (the runner's refinement loop)
//! calls [`PlanCache::advance_epoch`], which bumps the epoch and flushes
//! every shard — plans chosen under the old weights are stale, not merely
//! cold. Searches *in flight across* an epoch bump are handled by stamping
//! each insert with the epoch observed when its search started: a stale
//! insert is rejected at the door, and a stale entry that raced its way in
//! is discarded (and evicted) on probe.

use neo_query::{PlanNode, QueryFingerprint};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default shard count: comfortably above any worker count this crate
/// targets, tiny footprint when idle.
pub const DEFAULT_SHARDS: usize = 16;

/// A cached plan stamped with the epoch of the weights that chose it.
/// The plan sits behind an `Arc` so a hit hands out a pointer bump under
/// the shard lock instead of a deep tree clone.
#[derive(Clone, Debug)]
struct Entry {
    plan: Arc<PlanNode>,
    epoch: u64,
}

/// Monotonic counters describing cache traffic since construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes that returned a current-epoch plan.
    pub hits: u64,
    /// Probes that found nothing (or only a stale entry).
    pub misses: u64,
    /// Accepted insertions.
    pub insertions: u64,
    /// Insertions rejected for carrying a stale epoch.
    pub stale_rejections: u64,
    /// `advance_epoch` calls.
    pub invalidations: u64,
}

impl CacheStats {
    /// Hits over probes (0.0 when no probes happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The sharded plan cache. All methods take `&self`; the cache is meant to
/// be shared (behind an `Arc`) by every worker of an optimizer service.
pub struct PlanCache {
    shards: Vec<Mutex<HashMap<QueryFingerprint, Entry>>>,
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    stale_rejections: AtomicU64,
    invalidations: AtomicU64,
}

impl PlanCache {
    /// Creates a cache with `shards` independently locked shards (≥ 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        PlanCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            stale_rejections: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// The current epoch. Capture this *before* starting a search and pass
    /// it to [`Self::insert`] so plans computed under superseded weights
    /// cannot pollute the fresh cache.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, fp: QueryFingerprint) -> &Mutex<HashMap<QueryFingerprint, Entry>> {
        &self.shards[fp.shard(self.shards.len())]
    }

    /// Probes the cache. A current-epoch entry is a hit; a stale entry is
    /// evicted and counted as a miss. The returned `Arc` keeps the hit
    /// path O(1) under the shard lock (no plan-tree clone).
    pub fn get(&self, fp: QueryFingerprint) -> Option<Arc<PlanNode>> {
        let epoch = self.epoch();
        let mut shard = self.shard(fp).lock().expect("cache shard poisoned");
        match shard.get(&fp) {
            Some(e) if e.epoch == epoch => {
                let plan = Arc::clone(&e.plan);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(plan)
            }
            Some(_) => {
                // Raced in from a search that straddled an epoch bump.
                shard.remove(&fp);
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a plan computed by a search that *started* at
    /// `search_epoch`. Rejected when the epoch has moved on since — the
    /// plan was chosen by superseded weights.
    pub fn insert(&self, fp: QueryFingerprint, plan: PlanNode, search_epoch: u64) {
        if self.epoch() != search_epoch {
            self.stale_rejections.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let entry = Entry {
            plan: Arc::new(plan),
            epoch: search_epoch,
        };
        let mut shard = self.shard(fp).lock().expect("cache shard poisoned");
        shard.insert(fp, entry);
        drop(shard);
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Starts a new epoch (call after every value-network refinement):
    /// bumps the epoch counter, then flushes every shard. Returns the new
    /// epoch.
    pub fn advance_epoch(&self) -> u64 {
        let new = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").clear();
        }
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        new
    }

    /// Total entries across shards (stale entries included until evicted).
    pub fn len(&self) -> usize {
        self.shard_sizes().iter().sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entry count per shard (diagnostics; the serve bench reports the
    /// spread to show the fingerprint hash distributes).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .collect()
    }

    /// True when any shard mutex is poisoned (a worker panicked while
    /// holding it) — the concurrency sanity test asserts this stays false.
    pub fn any_poisoned(&self) -> bool {
        self.shards.iter().any(|s| s.is_poisoned())
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            stale_rejections: self.stale_rejections.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_query::{PlanNode, ScanType};

    fn fp(x: u128) -> QueryFingerprint {
        QueryFingerprint(x)
    }

    fn plan(rel: usize) -> PlanNode {
        PlanNode::Scan {
            rel,
            scan: ScanType::Table,
        }
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let c = PlanCache::new(4);
        assert_eq!(c.get(fp(1)), None);
        c.insert(fp(1), plan(0), c.epoch());
        assert_eq!(c.get(fp(1)).as_deref(), Some(&plan(0)));
        assert_eq!(c.get(fp(2)), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 2, 1));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn advance_epoch_flushes_every_shard() {
        let c = PlanCache::new(8);
        // Spread entries over all shards.
        for i in 0..256u128 {
            c.insert(fp(i * 0x9E37_79B9_7F4A_7C15), plan(0), 0);
        }
        assert!(c.shard_sizes().iter().all(|&n| n > 0), "all shards filled");
        let e = c.advance_epoch();
        assert_eq!(e, 1);
        assert!(c.is_empty(), "epoch bump must flush all shards");
        assert!(c.shard_sizes().iter().all(|&n| n == 0));
        assert_eq!(c.get(fp(0x9E37_79B9_7F4A_7C15)), None);
    }

    #[test]
    fn stale_insert_rejected_and_stale_entry_evicted() {
        let c = PlanCache::new(2);
        let old_epoch = c.epoch();
        c.advance_epoch();
        // A search that started before the bump finishes now: rejected.
        c.insert(fp(7), plan(1), old_epoch);
        assert_eq!(c.get(fp(7)), None);
        assert_eq!(c.stats().stale_rejections, 1);
        assert_eq!(c.stats().insertions, 0);
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let c = std::sync::Arc::new(PlanCache::new(4));
        let handles: Vec<_> = (0..4u128)
            .map(|t| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..64 {
                        let key = fp(t * 1000 + i);
                        c.insert(key, plan(t as usize), c.epoch());
                        assert!(c.get(key).is_some());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(!c.any_poisoned());
        assert_eq!(c.len(), 4 * 64);
    }
}
