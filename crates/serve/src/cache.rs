//! The sharded, capacity-bounded, epoch-invalidated plan cache.
//!
//! Keys are canonical structural [`QueryFingerprint`]s
//! ([`neo_query::fingerprint`]), so a repeated or isomorphic query (same
//! tables, join graph, predicates — regardless of list order or id labels)
//! returns its previously chosen plan without touching the value network.
//! Parameter-perturbed variants fingerprint differently by design and
//! always miss: a changed constant changes the optimal plan.
//!
//! **Sharding.** The map is split into `S` independently locked shards
//! selected by a multiplicative hash of the fingerprint, so concurrent
//! workers rarely contend on the same mutex; each lock is held only for
//! the probe/insert itself, never during search.
//!
//! **Capacity + CLOCK eviction.** Each shard holds at most
//! `capacity_per_shard` entries in a slot ring with second-chance (CLOCK)
//! replacement: a probe sets the slot's reference bit; when a full shard
//! needs room, the clock hand sweeps the ring, clearing reference bits and
//! evicting the first unreferenced slot. Recently re-used plans survive;
//! one-off queries are recycled first. Evictions are counted in
//! [`CacheStats::evictions`].
//!
//! **Epoch invalidation + seed demotion.** The cache carries a
//! monotonically increasing epoch. Publishing a refined value network
//! (see `OptimizerService::publish_model`) calls
//! [`PlanCache::advance_epoch`], which bumps the epoch and flushes every
//! shard — but the flushed plans are **demoted to search seeds**, not
//! discarded: a subsequent miss for the same fingerprint retrieves the
//! previous best plan via [`PlanCache::seed`] and hands it to the
//! seeded search as the incumbent, so post-swap searches start from the
//! last generation's answer instead of from scratch (the paper's
//! experience carries across retraining; ROADMAP's "cross-epoch plan
//! reuse as search seeds"). Searches *in flight across* an epoch bump are
//! handled by stamping each insert with the epoch observed when its search
//! started: a stale insert is rejected at the door, and a stale entry that
//! raced its way in is discarded (and evicted) on probe.

use neo_obs::{Counter, MetricsRegistry};
use neo_query::{PlanNode, QueryFingerprint};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default shard count: comfortably above any worker count this crate
/// targets, tiny footprint when idle.
pub const DEFAULT_SHARDS: usize = 16;

/// Default per-shard entry capacity. With [`DEFAULT_SHARDS`] shards this
/// bounds the cache at 16k plans — plenty for a working set of distinct
/// query templates, small enough that a pathological stream of one-off
/// queries cannot grow memory without bound.
pub const DEFAULT_SHARD_CAPACITY: usize = 1024;

/// A cached plan stamped with the epoch of the weights that chose it.
/// The plan sits behind an `Arc` so a hit hands out a pointer bump under
/// the shard lock instead of a deep tree clone.
#[derive(Clone, Debug)]
struct Entry {
    plan: Arc<PlanNode>,
    epoch: u64,
    /// The model generation whose weights chose this plan — returned with
    /// hits so an outcome is always labeled with the generation that
    /// actually produced it, even when a probe races a model publish.
    generation: u64,
}

/// One CLOCK ring slot: an occupied slot carries its key (for reverse
/// lookup on eviction) and a reference bit granting one extra sweep of
/// life per probe.
struct Slot {
    key: Option<QueryFingerprint>,
    entry: Option<Entry>,
    referenced: bool,
}

/// A demoted plan serving as a warm-start seed, stamped with the epoch of
/// the entry it was demoted from (so the next bump can prune seeds that
/// did not come from the epoch just finishing).
struct SeedEntry {
    plan: Arc<PlanNode>,
    epoch: u64,
}

/// One independently locked shard: index + CLOCK ring + demoted seeds.
struct Shard {
    index: HashMap<QueryFingerprint, usize>,
    slots: Vec<Slot>,
    /// Slot indices freed by stale-entry eviction, reusable before the
    /// ring grows or the clock hand sweeps.
    vacant: Vec<usize>,
    hand: usize,
    /// The last finished epoch's demoted plans: fingerprint → previous
    /// best plan, served as warm-start search seeds. Entries arrive from
    /// two paths — the `advance_epoch` sweep and probes that race it —
    /// and each bump prunes seeds not stamped with the epoch that just
    /// finished (bounded by construction: at most `capacity` entries
    /// existed per epoch).
    seeds: HashMap<QueryFingerprint, SeedEntry>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            index: HashMap::new(),
            slots: Vec::new(),
            vacant: Vec::new(),
            hand: 0,
            seeds: HashMap::new(),
        }
    }
}

/// Monotonic counters describing cache traffic since construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes that returned a current-epoch plan.
    pub hits: u64,
    /// Probes that found nothing (or only a stale entry).
    pub misses: u64,
    /// Accepted insertions.
    pub insertions: u64,
    /// Insertions rejected for carrying a stale epoch.
    pub stale_rejections: u64,
    /// `advance_epoch` calls.
    pub invalidations: u64,
    /// Entries displaced by CLOCK replacement (capacity pressure only;
    /// epoch flushes demote rather than evict and are not counted here).
    pub evictions: u64,
    /// Seeds handed out to warm-start post-epoch searches.
    pub seed_hits: u64,
}

impl CacheStats {
    /// Hits over probes (0.0 when no probes happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The sharded plan cache. All methods take `&self`; the cache is meant to
/// be shared (behind an `Arc`) by every worker of an optimizer service.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    epoch: AtomicU64,
    // Traffic counters live on shareable neo-obs handles so a metrics
    // registry can expose them without a second set of atomics; the
    // legacy `stats()` accessor reads the same state.
    hits: Counter,
    misses: Counter,
    insertions: Counter,
    stale_rejections: Counter,
    invalidations: Counter,
    evictions: Counter,
    seed_hits: Counter,
}

impl PlanCache {
    /// Creates a cache with `shards` independently locked shards (≥ 1) at
    /// the default per-shard capacity.
    pub fn new(shards: usize) -> Self {
        Self::with_capacity(shards, DEFAULT_SHARD_CAPACITY)
    }

    /// Creates a cache with `shards` shards of at most `capacity_per_shard`
    /// entries each (both clamped to ≥ 1).
    pub fn with_capacity(shards: usize, capacity_per_shard: usize) -> Self {
        let shards = shards.max(1);
        PlanCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            capacity_per_shard: capacity_per_shard.max(1),
            epoch: AtomicU64::new(0),
            hits: Counter::new(),
            misses: Counter::new(),
            insertions: Counter::new(),
            stale_rejections: Counter::new(),
            invalidations: Counter::new(),
            evictions: Counter::new(),
            seed_hits: Counter::new(),
        }
    }

    /// Registers the cache's traffic counters in `registry` under
    /// `cache_*_total` names. The registry shares the live atomics; no
    /// copying, no extra hot-path work.
    pub fn bind_metrics(&self, registry: &MetricsRegistry) {
        registry.bind_counter("cache_hits_total", &self.hits);
        registry.bind_counter("cache_misses_total", &self.misses);
        registry.bind_counter("cache_insertions_total", &self.insertions);
        registry.bind_counter("cache_stale_rejections_total", &self.stale_rejections);
        registry.bind_counter("cache_invalidations_total", &self.invalidations);
        registry.bind_counter("cache_evictions_total", &self.evictions);
        registry.bind_counter("cache_seed_hits_total", &self.seed_hits);
    }

    /// The current epoch. Capture this *before* starting a search and pass
    /// it to [`Self::insert`] so plans computed under superseded weights
    /// cannot pollute the fresh cache.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Maximum entries per shard.
    pub fn capacity_per_shard(&self) -> usize {
        self.capacity_per_shard
    }

    fn shard(&self, fp: QueryFingerprint) -> &Mutex<Shard> {
        &self.shards[fp.shard(self.shards.len())]
    }

    /// Locks one shard, recovering from poison: shards hold pure cache
    /// data whose critical sections never leave it logically torn (at
    /// worst one entry is mid-replacement, which the next probe self-heals
    /// by evicting), and one panicked worker must not cascade its panic
    /// into every other worker hashing to the same shard. Poisoning is
    /// still *observable* via [`PlanCache::any_poisoned`].
    fn lock_shard(shard: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
        shard
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Probes the cache. A current-epoch entry is a hit (and gets its
    /// CLOCK reference bit set); a stale entry is evicted and counted as a
    /// miss. The returned `Arc` keeps the hit path O(1) under the shard
    /// lock (no plan-tree clone).
    pub fn get(&self, fp: QueryFingerprint) -> Option<Arc<PlanNode>> {
        self.get_with_generation(fp).map(|(plan, _)| plan)
    }

    /// [`Self::get`] also returning the model generation whose weights
    /// chose the cached plan (stamped at insert) — the serving path labels
    /// hit outcomes with it, so the label stays truthful even when a probe
    /// races a model publish.
    pub fn get_with_generation(&self, fp: QueryFingerprint) -> Option<(Arc<PlanNode>, u64)> {
        let epoch = self.epoch();
        let mut shard = Self::lock_shard(self.shard(fp));
        let hit = match shard.index.get(&fp).copied() {
            Some(si) => {
                let slot = &mut shard.slots[si];
                match &slot.entry {
                    Some(e) if e.epoch == epoch => {
                        slot.referenced = true;
                        Some((Arc::clone(&e.plan), e.generation))
                    }
                    _ => {
                        // A stale entry found by a probe that raced
                        // `advance_epoch`'s shard sweep: vacate the slot,
                        // but *demote* the plan to a warm-start seed — the
                        // same fate the sweep would have given it — so the
                        // "demoted, not discarded" invariant holds on
                        // every path out of an epoch. The epoch stamp lets
                        // the (possibly still in-flight) sweep's prune
                        // keep this seed.
                        if let Some(e) = slot.entry.take() {
                            slot.key = None;
                            slot.referenced = false;
                            shard.seeds.insert(
                                fp,
                                SeedEntry {
                                    plan: e.plan,
                                    epoch: e.epoch,
                                },
                            );
                        }
                        shard.index.remove(&fp);
                        shard.vacant.push(si);
                        None
                    }
                }
            }
            None => None,
        };
        drop(shard);
        match hit {
            Some(found) => {
                self.hits.inc();
                Some(found)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Retrieves the warm-start seed demoted from a previous epoch for
    /// this fingerprint, if any. Deliberately non-consuming: concurrent
    /// duplicate searches for the same fingerprint must both see the same
    /// seed, or their results could diverge. [`CacheStats::seed_hits`]
    /// counts every handout (one per seeded search).
    pub fn seed(&self, fp: QueryFingerprint) -> Option<Arc<PlanNode>> {
        let shard = Self::lock_shard(self.shard(fp));
        let seed = shard.seeds.get(&fp).map(|s| Arc::clone(&s.plan));
        drop(shard);
        if seed.is_some() {
            self.seed_hits.inc();
        }
        seed
    }

    /// Total demoted seeds currently held across shards.
    pub fn num_seeds(&self) -> usize {
        self.shards
            .iter()
            .map(|s| Self::lock_shard(s).seeds.len())
            .sum()
    }

    /// Inserts a plan computed by a search that *started* at
    /// `search_epoch`. Rejected when the epoch has moved on since — the
    /// plan was chosen by superseded weights. At capacity, CLOCK
    /// replacement frees a slot (second chance for referenced entries).
    pub fn insert(&self, fp: QueryFingerprint, plan: PlanNode, search_epoch: u64) {
        self.insert_from_generation(fp, plan, search_epoch, 0);
    }

    /// [`Self::insert`] stamped with the model generation that chose the
    /// plan (returned by [`Self::get_with_generation`] on a hit).
    pub fn insert_from_generation(
        &self,
        fp: QueryFingerprint,
        plan: PlanNode,
        search_epoch: u64,
        generation: u64,
    ) {
        if self.epoch() != search_epoch {
            self.stale_rejections.inc();
            return;
        }
        let entry = Entry {
            plan: Arc::new(plan),
            epoch: search_epoch,
            generation,
        };
        let mut evicted = 0u64;
        let mut shard = Self::lock_shard(self.shard(fp));
        if let Some(&si) = shard.index.get(&fp) {
            // Re-insert over the existing slot (a racing duplicate search,
            // or a refresh): replace in place, grant a reference.
            let slot = &mut shard.slots[si];
            slot.entry = Some(entry);
            slot.referenced = true;
        } else {
            let si = if let Some(si) = shard.vacant.pop() {
                si
            } else if shard.slots.len() < self.capacity_per_shard {
                shard.slots.push(Slot {
                    key: None,
                    entry: None,
                    referenced: false,
                });
                shard.slots.len() - 1
            } else {
                // CLOCK sweep: clear reference bits until an unreferenced
                // occupied slot is found. Terminates within two laps.
                loop {
                    let hand = shard.hand;
                    shard.hand = (shard.hand + 1) % shard.slots.len();
                    let slot = &mut shard.slots[hand];
                    match (slot.key, slot.referenced) {
                        (Some(_), true) => slot.referenced = false,
                        (Some(victim), false) => {
                            shard.index.remove(&victim);
                            evicted += 1;
                            break hand;
                        }
                        (None, _) => break hand,
                    }
                }
            };
            let slot = &mut shard.slots[si];
            slot.key = Some(fp);
            slot.entry = Some(entry);
            slot.referenced = false;
            shard.index.insert(fp, si);
        }
        drop(shard);
        self.insertions.inc();
        if evicted > 0 {
            self.evictions.add(evicted);
        }
    }

    /// Starts a new epoch (call after every value-network refinement):
    /// bumps the epoch counter, then flushes every shard, **demoting** the
    /// flushed plans to warm-start seeds for their fingerprints (replacing
    /// the previous epoch's seeds). Returns the new epoch.
    pub fn advance_epoch(&self) -> u64 {
        let new = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        for shard in &self.shards {
            let mut shard = Self::lock_shard(shard);
            // Merge-then-prune rather than wholesale replacement: probes
            // racing this sweep demote stale entries into `seeds`
            // themselves (see `get_with_generation`), and those demotions
            // must survive. The epoch stamp distinguishes "demoted from
            // the epoch just finishing" (kept) from leftovers of earlier
            // epochs (pruned), keeping the map bounded per epoch.
            let mut demoted: Vec<(QueryFingerprint, SeedEntry)> =
                Vec::with_capacity(shard.index.len());
            for slot in &mut shard.slots {
                if let (Some(fp), Some(entry)) = (slot.key.take(), slot.entry.take()) {
                    demoted.push((
                        fp,
                        SeedEntry {
                            plan: entry.plan,
                            epoch: entry.epoch,
                        },
                    ));
                }
                slot.referenced = false;
            }
            shard.index.clear();
            shard.slots.clear();
            shard.vacant.clear();
            shard.hand = 0;
            for (fp, seed) in demoted {
                shard.seeds.insert(fp, seed);
            }
            shard.seeds.retain(|_, s| s.epoch + 1 >= new);
        }
        self.invalidations.inc();
        new
    }

    /// Total entries across shards (stale entries included until evicted).
    pub fn len(&self) -> usize {
        self.shard_sizes().iter().sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entry count per shard (diagnostics; the serve bench reports the
    /// spread to show the fingerprint hash distributes).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| Self::lock_shard(s).index.len())
            .collect()
    }

    /// True when any shard mutex is poisoned (a worker panicked while
    /// holding it) — the concurrency sanity test asserts this stays false.
    pub fn any_poisoned(&self) -> bool {
        self.shards.iter().any(|s| s.is_poisoned())
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            insertions: self.insertions.get(),
            stale_rejections: self.stale_rejections.get(),
            invalidations: self.invalidations.get(),
            evictions: self.evictions.get(),
            seed_hits: self.seed_hits.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_query::{PlanNode, ScanType};

    fn fp(x: u128) -> QueryFingerprint {
        QueryFingerprint(x)
    }

    fn plan(rel: usize) -> PlanNode {
        PlanNode::Scan {
            rel,
            scan: ScanType::Table,
        }
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let c = PlanCache::new(4);
        assert_eq!(c.get(fp(1)), None);
        c.insert(fp(1), plan(0), c.epoch());
        assert_eq!(c.get(fp(1)).as_deref(), Some(&plan(0)));
        assert_eq!(c.get(fp(2)), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 2, 1));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn advance_epoch_flushes_every_shard() {
        let c = PlanCache::new(8);
        // Spread entries over all shards.
        for i in 0..256u128 {
            c.insert(fp(i * 0x9E37_79B9_7F4A_7C15), plan(0), 0);
        }
        assert!(c.shard_sizes().iter().all(|&n| n > 0), "all shards filled");
        let e = c.advance_epoch();
        assert_eq!(e, 1);
        assert!(c.is_empty(), "epoch bump must flush all shards");
        assert!(c.shard_sizes().iter().all(|&n| n == 0));
        assert_eq!(c.get(fp(0x9E37_79B9_7F4A_7C15)), None);
    }

    #[test]
    fn stale_insert_rejected_and_stale_entry_evicted() {
        let c = PlanCache::new(2);
        let old_epoch = c.epoch();
        c.advance_epoch();
        // A search that started before the bump finishes now: rejected.
        c.insert(fp(7), plan(1), old_epoch);
        assert_eq!(c.get(fp(7)), None);
        assert_eq!(c.stats().stale_rejections, 1);
        assert_eq!(c.stats().insertions, 0);
    }

    #[test]
    fn hits_report_the_inserting_generation_not_the_current_one() {
        let c = PlanCache::new(2);
        c.insert_from_generation(fp(1), plan(0), 0, 3);
        // A later probe (even if the model slot has moved on) sees the
        // generation whose weights chose the plan.
        assert_eq!(c.get_with_generation(fp(1)), Some((Arc::new(plan(0)), 3)));
        // The 3-arg insert defaults to generation 0.
        c.insert(fp(2), plan(1), 0);
        assert_eq!(c.get_with_generation(fp(2)).unwrap().1, 0);
    }

    #[test]
    fn epoch_bump_demotes_entries_to_seeds() {
        let c = PlanCache::new(4);
        c.insert(fp(10), plan(3), 0);
        c.insert(fp(20), plan(5), 0);
        assert_eq!(c.num_seeds(), 0);
        c.advance_epoch();
        // Entries are gone from the cache proper...
        assert_eq!(c.get(fp(10)), None);
        // ...but demoted to warm-start seeds.
        assert_eq!(c.num_seeds(), 2);
        assert_eq!(c.seed(fp(10)).as_deref(), Some(&plan(3)));
        assert_eq!(c.seed(fp(20)).as_deref(), Some(&plan(5)));
        assert_eq!(c.seed(fp(99)), None);
        assert_eq!(c.stats().seed_hits, 2);
        // Next bump replaces the seed set with the (empty) current entries.
        c.advance_epoch();
        assert_eq!(c.num_seeds(), 0);
        assert_eq!(c.seed(fp(10)), None);
    }

    #[test]
    fn capacity_bound_enforced_with_clock_eviction() {
        // One shard, capacity 4, so eviction order is fully observable.
        let c = PlanCache::with_capacity(1, 4);
        for i in 0..4u128 {
            c.insert(fp(i), plan(i as usize), 0);
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.stats().evictions, 0);
        // Reference fp(0) and fp(1): they earn a second chance.
        assert!(c.get(fp(0)).is_some());
        assert!(c.get(fp(1)).is_some());
        // Two more inserts must evict the two *unreferenced* entries.
        c.insert(fp(100), plan(9), 0);
        c.insert(fp(101), plan(9), 0);
        assert_eq!(c.len(), 4, "capacity must hold");
        assert_eq!(c.stats().evictions, 2);
        assert!(c.get(fp(0)).is_some(), "referenced entry survived");
        assert!(c.get(fp(1)).is_some(), "referenced entry survived");
        assert!(c.get(fp(2)).is_none(), "unreferenced entry evicted");
        assert!(c.get(fp(3)).is_none(), "unreferenced entry evicted");
        assert!(c.get(fp(100)).is_some() && c.get(fp(101)).is_some());
    }

    #[test]
    fn clock_sweep_eventually_evicts_even_all_referenced() {
        let c = PlanCache::with_capacity(1, 3);
        for i in 0..3u128 {
            c.insert(fp(i), plan(0), 0);
            assert!(c.get(fp(i)).is_some()); // everything referenced
        }
        // The sweep clears all bits on the first lap, evicts on the second.
        c.insert(fp(50), plan(1), 0);
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().evictions, 1);
        assert!(c.get(fp(50)).is_some());
    }

    #[test]
    fn reinsert_same_fingerprint_does_not_grow_or_evict() {
        let c = PlanCache::with_capacity(1, 2);
        c.insert(fp(1), plan(0), 0);
        c.insert(fp(2), plan(1), 0);
        for _ in 0..10 {
            c.insert(fp(1), plan(2), 0);
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(fp(1)).as_deref(), Some(&plan(2)), "replaced in place");
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let c = std::sync::Arc::new(PlanCache::new(4));
        let handles: Vec<_> = (0..4u128)
            .map(|t| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..64 {
                        let key = fp(t * 1000 + i);
                        c.insert(key, plan(t as usize), c.epoch());
                        assert!(c.get(key).is_some());
                    }
                })
            })
            .collect();
        for h in handles {
            crate::join_named(h);
        }
        assert!(!c.any_poisoned());
        assert_eq!(c.len(), 4 * 64);
    }
}
