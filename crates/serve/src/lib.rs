#![warn(missing_docs)]
//! # neo-serve — concurrent multi-query optimization service
//!
//! Neo is meant to sit in front of an execution engine and optimize a
//! *stream* of queries (paper Fig. 1), not one query per process. This
//! crate turns the core library into that service:
//!
//! * [`pool::WorkerPool`] — a vendored fixed-size worker pool (no external
//!   dependencies, the workspace's shim pattern);
//! * [`cache::PlanCache`] — a sharded, capacity-bounded (second-chance
//!   CLOCK eviction) plan cache keyed by canonical structural
//!   [`neo_query::fingerprint`]s, with epoch-based invalidation that
//!   demotes superseded plans to warm-start search seeds;
//! * [`slot::ModelSlot`] — the swap-on-read model slot: workers serve a
//!   frozen [`neo::ValueNet`] generation while a background trainer
//!   publishes the next one ([`service::OptimizerService::publish_model`]);
//! * [`service::OptimizerService`] — the served model shared (read-only)
//!   by all in-flight searches, each running its own
//!   [`neo::InferenceSession`]-backed wavefront search with scratch
//!   buffers recycled per worker through a [`neo_nn::ScratchPool`], plus
//!   the [`service::ExecutionFeedback`] path that feeds observed plan
//!   latencies back to the `neo-learn` trainer (the paper's Fig. 1 loop);
//! * [`health::HealthTracker`] — the consecutive-failure node health
//!   state machine (`Healthy → Degraded → Isolated`, stepwise recovery)
//!   the cluster layer feeds with per-tick store verdicts so a degraded
//!   leader can resign before its lease lapses mid-publish.
//!
//! Cache hits return previously chosen plans for repeated/isomorphic
//! queries with zero neural-network work; parameter-perturbed queries
//! fingerprint differently and re-search. Search is deterministic, so
//! concurrent serving chooses byte-identical plans to single-threaded
//! runs per model generation (in-flight searches straddling a model swap
//! finish on the network they started with).
//!
//! ```no_run
//! use neo::{Featurization, Featurizer, NetConfig, ValueNet};
//! use neo_serve::{OptimizerService, ServeConfig};
//! use std::sync::Arc;
//!
//! let db = Arc::new(neo_storage::datagen::imdb::generate(0.05, 42));
//! let workload = neo_query::workload::job::generate(&db, 42);
//! let featurizer = Arc::new(Featurizer::new(&db, Featurization::Histogram));
//! let net = Arc::new(ValueNet::new(
//!     featurizer.query_dim(),
//!     featurizer.plan_channels(),
//!     NetConfig::default(),
//!     42,
//! ));
//! let service = OptimizerService::new(db, featurizer, net, ServeConfig::default());
//! let outcomes = service.optimize_stream(&workload.queries);
//! let hit_rate = service.cache_stats().hit_rate();
//! println!("optimized {} queries, hit rate {hit_rate:.2}", outcomes.len());
//! ```

pub mod api;
pub mod cache;
pub mod health;
pub mod join;
pub mod pool;
pub mod service;
pub mod slot;

pub use api::{dispatch, AdminHooks, ApiRequest, ApiResponse, NoHooks, OptimizeReply};
pub use cache::{CacheStats, PlanCache, DEFAULT_SHARDS, DEFAULT_SHARD_CAPACITY};
pub use health::{HealthPolicy, HealthSnapshot, HealthState, HealthTracker};
pub use join::{join_named, join_named_or_ignore_during_unwind};
pub use pool::WorkerPool;
pub use service::{
    ExecutionFeedback, OptimizeOutcome, OptimizeRequest, OptimizerService, ServeConfig,
};
pub use slot::ModelSlot;
