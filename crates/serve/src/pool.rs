//! A vendored fixed-size worker pool (no external dependencies, following
//! the workspace's shim pattern — see `crates/rand`, `crates/criterion`).
//!
//! `N` OS threads share one injector queue: a [`std::sync::mpsc`] channel
//! whose receiver sits behind a mutex, so an idle worker blocks on
//! `recv()` and wakes exactly when a job arrives. Jobs are boxed `FnOnce`
//! closures; results travel through whatever channel the closure captures
//! (the optimizer service uses a per-stream `mpsc` back-channel).
//!
//! Dropping the pool closes the injector and joins every worker, so jobs
//! already submitted always finish — a clean shutdown is part of the
//! service contract, not a best-effort detail.

use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads consuming boxed jobs from a shared
/// queue.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one). Threads are named
    /// `neo-serve-worker-<i>` for debuggability.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("neo-serve-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only to dequeue; run unlocked so
                        // workers execute jobs concurrently. Poison-recover:
                        // jobs run *outside* the lock, so the guard is only
                        // ever poisoned by a panic inside `recv` itself —
                        // and one worker's death must not wedge the queue
                        // for every survivor.
                        let job = {
                            let guard =
                                rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                            guard.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // injector closed: shut down
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job; it runs on the first idle worker. Never blocks the
    /// caller (the queue is unbounded).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool already shut down")
            .send(Box::new(job))
            .expect("worker pool has no live workers");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the sender makes every blocked `recv()` return Err.
        drop(self.tx.take());
        for h in self.workers.drain(..) {
            // A panicked worker surfaces as a named, diagnosable panic —
            // unless this teardown is itself running during an unwind (the
            // caller already knows something died; a double panic would
            // abort and eat both messages).
            crate::join_named_or_ignore_during_unwind(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;

    #[test]
    fn runs_all_jobs_across_workers() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.workers(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel();
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..100 {
            rx.recv_timeout(std::time::Duration::from_secs(30)).unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn drop_joins_and_finishes_submitted_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Pool dropped here: must drain the queue before joining.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let (tx, rx) = channel();
        pool.execute(move || tx.send(7).unwrap());
        assert_eq!(rx.recv().unwrap(), 7);
    }
}
